#include "sim/PageTable.h"

#include "support/Error.h"

#include <cassert>

using namespace atmem;
using namespace atmem::sim;

static constexpr uint64_t SmallShift = 12;
static constexpr uint64_t HugeShift = 21;

PageTable::PageTable(FrameAllocator &FastAlloc, FrameAllocator &SlowAlloc)
    : FastAlloc(FastAlloc), SlowAlloc(SlowAlloc) {
  assert(FastAlloc.tier() == TierId::Fast && "allocator order swapped");
  assert(SlowAlloc.tier() == TierId::Slow && "allocator order swapped");
}

bool PageTable::mapRegion(uint64_t Va, uint64_t Size, TierId Tier,
                          bool PreferHuge) {
  assert(Va % SmallPageBytes == 0 && "unaligned region base");
  assert(Size % SmallPageBytes == 0 && "unaligned region size");
  FrameAllocator &Alloc = allocator(Tier);
  if (Alloc.freeBytes() < Size)
    return false;

  uint64_t Pos = Va;
  uint64_t End = Va + Size;
  while (Pos < End) {
    bool CanHuge = PreferHuge && Pos % HugePageBytes == 0 &&
                   End - Pos >= HugePageBytes;
    if (CanHuge) {
      auto Base = Alloc.allocateHuge();
      assert(Base && "capacity pre-checked");
      HugePages[Pos >> HugeShift] = {*Base, Tier};
      MappedBytes[tierIndex(Tier)] += HugePageBytes;
      Pos += HugePageBytes;
      continue;
    }
    auto Frame = Alloc.allocateSmall();
    assert(Frame && "capacity pre-checked");
    SmallPages[Pos >> SmallShift] = {*Frame, Tier};
    MappedBytes[tierIndex(Tier)] += SmallPageBytes;
    Pos += SmallPageBytes;
  }
  return true;
}

uint64_t PageTable::mapRegionPreferred(uint64_t Va, uint64_t Size,
                                       TierId Preferred, bool PreferHuge) {
  assert(Va % SmallPageBytes == 0 && "unaligned region base");
  assert(Size % SmallPageBytes == 0 && "unaligned region size");
  FrameAllocator &Pref = allocator(Preferred);
  FrameAllocator &Fallback = allocator(otherTier(Preferred));
  uint64_t OnPreferred = 0;

  uint64_t Pos = Va;
  uint64_t End = Va + Size;
  while (Pos < End) {
    bool CanHuge = PreferHuge && Pos % HugePageBytes == 0 &&
                   End - Pos >= HugePageBytes;
    if (CanHuge) {
      if (auto Base = Pref.allocateHuge()) {
        HugePages[Pos >> HugeShift] = {*Base, Preferred};
        MappedBytes[tierIndex(Preferred)] += HugePageBytes;
        OnPreferred += HugePageBytes;
        Pos += HugePageBytes;
        continue;
      }
      if (auto Base = Fallback.allocateHuge()) {
        HugePages[Pos >> HugeShift] = {*Base, otherTier(Preferred)};
        MappedBytes[tierIndex(otherTier(Preferred))] += HugePageBytes;
        Pos += HugePageBytes;
        continue;
      }
      // Neither tier can supply a contiguous block: fall through to small
      // pages for this stretch.
    }
    if (auto Frame = Pref.allocateSmall()) {
      SmallPages[Pos >> SmallShift] = {*Frame, Preferred};
      MappedBytes[tierIndex(Preferred)] += SmallPageBytes;
      OnPreferred += SmallPageBytes;
    } else if (auto Frame2 = Fallback.allocateSmall()) {
      SmallPages[Pos >> SmallShift] = {*Frame2, otherTier(Preferred)};
      MappedBytes[tierIndex(otherTier(Preferred))] += SmallPageBytes;
    } else {
      reportFatalError("simulated machine out of physical memory");
    }
    Pos += SmallPageBytes;
  }
  return OnPreferred;
}

uint64_t PageTable::mapRegionInterleaved(uint64_t Va, uint64_t Size,
                                         bool PreferHuge) {
  assert(Va % SmallPageBytes == 0 && "unaligned region base");
  assert(Size % SmallPageBytes == 0 && "unaligned region size");
  uint64_t OnFast = 0;
  uint64_t Pos = Va;
  uint64_t End = Va + Size;
  unsigned Turn = 0;
  while (Pos < End) {
    TierId Wanted = Turn++ % 2 == 0 ? TierId::Fast : TierId::Slow;
    bool CanHuge = PreferHuge && Pos % HugePageBytes == 0 &&
                   End - Pos >= HugePageBytes;
    uint64_t PageBytes = CanHuge ? HugePageBytes : SmallPageBytes;
    auto TryMap = [&](TierId Tier) -> bool {
      FrameAllocator &Alloc = allocator(Tier);
      if (CanHuge) {
        auto Base = Alloc.allocateHuge();
        if (!Base)
          return false;
        HugePages[Pos >> HugeShift] = {*Base, Tier};
      } else {
        auto Frame = Alloc.allocateSmall();
        if (!Frame)
          return false;
        SmallPages[Pos >> SmallShift] = {*Frame, Tier};
      }
      MappedBytes[tierIndex(Tier)] += PageBytes;
      if (Tier == TierId::Fast)
        OnFast += PageBytes;
      return true;
    };
    if (!TryMap(Wanted) && !TryMap(otherTier(Wanted)))
      reportFatalError("simulated machine out of physical memory");
    Pos += PageBytes;
  }
  return OnFast;
}

void PageTable::unmapRegion(uint64_t Va, uint64_t Size) {
  uint64_t Pos = Va;
  uint64_t End = Va + Size;
  while (Pos < End) {
    if (Pos % HugePageBytes == 0) {
      auto It = HugePages.find(Pos >> HugeShift);
      if (It != HugePages.end()) {
        allocator(It->second.Tier).freeHuge(It->second.FrameBase);
        MappedBytes[tierIndex(It->second.Tier)] -= HugePageBytes;
        HugePages.erase(It);
        Pos += HugePageBytes;
        continue;
      }
    }
    auto It = SmallPages.find(Pos >> SmallShift);
    if (It == SmallPages.end())
      reportFatalError("unmapRegion over unmapped page");
    allocator(It->second.Tier).freeSmall(It->second.FrameBase);
    MappedBytes[tierIndex(It->second.Tier)] -= SmallPageBytes;
    SmallPages.erase(It);
    Pos += SmallPageBytes;
  }
}

bool PageTable::splitCoveringHugePage(uint64_t Va) {
  uint64_t HugeVpn = Va >> HugeShift;
  auto It = HugePages.find(HugeVpn);
  if (It == HugePages.end())
    return false;
  Entry Huge = It->second;
  HugePages.erase(It);
  allocator(Huge.Tier).splitHuge(Huge.FrameBase);
  uint64_t BaseVpn = HugeVpn << (HugeShift - SmallShift);
  for (uint64_t I = 0; I < FramesPerHugeBlock; ++I)
    SmallPages[BaseVpn + I] = {Huge.FrameBase + I, Huge.Tier};
  return true;
}

bool PageTable::remapRange(uint64_t Va, uint64_t Size, TierId NewTier,
                           bool PreferHuge, uint64_t *PagesTouched) {
  assert(Va % SmallPageBytes == 0 && "unaligned range base");
  assert(Size % SmallPageBytes == 0 && "unaligned range size");
  uint64_t End = Va + Size;
  // Huge pages straddling either boundary must split so the remap touches
  // exactly the requested range.
  if (Va % HugePageBytes != 0)
    splitCoveringHugePage(Va);
  if (End % HugePageBytes != 0)
    splitCoveringHugePage(End);

  // Capacity check: bytes arriving on NewTier from the other tier.
  uint64_t Incoming = 0;
  for (uint64_t Pos = Va; Pos < End;) {
    Translation T;
    if (!translate(Pos, T))
      reportFatalError("remapRange over unmapped page");
    if (T.Tier != NewTier)
      Incoming += T.PageBytes;
    Pos = T.PageVa + T.PageBytes;
  }
  if (allocator(NewTier).freeBytes() < Incoming)
    return false;

  uint64_t Touched = 0;
  uint64_t Pos = Va;
  while (Pos < End) {
    bool WantHuge = PreferHuge && Pos % HugePageBytes == 0 &&
                    End - Pos >= HugePageBytes;
    if (WantHuge) {
      // Release everything currently backing [Pos, Pos + 2 MiB).
      uint64_t Stop = Pos + HugePageBytes;
      for (uint64_t P = Pos; P < Stop;) {
        Translation T;
        if (!translate(P, T))
          reportFatalError("remapRange over unmapped page");
        if (T.PageBytes == HugePageBytes) {
          allocator(T.Tier).freeHuge(T.FrameBase);
          MappedBytes[tierIndex(T.Tier)] -= HugePageBytes;
          HugePages.erase(P >> HugeShift);
        } else {
          allocator(T.Tier).freeSmall(T.FrameBase);
          MappedBytes[tierIndex(T.Tier)] -= SmallPageBytes;
          SmallPages.erase(P >> SmallShift);
        }
        P = T.PageVa + T.PageBytes;
      }
      auto Base = allocator(NewTier).allocateHuge();
      if (!Base) {
        // Contiguity exhausted even though byte capacity was available;
        // degrade to small pages for this stretch.
        for (uint64_t P = Pos; P < Stop; P += SmallPageBytes) {
          auto Frame = allocator(NewTier).allocateSmall();
          assert(Frame && "byte capacity verified above");
          SmallPages[P >> SmallShift] = {*Frame, NewTier};
          MappedBytes[tierIndex(NewTier)] += SmallPageBytes;
          ++Touched;
        }
      } else {
        HugePages[Pos >> HugeShift] = {*Base, NewTier};
        MappedBytes[tierIndex(NewTier)] += HugePageBytes;
        ++Touched;
      }
      Pos = Stop;
      continue;
    }
    // Small-page stretch (unaligned head/tail, or PreferHuge=false over a
    // huge mapping — split it down first).
    splitCoveringHugePage(Pos);
    auto It = SmallPages.find(Pos >> SmallShift);
    if (It == SmallPages.end())
      reportFatalError("remapRange over unmapped page");
    allocator(It->second.Tier).freeSmall(It->second.FrameBase);
    MappedBytes[tierIndex(It->second.Tier)] -= SmallPageBytes;
    auto Frame = allocator(NewTier).allocateSmall();
    assert(Frame && "byte capacity verified above");
    It->second = {*Frame, NewTier};
    MappedBytes[tierIndex(NewTier)] += SmallPageBytes;
    ++Touched;
    Pos += SmallPageBytes;
  }
  if (PagesTouched)
    *PagesTouched = Touched;
  return true;
}

bool PageTable::movePage(uint64_t Va, TierId NewTier, bool *SplitHugePage) {
  bool Split = splitCoveringHugePage(Va);
  if (SplitHugePage)
    *SplitHugePage = Split;
  auto It = SmallPages.find(Va >> SmallShift);
  if (It == SmallPages.end())
    reportFatalError("movePage over unmapped page");
  if (It->second.Tier == NewTier)
    return true;
  auto Frame = allocator(NewTier).allocateSmall();
  if (!Frame)
    return false;
  allocator(It->second.Tier).freeSmall(It->second.FrameBase);
  MappedBytes[tierIndex(It->second.Tier)] -= SmallPageBytes;
  It->second = {*Frame, NewTier};
  MappedBytes[tierIndex(NewTier)] += SmallPageBytes;
  return true;
}

bool PageTable::translate(uint64_t Va, Translation &Out) const {
  auto HugeIt = HugePages.find(Va >> HugeShift);
  if (HugeIt != HugePages.end()) {
    Out.PageVa = (Va >> HugeShift) << HugeShift;
    Out.PageBytes = HugePageBytes;
    Out.FrameBase = HugeIt->second.FrameBase;
    Out.Tier = HugeIt->second.Tier;
    return true;
  }
  auto SmallIt = SmallPages.find(Va >> SmallShift);
  if (SmallIt == SmallPages.end())
    return false;
  Out.PageVa = (Va >> SmallShift) << SmallShift;
  Out.PageBytes = SmallPageBytes;
  Out.FrameBase = SmallIt->second.FrameBase;
  Out.Tier = SmallIt->second.Tier;
  return true;
}

void PageTable::forEachMapping(
    const std::function<void(const Translation &)> &Fn) const {
  Translation T;
  for (const auto &[Key, Entry] : HugePages) {
    T.PageVa = Key << HugeShift;
    T.PageBytes = HugePageBytes;
    T.FrameBase = Entry.FrameBase;
    T.Tier = Entry.Tier;
    Fn(T);
  }
  for (const auto &[Key, Entry] : SmallPages) {
    T.PageVa = Key << SmallShift;
    T.PageBytes = SmallPageBytes;
    T.FrameBase = Entry.FrameBase;
    T.Tier = Entry.Tier;
    Fn(T);
  }
}

TierId PageTable::tierOf(uint64_t Va) const {
  Translation T;
  if (!translate(Va, T))
    reportFatalError("tierOf on unmapped address");
  return T.Tier;
}
