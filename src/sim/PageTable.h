//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulated page table mapping virtual pages to physical frames on one of
/// the two tiers. Supports 4 KiB and 2 MiB mappings. The migration
/// mechanisms differ exactly where the paper says they do:
///
///  - mbind-style movePage() operates on individual 4 KiB pages and splits
///    any covering huge page, permanently fragmenting the mapping (the
///    source of post-migration TLB misses in Table 4);
///  - ATMem-style remapRange() rebuilds a whole virtual range onto fresh
///    frames of the target tier, re-forming huge pages wherever alignment
///    allows, so TLB reach is preserved.
///
/// Storage is a region directory: a sorted vector of disjoint virtual
/// ranges, each backed by a flat array with one packed 8-byte slot per
/// 4 KiB page. translate() is a binary search over a handful of regions
/// plus one array load — no hashing — which is what makes TLB replay and
/// migration-time translation cheap on dense graph objects. A huge page
/// occupies all 512 of its small-page slots (each holding its own frame
/// number, so any slot reconstructs the block base); the cost is 8 bytes
/// of directory per 4 KiB mapped, ~0.2 % overhead.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_SIM_PAGETABLE_H
#define ATMEM_SIM_PAGETABLE_H

#include "sim/FrameAllocator.h"
#include "sim/MemoryTier.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace atmem {
namespace sim {

/// Result of a virtual-to-physical translation.
struct Translation {
  uint64_t PageVa = 0;    ///< Base VA of the containing page.
  uint64_t PageBytes = 0; ///< 4096 or 2 MiB.
  uint64_t FrameBase = 0; ///< First small-frame number of the backing.
  TierId Tier = TierId::Slow;
};

/// Region-directory page table over the simulated virtual address space.
class PageTable {
public:
  PageTable(FrameAllocator &FastAlloc, FrameAllocator &SlowAlloc);

  /// Maps [Va, Va+Size) on \p Tier. Uses 2 MiB pages for every fully
  /// covered, 2 MiB-aligned stretch when \p PreferHuge. Va and Size must be
  /// 4 KiB aligned and the range unmapped. Returns false (mapping nothing)
  /// when the tier lacks capacity for the whole range.
  bool mapRegion(uint64_t Va, uint64_t Size, TierId Tier, bool PreferHuge);

  /// First-touch preferred policy (models `numactl -p`): places each page
  /// on \p Preferred while it has room, overflowing to the other tier.
  /// Returns the number of bytes that landed on \p Preferred.
  uint64_t mapRegionPreferred(uint64_t Va, uint64_t Size, TierId Preferred,
                              bool PreferHuge);

  /// Interleaved policy (models `numactl -i`): pages alternate between
  /// the tiers round-robin, falling back to whichever tier has room when
  /// one fills up. Returns the number of bytes on the fast tier.
  uint64_t mapRegionInterleaved(uint64_t Va, uint64_t Size, bool PreferHuge);

  /// Unmaps [Va, Va+Size) and releases all backing frames. The range must
  /// be fully mapped with pages lying entirely inside it.
  void unmapRegion(uint64_t Va, uint64_t Size);

  /// ATMem stage-two remap: rebinds [Va, Va+Size) to freshly allocated
  /// frames on \p NewTier without changing virtual addresses, re-forming
  /// huge pages where alignment allows. Huge pages partially covered by the
  /// range are split first. Returns false (leaving the range unchanged up
  /// to splits) when \p NewTier lacks capacity. \p PagesTouched, when
  /// non-null, receives the number of page-table entries written.
  bool remapRange(uint64_t Va, uint64_t Size, TierId NewTier, bool PreferHuge,
                  uint64_t *PagesTouched = nullptr);

  /// mbind-style single-page move. Splits a covering huge page when
  /// present. Returns false when the target tier is full (the page then
  /// stays where it was). \p SplitHugePage, when non-null, is set when this
  /// call had to split a huge mapping.
  bool movePage(uint64_t Va, TierId NewTier, bool *SplitHugePage = nullptr);

  /// Translates \p Va. Returns false when unmapped.
  bool translate(uint64_t Va, Translation &Out) const;

  /// Tier currently backing \p Va; aborts when unmapped.
  TierId tierOf(uint64_t Va) const;

  /// Bytes of this table's mappings resident on \p Tier.
  uint64_t mappedBytesOn(TierId Tier) const {
    return MappedBytes[tierIndex(Tier)];
  }

  uint64_t smallPageCount() const { return SmallCount; }
  uint64_t hugePageCount() const { return HugeCount; }

  /// Monotonic counter bumped by every mutating operation (map, unmap,
  /// remap, move). External translation caches validate against it and
  /// lazily drop their contents when it moves, so they never have to hook
  /// individual mutations.
  uint64_t mutationEpoch() const { return Epoch; }

  /// Invokes \p Fn once per live mapping (both page sizes, unspecified
  /// order). Used by the cross-layer invariant checker to reconcile
  /// page-table state against allocator free lists.
  void forEachMapping(
      const std::function<void(const Translation &)> &Fn) const;

  FrameAllocator &allocator(TierId Tier) {
    return Tier == TierId::Fast ? FastAlloc : SlowAlloc;
  }
  const FrameAllocator &allocator(TierId Tier) const {
    return Tier == TierId::Fast ? FastAlloc : SlowAlloc;
  }

private:
  /// Packed page-table slot: bit 63 valid, bit 62 part-of-huge-page,
  /// bit 61 fast tier, bits 0..60 the slot's own small-frame number.
  static constexpr uint64_t SlotValid = 1ull << 63;
  static constexpr uint64_t SlotHuge = 1ull << 62;
  static constexpr uint64_t SlotFast = 1ull << 61;
  static constexpr uint64_t SlotFrameMask = SlotFast - 1;

  static uint64_t packSlot(uint64_t Frame, TierId Tier, bool Huge) {
    return Frame | SlotValid | (Huge ? SlotHuge : 0) |
           (Tier == TierId::Fast ? SlotFast : 0);
  }
  static TierId slotTier(uint64_t Slot) {
    return Slot & SlotFast ? TierId::Fast : TierId::Slow;
  }
  static uint64_t slotFrame(uint64_t Slot) { return Slot & SlotFrameMask; }

  /// One contiguous virtual range with a flat slot per 4 KiB page.
  /// Regions are disjoint and sorted by BeginVpn.
  struct Region {
    uint64_t BeginVpn = 0; ///< First small VPN covered.
    uint64_t EndVpn = 0;   ///< One past the last small VPN covered.
    std::vector<uint64_t> Slots;
    uint64_t LiveSlots = 0; ///< Valid entries; region pruned at zero.

    uint64_t &slot(uint64_t Vpn) { return Slots[Vpn - BeginVpn]; }
    uint64_t slot(uint64_t Vpn) const { return Slots[Vpn - BeginVpn]; }
  };

  Region *regionOf(uint64_t Vpn);
  const Region *regionOf(uint64_t Vpn) const;

  /// Returns a region whose span covers [BeginVpn, EndVpn), creating one
  /// (and merging any regions it overlaps or touches) when needed.
  Region &ensureRegion(uint64_t BeginVpn, uint64_t EndVpn);

  /// Erases regions inside [BeginVpn, EndVpn) whose LiveSlots dropped to
  /// zero. Only unmapRegion shrinks regions; remap/move rewrite in place.
  void pruneEmptyRegions(uint64_t BeginVpn, uint64_t EndVpn);

  void writeSmall(Region &R, uint64_t Vpn, uint64_t Frame, TierId Tier);
  void writeHuge(Region &R, uint64_t BaseVpn, uint64_t FrameBase, TierId Tier);
  void clearSmall(Region &R, uint64_t Vpn);
  void clearHuge(Region &R, uint64_t BaseVpn);

  /// Splits the huge page covering \p Va (if any) into 512 small PTEs on
  /// the same frames. Returns true when a split happened.
  bool splitCoveringHugePage(uint64_t Va);

  FrameAllocator &FastAlloc;
  FrameAllocator &SlowAlloc;
  std::vector<Region> Regions; ///< Sorted by BeginVpn, disjoint.
  uint64_t MappedBytes[NumTiers] = {0, 0};
  uint64_t SmallCount = 0;
  uint64_t HugeCount = 0;
  uint64_t Epoch = 0;
};

} // namespace sim
} // namespace atmem

#endif // ATMEM_SIM_PAGETABLE_H
