//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Vectorized 4-way tag probe shared by the LLC model and the TLB model.
/// Both keep their set storage as structure-of-arrays u64 rows, so one
/// probe is "which of these four contiguous 64-bit keys equals mine" —
/// exactly two 128-bit compares. The SSE2 path emulates the 64-bit
/// equality (SSE4.1's pcmpeqq is above the x86-64 baseline) by matching
/// both 32-bit halves; the NEON path uses the native vceqq_u64.
///
/// The probe's contract mirrors the scalar loops it replaces: the LOWEST
/// matching way index is returned, so even in the impossible case of a
/// duplicated key the verdict is bit-identical to a first-match scan.
/// Callers guarantee at most one real match (sets never hold duplicate
/// keys — inserts happen only on a miss).
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_SIM_SIMDPROBE_H
#define ATMEM_SIM_SIMDPROBE_H

#include <cstdint>

#if defined(__SSE2__)
#include <emmintrin.h>
#define ATMEM_SIMD_PROBE 1
#elif defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>
#define ATMEM_SIMD_PROBE 1
#else
#define ATMEM_SIMD_PROBE 0
#endif

namespace atmem {
namespace sim {

/// Index (0..3) of the first element of \p Row equal to \p Key, or -1
/// when none matches. \p Row need not be 16-byte aligned (the set rows
/// live in std::vector storage whose 4-way groups are only 8-aligned).
inline int probeWay4(const uint64_t *Row, uint64_t Key) {
#if defined(__SSE2__)
  __m128i K = _mm_set1_epi64x(static_cast<long long>(Key));
  __m128i A = _mm_loadu_si128(reinterpret_cast<const __m128i *>(Row));
  __m128i B = _mm_loadu_si128(reinterpret_cast<const __m128i *>(Row + 2));
  // 64-bit equality out of 32-bit compares: a lane is equal iff both of
  // its halves are, so AND each half's verdict with its neighbour's.
  __m128i EqA32 = _mm_cmpeq_epi32(A, K);
  __m128i EqB32 = _mm_cmpeq_epi32(B, K);
  __m128i EqA =
      _mm_and_si128(EqA32, _mm_shuffle_epi32(EqA32, _MM_SHUFFLE(2, 3, 0, 1)));
  __m128i EqB =
      _mm_and_si128(EqB32, _mm_shuffle_epi32(EqB32, _MM_SHUFFLE(2, 3, 0, 1)));
  unsigned Mask = static_cast<unsigned>(_mm_movemask_epi8(EqA)) |
                  (static_cast<unsigned>(_mm_movemask_epi8(EqB)) << 16);
  if (Mask == 0)
    return -1;
  // Eight mask bits per 64-bit lane; the lowest set bit is the first way.
  return __builtin_ctz(Mask) >> 3;
#elif defined(__aarch64__) && defined(__ARM_NEON)
  uint64x2_t K = vdupq_n_u64(Key);
  uint64x2_t EqA = vceqq_u64(vld1q_u64(Row), K);
  uint64x2_t EqB = vceqq_u64(vld1q_u64(Row + 2), K);
  uint64_t H0 = vgetq_lane_u64(EqA, 0);
  uint64_t H1 = vgetq_lane_u64(EqA, 1);
  uint64_t H2 = vgetq_lane_u64(EqB, 0);
  uint64_t H3 = vgetq_lane_u64(EqB, 1);
  if (H0)
    return 0;
  if (H1)
    return 1;
  if (H2)
    return 2;
  if (H3)
    return 3;
  return -1;
#else
  for (int I = 0; I < 4; ++I)
    if (Row[I] == Key)
      return I;
  return -1;
#endif
}

} // namespace sim
} // namespace atmem

#endif // ATMEM_SIM_SIMDPROBE_H
