//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Vectorized 4-way tag probe shared by the LLC model and the TLB model.
/// Both keep their set storage as structure-of-arrays u64 rows, so one
/// probe is "which of these four contiguous 64-bit keys equals mine" —
/// exactly two 128-bit compares. The SSE2 path emulates the 64-bit
/// equality (SSE4.1's pcmpeqq is above the x86-64 baseline) by matching
/// both 32-bit halves; the NEON path uses the native vceqq_u64.
///
/// The probe's contract mirrors the scalar loops it replaces: the LOWEST
/// matching way index is returned, so even in the impossible case of a
/// duplicated key the verdict is bit-identical to a first-match scan.
/// Callers guarantee at most one real match (sets never hold duplicate
/// keys — inserts happen only on a miss).
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_SIM_SIMDPROBE_H
#define ATMEM_SIM_SIMDPROBE_H

#include <cstddef>
#include <cstdint>

#if defined(__SSE2__)
// immintrin.h (not just emmintrin.h) so the AVX2 gather path below can be
// compiled per-function via __attribute__((target("avx2"))) and selected
// at run time — the build's baseline ISA stays plain SSE2.
#include <immintrin.h>
#define ATMEM_SIMD_PROBE 1
#elif defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>
#define ATMEM_SIMD_PROBE 1
#else
#define ATMEM_SIMD_PROBE 0
#endif

#if defined(__SSE2__) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define ATMEM_SIMD_GATHER 1
#else
#define ATMEM_SIMD_GATHER 0
#endif

namespace atmem {
namespace sim {

/// Index (0..3) of the first element of \p Row equal to \p Key, or -1
/// when none matches. \p Row need not be 16-byte aligned (the set rows
/// live in std::vector storage whose 4-way groups are only 8-aligned).
inline int probeWay4(const uint64_t *Row, uint64_t Key) {
#if defined(__SSE2__)
  __m128i K = _mm_set1_epi64x(static_cast<long long>(Key));
  __m128i A = _mm_loadu_si128(reinterpret_cast<const __m128i *>(Row));
  __m128i B = _mm_loadu_si128(reinterpret_cast<const __m128i *>(Row + 2));
  // 64-bit equality out of 32-bit compares: a lane is equal iff both of
  // its halves are, so AND each half's verdict with its neighbour's.
  __m128i EqA32 = _mm_cmpeq_epi32(A, K);
  __m128i EqB32 = _mm_cmpeq_epi32(B, K);
  __m128i EqA =
      _mm_and_si128(EqA32, _mm_shuffle_epi32(EqA32, _MM_SHUFFLE(2, 3, 0, 1)));
  __m128i EqB =
      _mm_and_si128(EqB32, _mm_shuffle_epi32(EqB32, _MM_SHUFFLE(2, 3, 0, 1)));
  unsigned Mask = static_cast<unsigned>(_mm_movemask_epi8(EqA)) |
                  (static_cast<unsigned>(_mm_movemask_epi8(EqB)) << 16);
  if (Mask == 0)
    return -1;
  // Eight mask bits per 64-bit lane; the lowest set bit is the first way.
  return __builtin_ctz(Mask) >> 3;
#elif defined(__aarch64__) && defined(__ARM_NEON)
  uint64x2_t K = vdupq_n_u64(Key);
  uint64x2_t EqA = vceqq_u64(vld1q_u64(Row), K);
  uint64x2_t EqB = vceqq_u64(vld1q_u64(Row + 2), K);
  uint64_t H0 = vgetq_lane_u64(EqA, 0);
  uint64_t H1 = vgetq_lane_u64(EqA, 1);
  uint64_t H2 = vgetq_lane_u64(EqB, 0);
  uint64_t H3 = vgetq_lane_u64(EqB, 1);
  if (H0)
    return 0;
  if (H1)
    return 1;
  if (H2)
    return 2;
  if (H3)
    return 3;
  return -1;
#else
  for (int I = 0; I < 4; ++I)
    if (Row[I] == Key)
      return I;
  return -1;
#endif
}

/// \name Batched VPN / set-index derivation
/// Out[I] = Vas[I] >> Shift over a whole miss batch. Every path computes
/// the exact same shift; vectorizing just feeds the load/shift/store
/// stream to the wide units so the batched drain can derive a block's
/// VPNs up front instead of one at a time inside the replay loop. The
/// scalar loop is the oracle the SIMD paths are fuzzed against.
///@{
inline void batchShiftRightScalar(const uint64_t *Vas, size_t N,
                                  uint32_t Shift, uint64_t *Out) {
  for (size_t I = 0; I < N; ++I)
    Out[I] = Vas[I] >> Shift;
}

inline void batchShiftRight(const uint64_t *Vas, size_t N, uint32_t Shift,
                            uint64_t *Out) {
#if defined(__SSE2__)
  __m128i Sh = _mm_cvtsi32_si128(static_cast<int>(Shift));
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    __m128i A = _mm_loadu_si128(reinterpret_cast<const __m128i *>(Vas + I));
    __m128i B =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(Vas + I + 2));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(Out + I),
                     _mm_srl_epi64(A, Sh));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(Out + I + 2),
                     _mm_srl_epi64(B, Sh));
  }
  for (; I < N; ++I)
    Out[I] = Vas[I] >> Shift;
#elif defined(__aarch64__) && defined(__ARM_NEON)
  // NEON shifts right by left-shifting with a negative count.
  int64x2_t Sh = vdupq_n_s64(-static_cast<int64_t>(Shift));
  size_t I = 0;
  for (; I + 2 <= N; I += 2)
    vst1q_u64(Out + I, vshlq_u64(vld1q_u64(Vas + I), Sh));
  for (; I < N; ++I)
    Out[I] = Vas[I] >> Shift;
#else
  batchShiftRightScalar(Vas, N, Shift, Out);
#endif
}
///@}

/// \name Gather probe over {Tag, Payload} slot pairs
/// Batch form of the direct-mapped probe "Slots[Key & Mask].Tag == Key"
/// over an array of 16-byte {Tag, Payload} u64 slots: Hit[I] is 1 iff
/// the slot indexed by Keys[I] currently holds tag Keys[I]. The slot
/// array is random-accessed (each probe is an independent, likely
/// L1-missing load), which is exactly what a hardware gather overlaps;
/// on AVX2 hosts the probes issue four at a time via vpgatherqq, chosen
/// at run time so the build's baseline ISA stays SSE2. The scalar loop
/// is both the fallback and the fuzz oracle.
///@{
inline void gatherProbeTagsScalar(const uint64_t *SlotPairs, uint64_t Mask,
                                  const uint64_t *Keys, size_t N,
                                  uint8_t *Hit) {
  for (size_t I = 0; I < N; ++I)
    Hit[I] = SlotPairs[(Keys[I] & Mask) * 2] == Keys[I] ? 1 : 0;
}

#if ATMEM_SIMD_GATHER
__attribute__((target("avx2"))) inline void
gatherProbeTagsAvx2(const uint64_t *SlotPairs, uint64_t Mask,
                    const uint64_t *Keys, size_t N, uint8_t *Hit) {
  const __m256i MaskV = _mm256_set1_epi64x(static_cast<long long>(Mask));
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    __m256i K =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Keys + I));
    // Slot index -> u64 index: each slot is two u64s, tag first.
    __m256i Idx = _mm256_slli_epi64(_mm256_and_si256(K, MaskV), 1);
    __m256i Tags = _mm256_i64gather_epi64(
        reinterpret_cast<const long long *>(SlotPairs), Idx, 8);
    unsigned EqMask = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(Tags, K))));
    Hit[I + 0] = (EqMask >> 0) & 1;
    Hit[I + 1] = (EqMask >> 1) & 1;
    Hit[I + 2] = (EqMask >> 2) & 1;
    Hit[I + 3] = (EqMask >> 3) & 1;
  }
  if (I < N)
    gatherProbeTagsScalar(SlotPairs, Mask, Keys + I, N - I, Hit + I);
}

/// One-time cpuid check; safe to race (idempotent thread-safe static).
inline bool gatherProbeHasAvx2() {
  static const bool Avail = __builtin_cpu_supports("avx2");
  return Avail;
}
#endif

inline void gatherProbeTags(const uint64_t *SlotPairs, uint64_t Mask,
                            const uint64_t *Keys, size_t N, uint8_t *Hit) {
#if ATMEM_SIMD_GATHER
  if (gatherProbeHasAvx2()) {
    gatherProbeTagsAvx2(SlotPairs, Mask, Keys, N, Hit);
    return;
  }
#endif
  gatherProbeTagsScalar(SlotPairs, Mask, Keys, N, Hit);
}
///@}

} // namespace sim
} // namespace atmem

#endif // ATMEM_SIM_SIMDPROBE_H
