#include "sim/Tlb.h"

#include "sim/FrameAllocator.h"
#include "support/Error.h"

#include <bit>
#include <cassert>

using namespace atmem;
using namespace atmem::sim;

TlbArray::TlbArray(uint32_t TotalEntries, uint32_t Ways, uint64_t PageBytes)
    : Sets(TotalEntries / Ways), Ways(Ways), PageBytes(PageBytes),
      Vpns(TotalEntries, InvalidVpn), Stamps(TotalEntries, 0) {
  assert(Ways > 0 && TotalEntries % Ways == 0 &&
         "entry count must be a multiple of associativity");
  assert(Sets > 0 && "TLB must have at least one set");
  // All shipped TLB geometries have power-of-two set counts; keep the
  // modulo path only for odd test configurations.
  SetMask = (Sets & (Sets - 1)) == 0 ? Sets - 1 : 0;
  PageShift = (PageBytes & (PageBytes - 1)) == 0
                  ? static_cast<uint32_t>(63 - std::countl_zero(PageBytes))
                  : 0;
}

void TlbArray::flushPage(uint64_t Va) {
  uint64_t Vpn = PageShift ? Va >> PageShift : Va / PageBytes;
  uint64_t *VpnRow = Vpns.data() + static_cast<size_t>(setOf(Vpn)) * Ways;
  for (uint32_t I = 0; I < Ways; ++I)
    if (VpnRow[I] == Vpn)
      VpnRow[I] = InvalidVpn;
}

void TlbArray::flushAll() {
  for (uint64_t &V : Vpns)
    V = InvalidVpn;
}

Tlb::Tlb(const TlbConfig &Config)
    : Small(Config.SmallEntries, Config.SmallWays, SmallPageBytes),
      Huge(Config.HugeEntries, Config.HugeWays, HugePageBytes) {}

void Tlb::flushPage(uint64_t Va, uint64_t PageBytes) {
  if (PageBytes == SmallPageBytes) {
    Small.flushPage(Va);
    return;
  }
  if (PageBytes == HugePageBytes) {
    Huge.flushPage(Va);
    return;
  }
  ATMEM_UNREACHABLE("unsupported page size");
}

void Tlb::flushAll() {
  Small.flushAll();
  Huge.flushAll();
}
