#include "sim/Tlb.h"

#include "sim/FrameAllocator.h"
#include "support/Error.h"

#include <cassert>

using namespace atmem;
using namespace atmem::sim;

TlbArray::TlbArray(uint32_t TotalEntries, uint32_t Ways, uint64_t PageBytes)
    : Sets(TotalEntries / Ways), Ways(Ways), PageBytes(PageBytes),
      Entries(TotalEntries) {
  assert(Ways > 0 && TotalEntries % Ways == 0 &&
         "entry count must be a multiple of associativity");
  assert(Sets > 0 && "TLB must have at least one set");
}

bool TlbArray::access(uint64_t Va) {
  uint64_t Vpn = Va / PageBytes;
  uint32_t Set = static_cast<uint32_t>(Vpn % Sets);
  Way *Base = &Entries[static_cast<size_t>(Set) * Ways];
  ++Clock;

  Way *Victim = Base;
  for (uint32_t I = 0; I < Ways; ++I) {
    Way &W = Base[I];
    if (W.Valid && W.Vpn == Vpn) {
      W.Stamp = Clock;
      ++Hits;
      return true;
    }
    if (!W.Valid) {
      Victim = &W;
    } else if (Victim->Valid && W.Stamp < Victim->Stamp) {
      Victim = &W;
    }
  }
  ++Misses;
  Victim->Vpn = Vpn;
  Victim->Stamp = Clock;
  Victim->Valid = true;
  return false;
}

void TlbArray::flushPage(uint64_t Va) {
  uint64_t Vpn = Va / PageBytes;
  uint32_t Set = static_cast<uint32_t>(Vpn % Sets);
  Way *Base = &Entries[static_cast<size_t>(Set) * Ways];
  for (uint32_t I = 0; I < Ways; ++I)
    if (Base[I].Valid && Base[I].Vpn == Vpn)
      Base[I].Valid = false;
}

void TlbArray::flushAll() {
  for (Way &W : Entries)
    W.Valid = false;
}

Tlb::Tlb(const TlbConfig &Config)
    : Small(Config.SmallEntries, Config.SmallWays, SmallPageBytes),
      Huge(Config.HugeEntries, Config.HugeWays, HugePageBytes) {}

bool Tlb::access(uint64_t Va, uint64_t PageBytes) {
  if (PageBytes == SmallPageBytes)
    return Small.access(Va);
  if (PageBytes == HugePageBytes)
    return Huge.access(Va);
  ATMEM_UNREACHABLE("unsupported page size");
}

void Tlb::flushPage(uint64_t Va, uint64_t PageBytes) {
  if (PageBytes == SmallPageBytes) {
    Small.flushPage(Va);
    return;
  }
  if (PageBytes == HugePageBytes) {
    Huge.flushPage(Va);
    return;
  }
  ATMEM_UNREACHABLE("unsupported page size");
}

void Tlb::flushAll() {
  Small.flushAll();
  Huge.flushAll();
}
