//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Set-associative data-TLB model with split 4 KiB / 2 MiB arrays, used to
/// measure post-migration TLB behaviour (Table 4 of the paper). The two
/// migration mechanisms leave the page table in different shapes — mbind
/// fragments huge pages into 4 KiB entries while ATMem's remap preserves
/// them — and this model turns that difference into a miss count by
/// replaying an application iteration's access stream.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_SIM_TLB_H
#define ATMEM_SIM_TLB_H

#include "sim/MachineConfig.h"

#include <cstdint>
#include <vector>

namespace atmem {
namespace sim {

/// LRU set-associative translation cache for one page size.
class TlbArray {
public:
  /// Creates an array with \p Entries total entries of \p Ways
  /// associativity for pages of \p PageBytes.
  TlbArray(uint32_t Entries, uint32_t Ways, uint64_t PageBytes);

  /// Looks up the page containing \p Va, inserting it on a miss. Returns
  /// true on a hit.
  bool access(uint64_t Va);

  /// Invalidates the entry for the page containing \p Va, if present.
  void flushPage(uint64_t Va);

  /// Invalidates everything.
  void flushAll();

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  void resetCounters() {
    Hits = 0;
    Misses = 0;
  }

private:
  struct Way {
    uint64_t Vpn = ~0ull;
    uint64_t Stamp = 0;
    bool Valid = false;
  };

  uint32_t Sets;
  uint32_t Ways;
  uint64_t PageBytes;
  uint64_t Clock = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  std::vector<Way> Entries;
};

/// The full data TLB: a 4 KiB array and a 2 MiB array. The caller decides,
/// from the page table, which array a given access consults.
class Tlb {
public:
  explicit Tlb(const TlbConfig &Config);

  /// Records an access to \p Va translated by a page of \p PageBytes.
  /// Returns true on a TLB hit.
  bool access(uint64_t Va, uint64_t PageBytes);

  /// Invalidates the translation for one page (models a TLB shootdown
  /// after a page move).
  void flushPage(uint64_t Va, uint64_t PageBytes);

  /// Full flush (context-switch scale invalidation).
  void flushAll();

  uint64_t hits() const { return Small.hits() + Huge.hits(); }
  uint64_t misses() const { return Small.misses() + Huge.misses(); }
  void resetCounters() {
    Small.resetCounters();
    Huge.resetCounters();
  }

private:
  TlbArray Small;
  TlbArray Huge;
};

} // namespace sim
} // namespace atmem

#endif // ATMEM_SIM_TLB_H
