//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Set-associative data-TLB model with split 4 KiB / 2 MiB arrays, used to
/// measure post-migration TLB behaviour (Table 4 of the paper). The two
/// migration mechanisms leave the page table in different shapes — mbind
/// fragments huge pages into 4 KiB entries while ATMem's remap preserves
/// them — and this model turns that difference into a miss count by
/// replaying an application iteration's access stream.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_SIM_TLB_H
#define ATMEM_SIM_TLB_H

#include "sim/FrameAllocator.h"
#include "sim/MachineConfig.h"
#include "sim/SimdProbe.h"
#include "support/Error.h"

#include <cstdint>
#include <vector>

namespace atmem {
namespace sim {

/// LRU set-associative translation cache for one page size.
class TlbArray {
public:
  /// Creates an array with \p Entries total entries of \p Ways
  /// associativity for pages of \p PageBytes.
  TlbArray(uint32_t Entries, uint32_t Ways, uint64_t PageBytes);

  /// Looks up the page containing \p Va, inserting it on a miss. Returns
  /// true on a hit. Defined inline: the batched drain calls this once per
  /// buffered miss, and a cross-TU call costs as much as the probe itself.
  bool access(uint64_t Va) {
    uint64_t Vpn = PageShift ? Va >> PageShift : Va / PageBytes;
    return accessVpn(Vpn);
  }

  /// access() after the VPN computation: callers that already derived the
  /// VPN (the batched drain translates a 2 MiB run once and then replays
  /// every miss of the run here) skip recomputing it. Verdicts, counters
  /// and LRU state are exactly those of access().
  bool accessVpn(uint64_t Vpn) {
    size_t Base = static_cast<size_t>(setOf(Vpn)) * Ways;
    uint64_t *VpnRow = Vpns.data() + Base;
    uint64_t *StampRow = Stamps.data() + Base;
    ++Clock;

    // Hit probe first: a VPN-only scan over one SoA row (a whole set fits
    // in a single cache line), no victim bookkeeping on the common path.
    // The shipped geometries are 4-way; a branchless probe replaces four
    // data-dependent early-exit branches (the hit way is effectively
    // random, so they mispredict) with one predictable hit/miss branch.
    // At most one way matches: inserts happen only on a miss, so a set
    // never holds duplicate VPNs, and Vpn != InvalidVpn for real pages.
    if (Ways == 4) {
#if ATMEM_SIMD_PROBE
      // Two 128-bit compares replace the four scalar ones; probeWay4
      // returns the first (lowest) matching way like the scalar scan, so
      // verdict and LRU update stay bit-identical.
      int Way = probeWay4(VpnRow, Vpn);
      if (Way >= 0) {
        StampRow[Way] = Clock;
        ++Hits;
        return true;
      }
#else
      bool H1 = VpnRow[1] == Vpn;
      bool H2 = VpnRow[2] == Vpn;
      bool H3 = VpnRow[3] == Vpn;
      if ((VpnRow[0] == Vpn) | H1 | H2 | H3) {
        uint32_t Way = static_cast<uint32_t>(H1) + 2u * H2 + 3u * H3;
        StampRow[Way] = Clock;
        ++Hits;
        return true;
      }
#endif
    } else {
      for (uint32_t I = 0; I < Ways; ++I) {
        if (VpnRow[I] == Vpn) {
          StampRow[I] = Clock;
          ++Hits;
          return true;
        }
      }
    }

    // Miss: replicate the historical fused loop's victim rule exactly —
    // the last invalid way wins; otherwise the first way with the minimal
    // stamp (stamps were only compared while the running victim was
    // valid).
    uint32_t Victim = 0;
    bool VictimValid = VpnRow[0] != InvalidVpn;
    uint64_t VictimStamp = StampRow[0];
    for (uint32_t I = 1; I < Ways; ++I) {
      if (VpnRow[I] == InvalidVpn) {
        Victim = I;
        VictimValid = false;
      } else if (VictimValid && StampRow[I] < VictimStamp) {
        Victim = I;
        VictimStamp = StampRow[I];
      }
    }
    ++Misses;
    VpnRow[Victim] = Vpn;
    StampRow[Victim] = Clock;
    return false;
  }

  /// Prefetches the set row \p Vpn maps to. The batched drain issues
  /// this for the next translation run's head while the current run is
  /// still replaying, so the row's line is in flight before accessVpn()
  /// needs it. No architectural effect — counters, LRU state, and
  /// verdicts are untouched.
  void prefetchVpn(uint64_t Vpn) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(Vpns.data() + static_cast<size_t>(setOf(Vpn)) * Ways);
#else
    (void)Vpn;
#endif
  }

  /// Invalidates the entry for the page containing \p Va, if present.
  void flushPage(uint64_t Va);

  /// Invalidates everything.
  void flushAll();

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  void resetCounters() {
    Hits = 0;
    Misses = 0;
  }

private:
  /// Sentinel VPN marking an invalid way. Unreachable for real pages:
  /// a VPN of ~0 would need a virtual address beyond 2^64.
  static constexpr uint64_t InvalidVpn = ~0ull;

  uint32_t setOf(uint64_t Vpn) const {
    if (SetMask)
      return static_cast<uint32_t>(Vpn & SetMask);
    return static_cast<uint32_t>(Vpn % Sets);
  }

  uint32_t Sets;
  uint32_t SetMask = 0;   ///< Sets-1 when Sets is a power of two, else 0.
  uint32_t PageShift = 0; ///< log2(PageBytes) when a power of two, else 0.
  uint32_t Ways;
  uint64_t PageBytes;
  uint64_t Clock = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  /// Structure-of-arrays ways, like CacheSim: the probe touches only the
  /// VPN row (one cache line covers a whole set), stamps only on the
  /// update that follows.
  std::vector<uint64_t> Vpns;   ///< InvalidVpn marks an empty way.
  std::vector<uint64_t> Stamps;
};

/// The full data TLB: a 4 KiB array and a 2 MiB array. The caller decides,
/// from the page table, which array a given access consults.
class Tlb {
public:
  explicit Tlb(const TlbConfig &Config);

  /// Records an access to \p Va translated by a page of \p PageBytes.
  /// Returns true on a TLB hit. Inline for the same reason as
  /// TlbArray::access — it sits inside the batched drain's per-miss loop.
  bool access(uint64_t Va, uint64_t PageBytes) {
    if (PageBytes == SmallPageBytes)
      return Small.access(Va);
    if (PageBytes == HugePageBytes)
      return Huge.access(Va);
    ATMEM_UNREACHABLE("unsupported page size");
  }

  /// Invalidates the translation for one page (models a TLB shootdown
  /// after a page move).
  void flushPage(uint64_t Va, uint64_t PageBytes);

  /// Full flush (context-switch scale invalidation).
  void flushAll();

  /// \name Direct per-size array access
  /// The batched drain resolves the page size once per translation run
  /// and then feeds the run's misses straight to the owning array via
  /// accessVpn(), skipping the per-access size dispatch above.
  /// @{
  TlbArray &smallArray() { return Small; }
  TlbArray &hugeArray() { return Huge; }
  /// @}

  uint64_t hits() const { return Small.hits() + Huge.hits(); }
  uint64_t misses() const { return Small.misses() + Huge.misses(); }
  void resetCounters() {
    Small.resetCounters();
    Huge.resetCounters();
  }

private:
  TlbArray Small;
  TlbArray Huge;
};

} // namespace sim
} // namespace atmem

#endif // ATMEM_SIM_TLB_H
