//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direct-mapped software translation cache sitting in front of
/// PageTable::translate. TLB replay touches every buffered miss once per
/// iteration; the pages of a dense graph object are revisited thousands of
/// times per drain, so a small direct-mapped array absorbs almost all of
/// the page-table walks. Mirroring the TLB model itself, the cache keeps
/// split arrays for the two page sizes: a 2 MiB-tagged array (one entry
/// covers 512 small pages, so a handful of tags span a whole graph object
/// when ATMem's remap has preserved huge pages) probed first, then a
/// 4 KiB-tagged array for fragmented mappings. Entries are packed to
/// 16 bytes — tag plus frame/tier word — and the full Translation is
/// reconstructed arithmetically on a hit, keeping the probe's cache
/// footprint minimal. Consistency is epoch-based: the cache compares
/// PageTable::mutationEpoch() on every lookup and lazily drops its entire
/// contents when the table changed, so cached results are always exactly
/// what the table would return — the cache is observably transparent.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_SIM_TRANSLATIONCACHE_H
#define ATMEM_SIM_TRANSLATIONCACHE_H

#include "sim/PageTable.h"
#include "sim/SimdProbe.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace atmem {
namespace sim {

/// Direct-mapped, epoch-validated, split small/huge translation cache.
/// Not thread-safe: each (serial) user owns its own instance.
class TranslationCache {
public:
  /// \p Log2Entries selects each array's size; 4096 huge entries cover an
  /// 8 GiB huge-backed working set, 4096 small ones a 16 MiB fragmented
  /// residue.
  explicit TranslationCache(const PageTable &PT, uint32_t Log2Entries = 12)
      : PT(PT), Mask((1ull << Log2Entries) - 1),
        HugeSlots(1ull << Log2Entries), SmallSlots(1ull << Log2Entries) {}

  /// Drops every cached entry if the page table mutated since the last
  /// call. translate() runs this implicitly; loops that translate many
  /// addresses while the table is known-quiescent (the batched drain) can
  /// call it once and use translatePageBytes() inside the loop.
  void revalidate() {
    if (Epoch == PT.mutationEpoch())
      return;
    for (Slot &S : HugeSlots)
      S.Tag = InvalidTag;
    for (Slot &S : SmallSlots)
      S.Tag = InvalidTag;
    Epoch = PT.mutationEpoch();
  }

  /// Translates \p Va, consulting the page table only on a cache miss or
  /// after the table mutated. Identical results to PT.translate(Va, Out).
  bool translate(uint64_t Va, Translation &Out) {
    revalidate();
    ++Lookups;
    uint64_t HugeVpn = Va >> HugeShift;
    const Slot &H = HugeSlots[HugeVpn & Mask];
    if (H.Tag == HugeVpn) {
      ++Hits;
      unpack(H, HugeVpn << HugeShift, HugePageBytes, Out);
      return true;
    }
    uint64_t SmallVpn = Va >> SmallShift;
    const Slot &S = SmallSlots[SmallVpn & Mask];
    if (S.Tag == SmallVpn) {
      ++Hits;
      unpack(S, SmallVpn << SmallShift, SmallPageBytes, Out);
      return true;
    }
    if (!PT.translate(Va, Out))
      return false; // Negative results are never cached.
    bool Huge = Out.PageBytes == HugePageBytes;
    Slot &Fill = Huge ? HugeSlots[HugeVpn & Mask] : SmallSlots[SmallVpn & Mask];
    Fill.Tag = Huge ? HugeVpn : SmallVpn;
    Fill.FrameAndTier =
        Out.FrameBase | (Out.Tier == TierId::Fast ? FastBit : 0);
    return true;
  }

  /// Cheapest possible probe for the quiescent replay loop: true when the
  /// huge-page slot for \p HugeVpn (= Va >> 21) is cached, meaning the
  /// address is huge-mapped. One load and one compare; no counter updates
  /// (the hit/lookup tallies are internal diagnostics, and the replay
  /// loop's throughput is worth more than their precision there). The
  /// caller must have run revalidate() and keep the table quiescent.
  bool isCachedHuge(uint64_t HugeVpn) const {
    return HugeSlots[HugeVpn & Mask].Tag == HugeVpn;
  }

  /// Batch of isCachedHuge() probes: Out[I] = isCachedHuge(HugeVpns[I])
  /// at call time, under the same quiescence contract. The probes are
  /// independent random loads over the 64 KiB slot array, so issuing
  /// them as one gather (AVX2 vpgatherqq where the host has it, the
  /// scalar oracle loop elsewhere) overlaps their cache misses instead
  /// of serializing them between TLB accesses. Read-only and
  /// counter-free, like the single-probe form.
  void probeHugeBatch(const uint64_t *HugeVpns, size_t N,
                      uint8_t *Out) const {
    static_assert(sizeof(Slot) == 16,
                  "gather probe assumes {Tag, FrameAndTier} u64 pairs");
    gatherProbeTags(reinterpret_cast<const uint64_t *>(HugeSlots.data()),
                    Mask, HugeVpns, N, Out);
  }

  /// TLB-replay fast path: like translate() but yields only the page size
  /// and skips the epoch check — the caller must have run revalidate()
  /// and guarantee the page table does not mutate until the loop ends.
  /// Counter updates and cache fills match translate() exactly.
  bool translatePageBytes(uint64_t Va, uint64_t &PageBytes) {
    ++Lookups;
    uint64_t HugeVpn = Va >> HugeShift;
    if (HugeSlots[HugeVpn & Mask].Tag == HugeVpn) {
      ++Hits;
      PageBytes = HugePageBytes;
      return true;
    }
    uint64_t SmallVpn = Va >> SmallShift;
    if (SmallSlots[SmallVpn & Mask].Tag == SmallVpn) {
      ++Hits;
      PageBytes = SmallPageBytes;
      return true;
    }
    // Fall back to the full path; its probe misses again (the slots are
    // unchanged), so it counts this lookup once and fills the cache.
    --Lookups;
    Translation Out;
    if (!translate(Va, Out))
      return false;
    PageBytes = Out.PageBytes;
    return true;
  }

  uint64_t hits() const { return Hits; }
  uint64_t lookups() const { return Lookups; }

private:
  static constexpr uint64_t InvalidTag = ~0ull;
  static constexpr uint64_t FastBit = 1ull << 63;
  static constexpr uint32_t SmallShift = 12;
  static constexpr uint32_t HugeShift = 21;
  static_assert(SmallPageBytes == 1ull << SmallShift &&
                    HugePageBytes == 1ull << HugeShift,
                "packed slots assume 4 KiB / 2 MiB page geometry");

  /// One cached mapping: the page-size-specific VPN plus the frame base
  /// with the tier in the top bit (frames never reach bit 63).
  struct Slot {
    uint64_t Tag = InvalidTag;
    uint64_t FrameAndTier = 0;
  };

  static void unpack(const Slot &S, uint64_t PageVa, uint64_t PageBytes,
                     Translation &Out) {
    Out.PageVa = PageVa;
    Out.PageBytes = PageBytes;
    Out.FrameBase = S.FrameAndTier & ~FastBit;
    Out.Tier = S.FrameAndTier & FastBit ? TierId::Fast : TierId::Slow;
  }

  const PageTable &PT;
  uint64_t Epoch = ~0ull; ///< Forces a flush on first use.
  uint64_t Mask;
  std::vector<Slot> HugeSlots;
  std::vector<Slot> SmallSlots;
  uint64_t Hits = 0;
  uint64_t Lookups = 0;
};

} // namespace sim
} // namespace atmem

#endif // ATMEM_SIM_TRANSLATIONCACHE_H
