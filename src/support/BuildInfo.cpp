//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/BuildInfo.h"

#include <cstdio>
#include <cstring>

namespace atmem {
namespace support {

// Injected by src/support/CMakeLists.txt from `git rev-parse` at configure
// time; absent when building from a tarball.
#ifndef ATMEM_GIT_SHA
#define ATMEM_GIT_SHA "unknown"
#endif

const char *gitSha() { return ATMEM_GIT_SHA; }

const char *compilerId() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

const std::string &cpuModel() {
  static const std::string Model = [] {
    std::string Result = "unknown";
    std::FILE *F = std::fopen("/proc/cpuinfo", "r");
    if (!F)
      return Result;
    char Line[512];
    while (std::fgets(Line, sizeof(Line), F)) {
      if (std::strncmp(Line, "model name", 10) != 0)
        continue;
      const char *Colon = std::strchr(Line, ':');
      if (Colon) {
        const char *P = Colon + 1;
        while (*P == ' ' || *P == '\t')
          ++P;
        Result.assign(P);
        while (!Result.empty() &&
               (Result.back() == '\n' || Result.back() == '\r'))
          Result.pop_back();
      }
      break;
    }
    std::fclose(F);
    return Result;
  }();
  return Model;
}

uint64_t peakRssBytes() {
  std::FILE *F = std::fopen("/proc/self/status", "r");
  if (!F)
    return 0;
  uint64_t Bytes = 0;
  char Line[256];
  while (std::fgets(Line, sizeof(Line), F)) {
    if (std::strncmp(Line, "VmHWM:", 6) != 0)
      continue;
    unsigned long long Kb = 0;
    if (std::sscanf(Line + 6, "%llu", &Kb) == 1)
      Bytes = static_cast<uint64_t>(Kb) * 1024;
    break;
  }
  std::fclose(F);
  return Bytes;
}

} // namespace support
} // namespace atmem
