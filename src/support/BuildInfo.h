//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Build and host provenance for machine-readable result files. Every
/// BENCH_*.json emitter stamps these three fields so a perf number can be
/// attributed to an exact commit, toolchain, and host class when comparing
/// trajectories across PRs (and so the perf_smoke gate can refuse to
/// compare numbers from different host classes).
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_SUPPORT_BUILDINFO_H
#define ATMEM_SUPPORT_BUILDINFO_H

#include <cstdint>
#include <string>

namespace atmem {
namespace support {

/// Short git commit SHA the build was configured from, captured at CMake
/// configure time ("unknown" outside a git checkout). Stale only if the
/// tree is committed without re-configuring, which the CI flow never does.
const char *gitSha();

/// Compiler family and version string the binary was built with.
const char *compilerId();

/// Host CPU model name, parsed once from /proc/cpuinfo ("unknown" when the
/// field is absent, e.g. on non-Linux hosts).
const std::string &cpuModel();

/// Peak resident set size of this process in bytes (VmHWM from
/// /proc/self/status), or 0 where the kernel does not expose it. Read at
/// call time: emitters sample it right before writing their result file,
/// when the high-water mark already covers the measured work.
uint64_t peakRssBytes();

} // namespace support
} // namespace atmem

#endif // ATMEM_SUPPORT_BUILDINFO_H
