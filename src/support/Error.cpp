#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

using namespace atmem;

void atmem::reportFatalError(std::string_view Message) {
  std::fprintf(stderr, "atmem fatal error: %.*s\n",
               static_cast<int>(Message.size()), Message.data());
  std::abort();
}

void atmem::unreachableInternal(const char *Message, const char *File,
                                unsigned Line) {
  std::fprintf(stderr, "atmem unreachable at %s:%u: %s\n", File, Line,
               Message);
  std::abort();
}
