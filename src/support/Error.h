//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal-error reporting and unreachable-code markers for the ATMem
/// libraries. Library code never throws; programmatic errors abort with a
/// diagnostic, matching the style of large systems codebases.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_SUPPORT_ERROR_H
#define ATMEM_SUPPORT_ERROR_H

#include <string_view>

namespace atmem {

/// Prints \p Message to stderr with an "atmem fatal error:" banner and
/// aborts. Used for unrecoverable violations of runtime invariants that must
/// be diagnosed even in release builds.
[[noreturn]] void reportFatalError(std::string_view Message);

/// Marks a point in control flow that must never execute. Aborts with
/// \p Message when reached.
[[noreturn]] void unreachableInternal(const char *Message, const char *File,
                                      unsigned Line);

} // namespace atmem

/// Use to mark code paths that are impossible when invariants hold.
#define ATMEM_UNREACHABLE(MSG)                                                 \
  ::atmem::unreachableInternal(MSG, __FILE__, __LINE__)

#endif // ATMEM_SUPPORT_ERROR_H
