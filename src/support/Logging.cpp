#include "support/Logging.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>

using namespace atmem;

static std::atomic<LogLevel> CurrentLevel{LogLevel::Warning};

void atmem::setLogLevel(LogLevel Level) { CurrentLevel.store(Level); }

LogLevel atmem::logLevel() { return CurrentLevel.load(); }

static const char *levelName(LogLevel Level) {
  switch (Level) {
  case LogLevel::Error:
    return "error";
  case LogLevel::Warning:
    return "warning";
  case LogLevel::Info:
    return "info";
  case LogLevel::Debug:
    return "debug";
  }
  return "?";
}

void atmem::logMessage(LogLevel Level, std::string_view Message) {
  if (Level > CurrentLevel.load())
    return;
  std::fprintf(stderr, "[atmem %s] %.*s\n", levelName(Level),
               static_cast<int>(Message.size()), Message.data());
}

static void logFormatted(LogLevel Level, const char *Format, va_list Args) {
  if (Level > CurrentLevel.load())
    return;
  char Buf[1024];
  std::vsnprintf(Buf, sizeof(Buf), Format, Args);
  logMessage(Level, Buf);
}

void atmem::logInfo(const char *Format, ...) {
  va_list Args;
  va_start(Args, Format);
  logFormatted(LogLevel::Info, Format, Args);
  va_end(Args);
}

void atmem::logDebug(const char *Format, ...) {
  va_list Args;
  va_start(Args, Format);
  logFormatted(LogLevel::Debug, Format, Args);
  va_end(Args);
}

void atmem::logWarning(const char *Format, ...) {
  va_list Args;
  va_start(Args, Format);
  logFormatted(LogLevel::Warning, Format, Args);
  va_end(Args);
}

void atmem::logError(const char *Format, ...) {
  va_list Args;
  va_start(Args, Format);
  logFormatted(LogLevel::Error, Format, Args);
  va_end(Args);
}
