//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Leveled logging for the runtime. Disabled (Warning level) by default so
/// library code stays quiet inside benchmarks; tests and tools can raise the
/// verbosity to trace profiler and migration decisions.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_SUPPORT_LOGGING_H
#define ATMEM_SUPPORT_LOGGING_H

#include <string_view>

namespace atmem {

enum class LogLevel { Error = 0, Warning = 1, Info = 2, Debug = 3 };

/// Sets the process-wide log threshold; messages above it are dropped.
void setLogLevel(LogLevel Level);

/// Current threshold.
LogLevel logLevel();

/// Emits \p Message to stderr when \p Level is within the threshold.
void logMessage(LogLevel Level, std::string_view Message);

/// printf-style convenience wrappers.
void logInfo(const char *Format, ...) __attribute__((format(printf, 1, 2)));
void logDebug(const char *Format, ...) __attribute__((format(printf, 1, 2)));
void logWarning(const char *Format, ...) __attribute__((format(printf, 1, 2)));
void logError(const char *Format, ...) __attribute__((format(printf, 1, 2)));

} // namespace atmem

#endif // ATMEM_SUPPORT_LOGGING_H
