#include "support/Options.h"

#include "support/Error.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace atmem;

OptionParser::OptionParser(std::string ToolDescription)
    : Description(std::move(ToolDescription)) {}

void OptionParser::addString(const std::string &Name,
                             const std::string &Default,
                             const std::string &Help) {
  Options.push_back({Name, OptionKind::String, Help, Default});
}

void OptionParser::addUnsigned(const std::string &Name, uint64_t Default,
                               const std::string &Help) {
  Options.push_back(
      {Name, OptionKind::Unsigned, Help, std::to_string(Default)});
}

void OptionParser::addDouble(const std::string &Name, double Default,
                             const std::string &Help) {
  Options.push_back({Name, OptionKind::Double, Help, formatDouble(Default, 6)});
}

void OptionParser::addFlag(const std::string &Name, const std::string &Help) {
  Options.push_back({Name, OptionKind::Flag, Help, "false"});
}

const OptionParser::Option *OptionParser::find(const std::string &Name) const {
  for (const Option &O : Options)
    if (O.Name == Name)
      return &O;
  return nullptr;
}

OptionParser::Option *OptionParser::find(const std::string &Name) {
  for (Option &O : Options)
    if (O.Name == Name)
      return &O;
  return nullptr;
}

bool OptionParser::parse(int Argc, const char *const *Argv) {
  if (Argc > 0)
    ProgramName = Argv[0];
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (!startsWith(Arg, "--")) {
      std::fprintf(stderr, "error: unexpected positional argument '%s'\n",
                   Arg.c_str());
      return false;
    }
    std::string Body = Arg.substr(2);
    std::string Name = Body;
    std::string Value;
    bool HasValue = false;
    if (size_t Eq = Body.find('='); Eq != std::string::npos) {
      Name = Body.substr(0, Eq);
      Value = Body.substr(Eq + 1);
      HasValue = true;
    }
    Option *O = find(Name);
    if (!O) {
      std::fprintf(stderr, "error: unknown option '--%s'\n", Name.c_str());
      return false;
    }
    if (!HasValue) {
      if (O->Kind == OptionKind::Flag) {
        Value = "true";
      } else if (I + 1 < Argc) {
        Value = Argv[++I];
      } else {
        std::fprintf(stderr, "error: option '--%s' expects a value\n",
                     Name.c_str());
        return false;
      }
    }
    O->Value = Value;
  }
  return true;
}

std::string OptionParser::getString(const std::string &Name) const {
  const Option *O = find(Name);
  if (!O)
    reportFatalError("unknown option queried: " + Name);
  return O->Value;
}

uint64_t OptionParser::getUnsigned(const std::string &Name) const {
  return parseUnsigned(getString(Name));
}

double OptionParser::getDouble(const std::string &Name) const {
  return parseDoubleOrDie(getString(Name));
}

bool OptionParser::getFlag(const std::string &Name) const {
  return getString(Name) == "true";
}

std::string OptionParser::usage() const {
  std::string Out = Description + "\n\nOptions:\n";
  for (const Option &O : Options) {
    Out += "  --" + O.Name;
    if (O.Kind != OptionKind::Flag)
      Out += "=<" + std::string(O.Kind == OptionKind::String ? "str"
                                : O.Kind == OptionKind::Double
                                    ? "float"
                                    : "int") +
             ">";
    Out += "\n      " + O.Help + " (default: " + O.Value + ")\n";
  }
  return Out;
}
