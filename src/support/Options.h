//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal command-line option parser for the benchmark harnesses and
/// examples. Supports "--name=value", "--name value", and boolean
/// "--flag" forms, plus automatic --help generation.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_SUPPORT_OPTIONS_H
#define ATMEM_SUPPORT_OPTIONS_H

#include <cstdint>
#include <string>
#include <vector>

namespace atmem {

/// Declarative registry of options for one tool. Register options, then call
/// parse(); values are readable afterwards through the typed getters.
class OptionParser {
public:
  explicit OptionParser(std::string ToolDescription);

  /// Registers a string option with a default value.
  void addString(const std::string &Name, const std::string &Default,
                 const std::string &Help);

  /// Registers an unsigned integer option with a default value.
  void addUnsigned(const std::string &Name, uint64_t Default,
                   const std::string &Help);

  /// Registers a floating point option with a default value.
  void addDouble(const std::string &Name, double Default,
                 const std::string &Help);

  /// Registers a boolean flag (defaults to false; presence sets true,
  /// "--name=false" clears).
  void addFlag(const std::string &Name, const std::string &Help);

  /// Parses argv. Returns false (after printing usage) when --help was
  /// requested or an unknown/malformed option was seen.
  bool parse(int Argc, const char *const *Argv);

  std::string getString(const std::string &Name) const;
  uint64_t getUnsigned(const std::string &Name) const;
  double getDouble(const std::string &Name) const;
  bool getFlag(const std::string &Name) const;

  /// Renders the --help text.
  std::string usage() const;

private:
  enum class OptionKind { String, Unsigned, Double, Flag };

  struct Option {
    std::string Name;
    OptionKind Kind;
    std::string Help;
    std::string Value; // Canonical textual form.
  };

  const Option *find(const std::string &Name) const;
  Option *find(const std::string &Name);

  std::string Description;
  std::string ProgramName;
  std::vector<Option> Options;
};

} // namespace atmem

#endif // ATMEM_SUPPORT_OPTIONS_H
