#include "support/Prng.h"

#include <cassert>

using namespace atmem;

uint64_t SplitMix64::next() {
  uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

Xoshiro256::Xoshiro256(uint64_t Seed) {
  SplitMix64 SM(Seed);
  for (uint64_t &Word : State)
    Word = SM.next();
}

uint64_t Xoshiro256::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

double Xoshiro256::nextDouble() {
  // 53 high-quality bits mapped into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

uint64_t Xoshiro256::nextBounded(uint64_t Bound) {
  assert(Bound != 0 && "nextBounded requires a non-zero bound");
  // Lemire's multiply-shift with rejection to remove modulo bias.
  uint64_t X = next();
  __uint128_t M = static_cast<__uint128_t>(X) * Bound;
  auto Low = static_cast<uint64_t>(M);
  if (Low < Bound) {
    uint64_t Threshold = -Bound % Bound;
    while (Low < Threshold) {
      X = next();
      M = static_cast<__uint128_t>(X) * Bound;
      Low = static_cast<uint64_t>(M);
    }
  }
  return static_cast<uint64_t>(M >> 64);
}
