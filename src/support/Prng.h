//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pseudo-random number generation used by the graph
/// generators and tests. Two generators are provided: SplitMix64 (seed
/// expansion) and Xoshiro256** (bulk stream). Determinism across platforms
/// is a hard requirement: every experiment in EXPERIMENTS.md must be exactly
/// reproducible from a seed.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_SUPPORT_PRNG_H
#define ATMEM_SUPPORT_PRNG_H

#include <cstdint>

namespace atmem {

/// SplitMix64: tiny, fast generator mainly used to expand a user seed into
/// the state of a larger generator. Passes BigCrush when used directly.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64-bit value in the stream.
  uint64_t next();

private:
  uint64_t State;
};

/// Xoshiro256**: the project's workhorse generator. Small state, very fast,
/// and high statistical quality for the Monte-Carlo style workloads in the
/// graph generators.
class Xoshiro256 {
public:
  /// Seeds the four-word state via SplitMix64 expansion of \p Seed.
  explicit Xoshiro256(uint64_t Seed);

  /// Returns the next 64-bit value in the stream.
  uint64_t next();

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble();

  /// Returns a uniformly distributed integer in [0, Bound) using Lemire's
  /// unbiased multiply-shift rejection method. \p Bound must be non-zero.
  uint64_t nextBounded(uint64_t Bound);

private:
  uint64_t State[4];
};

} // namespace atmem

#endif // ATMEM_SUPPORT_PRNG_H
