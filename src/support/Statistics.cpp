#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace atmem;

double atmem::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double atmem::geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "geomean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

double atmem::stddev(const std::vector<double> &Values) {
  if (Values.size() < 2)
    return 0.0;
  double M = mean(Values);
  double SqSum = 0.0;
  for (double V : Values)
    SqSum += (V - M) * (V - M);
  return std::sqrt(SqSum / static_cast<double>(Values.size() - 1));
}

double atmem::percentile(std::vector<double> Values, double Pct) {
  if (Values.empty())
    return 0.0;
  assert(Pct >= 0.0 && Pct <= 100.0 && "percentile out of range");
  std::sort(Values.begin(), Values.end());
  if (Values.size() == 1)
    return Values.front();
  double Rank = Pct / 100.0 * static_cast<double>(Values.size() - 1);
  auto Lo = static_cast<size_t>(Rank);
  size_t Hi = std::min(Lo + 1, Values.size() - 1);
  double Frac = Rank - static_cast<double>(Lo);
  return Values[Lo] + (Values[Hi] - Values[Lo]) * Frac;
}

TwoMeansResult atmem::twoMeansClusters(const std::vector<double> &Values) {
  TwoMeansResult Result;
  if (Values.size() < 2)
    return Result;
  auto [MinIt, MaxIt] = std::minmax_element(Values.begin(), Values.end());
  double C0 = *MinIt;
  double C1 = *MaxIt;
  if (C0 == C1) {
    Result.Threshold = C0;
    Result.MeanLow = C0;
    Result.MeanHigh = C0;
    return Result;
  }
  // Lloyd's iterations on one dimension converge in a handful of steps.
  for (int Iter = 0; Iter < 32; ++Iter) {
    double Mid = (C0 + C1) / 2.0;
    double Sum0 = 0.0, Sum1 = 0.0;
    size_t N0 = 0, N1 = 0;
    for (double V : Values) {
      if (V <= Mid) {
        Sum0 += V;
        ++N0;
      } else {
        Sum1 += V;
        ++N1;
      }
    }
    if (N0 == 0 || N1 == 0)
      break;
    double NewC0 = Sum0 / static_cast<double>(N0);
    double NewC1 = Sum1 / static_cast<double>(N1);
    if (NewC0 == C0 && NewC1 == C1)
      break;
    C0 = NewC0;
    C1 = NewC1;
  }
  Result.Threshold = (C0 + C1) / 2.0;
  Result.MeanLow = C0;
  Result.MeanHigh = C1;
  return Result;
}

double atmem::twoMeansThreshold(const std::vector<double> &Values) {
  if (Values.size() < 2)
    return 0.0;
  return twoMeansClusters(Values).Threshold;
}

double atmem::largestGapThreshold(const std::vector<double> &Values) {
  if (Values.size() < 2)
    return 0.0;
  std::vector<double> Sorted(Values);
  std::sort(Sorted.begin(), Sorted.end(), std::greater<double>());
  double MaxVal = Sorted.front();
  if (MaxVal <= 0.0)
    return 0.0;
  double BestGap = -1.0;
  double Threshold = Sorted.front();
  for (size_t I = 0; I + 1 < Sorted.size(); ++I) {
    double Gap = (Sorted[I] - Sorted[I + 1]) / MaxVal;
    if (Gap > BestGap) {
      BestGap = Gap;
      // Place the cut just below the value preceding the steepest drop so
      // that the high side of the gap classifies as selected.
      Threshold = (Sorted[I] + Sorted[I + 1]) / 2.0;
    }
  }
  return Threshold;
}

void RunningStat::add(double Value) {
  if (N == 0) {
    Min = Value;
    Max = Value;
  } else {
    Min = std::min(Min, Value);
    Max = std::max(Max, Value);
  }
  Sum += Value;
  ++N;
  double Delta = Value - MeanAcc;
  MeanAcc += Delta / static_cast<double>(N);
  M2 += Delta * (Value - MeanAcc);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }
