//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small statistics helpers shared by the analyzer (percentile thresholds,
/// Eq. 2 of the paper) and the benchmark harnesses (summaries over repeated
/// runs).
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_SUPPORT_STATISTICS_H
#define ATMEM_SUPPORT_STATISTICS_H

#include <cstddef>
#include <vector>

namespace atmem {

/// Arithmetic mean of \p Values; 0.0 for an empty input.
double mean(const std::vector<double> &Values);

/// Geometric mean of \p Values; all entries must be positive. Returns 0.0
/// for an empty input.
double geomean(const std::vector<double> &Values);

/// Sample standard deviation; 0.0 when fewer than two values.
double stddev(const std::vector<double> &Values);

/// The \p Pct-th percentile (0..100) of \p Values using linear
/// interpolation between closest ranks. The input does not need to be
/// sorted. Returns 0.0 for an empty input.
double percentile(std::vector<double> Values, double Pct);

/// Result of one-dimensional 2-means clustering.
struct TwoMeansResult {
  /// Midpoint between the converged centroids (the split threshold).
  double Threshold = 0.0;
  /// Mean of the low cluster (values <= Threshold).
  double MeanLow = 0.0;
  /// Mean of the high cluster.
  double MeanHigh = 0.0;

  /// Ratio MeanHigh / MeanLow quantifying how separated the clusters
  /// are; 1.0 for degenerate inputs. Large values indicate a genuinely
  /// bimodal (skewed) distribution.
  double separation() const {
    return MeanLow > 0.0 ? MeanHigh / MeanLow : 1.0;
  }
};

/// One-dimensional 2-means clustering (Lloyd's algorithm) used by the
/// hybrid local selector as its derivative-based classification (paper
/// Section 4.2). Returns centroids and the midpoint threshold separating
/// the "high" cluster from the "low" cluster. Degenerate inputs (fewer
/// than two values, or all equal) report Threshold == MeanLow == MeanHigh.
TwoMeansResult twoMeansClusters(const std::vector<double> &Values);

/// Convenience wrapper returning only the split threshold. Returns 0.0
/// for inputs with fewer than two values.
double twoMeansThreshold(const std::vector<double> &Values);

/// Finds the largest relative gap in \p Values when sorted descending:
/// the threshold is placed just above the value that follows the steepest
/// drop relative to the maximum. Complements twoMeansThreshold for highly
/// skewed distributions. Returns 0.0 for inputs with fewer than two values.
double largestGapThreshold(const std::vector<double> &Values);

/// Accumulates a stream of doubles and reports summary statistics without
/// storing the full stream. Spread is tracked with Welford's online
/// algorithm, so variance()/stddev() are numerically stable even for
/// streams whose mean dwarfs their deviation (repeat-run timings).
class RunningStat {
public:
  /// Adds one observation.
  void add(double Value);

  /// Number of observations added so far.
  size_t count() const { return N; }

  /// Arithmetic mean; 0.0 when empty.
  double mean() const { return N == 0 ? 0.0 : Sum / static_cast<double>(N); }

  double min() const { return N == 0 ? 0.0 : Min; }
  double max() const { return N == 0 ? 0.0 : Max; }

  /// Sample variance (n-1 denominator); 0.0 when fewer than two values.
  double variance() const {
    return N < 2 ? 0.0 : M2 / static_cast<double>(N - 1);
  }

  /// Sample standard deviation; matches atmem::stddev over the same
  /// stream.
  double stddev() const;

private:
  size_t N = 0;
  double Sum = 0.0;
  double Min = 0.0;
  double Max = 0.0;
  /// Welford state: running mean and sum of squared deviations.
  double MeanAcc = 0.0;
  double M2 = 0.0;
};

} // namespace atmem

#endif // ATMEM_SUPPORT_STATISTICS_H
