#include "support/StringUtils.h"

#include "support/Error.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

using namespace atmem;

std::string atmem::formatBytes(uint64_t Bytes) {
  static const char *Units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double Value = static_cast<double>(Bytes);
  size_t Unit = 0;
  while (Value >= 1024.0 && Unit + 1 < sizeof(Units) / sizeof(Units[0])) {
    Value /= 1024.0;
    ++Unit;
  }
  char Buf[64];
  if (Unit == 0)
    std::snprintf(Buf, sizeof(Buf), "%llu B",
                  static_cast<unsigned long long>(Bytes));
  else
    std::snprintf(Buf, sizeof(Buf), "%.2f %s", Value, Units[Unit]);
  return Buf;
}

std::string atmem::formatSeconds(double Seconds) {
  char Buf[64];
  if (Seconds < 1e-6)
    std::snprintf(Buf, sizeof(Buf), "%.1f ns", Seconds * 1e9);
  else if (Seconds < 1e-3)
    std::snprintf(Buf, sizeof(Buf), "%.2f us", Seconds * 1e6);
  else if (Seconds < 1.0)
    std::snprintf(Buf, sizeof(Buf), "%.2f ms", Seconds * 1e3);
  else
    std::snprintf(Buf, sizeof(Buf), "%.3f s", Seconds);
  return Buf;
}

std::string atmem::formatDouble(double Value, int Digits) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Digits, Value);
  return Buf;
}

std::string atmem::formatSpeedup(double Ratio) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.2fx", Ratio);
  return Buf;
}

std::string atmem::formatPercent(double Fraction, int Digits) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f%%", Digits, Fraction * 100.0);
  return Buf;
}

std::vector<std::string> atmem::splitString(std::string_view Text, char Sep) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  while (Start <= Text.size()) {
    size_t End = Text.find(Sep, Start);
    if (End == std::string_view::npos)
      End = Text.size();
    if (End > Start)
      Parts.emplace_back(Text.substr(Start, End - Start));
    Start = End + 1;
  }
  return Parts;
}

bool atmem::startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.substr(0, Prefix.size()) == Prefix;
}

uint64_t atmem::parseUnsigned(std::string_view Text) {
  std::string Copy(Text);
  errno = 0;
  char *End = nullptr;
  unsigned long long Value = std::strtoull(Copy.c_str(), &End, 10);
  if (errno != 0 || End == Copy.c_str() || *End != '\0')
    reportFatalError("malformed unsigned integer: '" + Copy + "'");
  return Value;
}

double atmem::parseDoubleOrDie(std::string_view Text) {
  std::string Copy(Text);
  errno = 0;
  char *End = nullptr;
  double Value = std::strtod(Copy.c_str(), &End);
  if (errno != 0 || End == Copy.c_str() || *End != '\0')
    reportFatalError("malformed floating point value: '" + Copy + "'");
  return Value;
}
