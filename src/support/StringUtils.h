//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Formatting helpers shared by tools and benchmark harnesses: human
/// readable byte sizes, durations, ratios, and basic string splitting.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_SUPPORT_STRINGUTILS_H
#define ATMEM_SUPPORT_STRINGUTILS_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace atmem {

/// Formats \p Bytes as a human readable size ("1.50 MiB").
std::string formatBytes(uint64_t Bytes);

/// Formats \p Seconds with an adaptive unit ("12.3 ms", "1.20 s").
std::string formatSeconds(double Seconds);

/// Formats \p Value with \p Digits digits after the decimal point.
std::string formatDouble(double Value, int Digits = 2);

/// Formats \p Ratio as a multiplier string ("2.4x").
std::string formatSpeedup(double Ratio);

/// Formats \p Fraction (0..1) as a percentage string ("12.5%").
std::string formatPercent(double Fraction, int Digits = 1);

/// Splits \p Text on \p Sep, dropping empty pieces.
std::vector<std::string> splitString(std::string_view Text, char Sep);

/// True when \p Text begins with \p Prefix.
bool startsWith(std::string_view Text, std::string_view Prefix);

/// Parses a non-negative integer; aborts with a fatal error on malformed
/// input (tool-level helper, not for untrusted data paths).
uint64_t parseUnsigned(std::string_view Text);

/// Parses a double; aborts with a fatal error on malformed input.
double parseDoubleOrDie(std::string_view Text);

} // namespace atmem

#endif // ATMEM_SUPPORT_STRINGUTILS_H
