#include "support/TablePrinter.h"

#include "support/Error.h"

#include <cstdio>

using namespace atmem;

TablePrinter::TablePrinter(std::vector<std::string> Headers)
    : Headers(std::move(Headers)) {}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  if (Cells.size() != Headers.size())
    reportFatalError("table row width does not match header width");
  Rows.push_back(std::move(Cells));
}

std::string TablePrinter::render() const {
  std::vector<size_t> Widths(Headers.size(), 0);
  for (size_t I = 0; I < Headers.size(); ++I)
    Widths[I] = Headers[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I < Row.size(); ++I)
      if (Row[I].size() > Widths[I])
        Widths[I] = Row[I].size();

  auto AppendRow = [&](std::string &Out,
                       const std::vector<std::string> &Cells) {
    for (size_t I = 0; I < Cells.size(); ++I) {
      Out += Cells[I];
      if (I + 1 < Cells.size())
        Out.append(Widths[I] - Cells[I].size() + 2, ' ');
    }
    Out += '\n';
  };

  std::string Out;
  AppendRow(Out, Headers);
  size_t RuleWidth = 0;
  for (size_t I = 0; I < Widths.size(); ++I)
    RuleWidth += Widths[I] + (I + 1 < Widths.size() ? 2 : 0);
  Out.append(RuleWidth, '-');
  Out += '\n';
  for (const auto &Row : Rows)
    AppendRow(Out, Row);
  return Out;
}

void TablePrinter::print() const {
  std::string Text = render();
  std::fwrite(Text.data(), 1, Text.size(), stdout);
  std::fflush(stdout);
}
