//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-width text table rendering for the benchmark harnesses. Every
/// figure/table reproduction prints its results through this class so the
/// output format stays uniform and greppable.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_SUPPORT_TABLEPRINTER_H
#define ATMEM_SUPPORT_TABLEPRINTER_H

#include <string>
#include <vector>

namespace atmem {

/// Collects rows of string cells and renders them as an aligned text table
/// with a header rule. Numeric formatting is the caller's responsibility
/// (see StringUtils.h helpers).
class TablePrinter {
public:
  /// Creates a table with the given column \p Headers.
  explicit TablePrinter(std::vector<std::string> Headers);

  /// Appends one row; the cell count must match the header count.
  void addRow(std::vector<std::string> Cells);

  /// Renders the table to a string. Columns are left-aligned and separated
  /// by two spaces; a dashed rule follows the header.
  std::string render() const;

  /// Convenience: renders and writes to stdout.
  void print() const;

  size_t rowCount() const { return Rows.size(); }

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace atmem

#endif // ATMEM_SUPPORT_TABLEPRINTER_H
