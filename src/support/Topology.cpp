//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Topology.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>

#if defined(__linux__)
#include <dirent.h>
#include <sched.h>
#endif

namespace atmem {
namespace support {

namespace {

uint32_t probeHardwareThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1u : static_cast<uint32_t>(N);
}

#if defined(__linux__)
/// Reads one small sysfs file into \p Out (first line, trailing
/// whitespace stripped). sysfs attribute files fit a fixed buffer.
bool readSysfsLine(const std::string &Path, std::string &Out) {
  FILE *F = std::fopen(Path.c_str(), "r");
  if (!F)
    return false;
  char Buf[4096];
  size_t N = std::fread(Buf, 1, sizeof(Buf) - 1, F);
  std::fclose(F);
  Buf[N] = '\0';
  Out.assign(Buf);
  while (!Out.empty() && (Out.back() == '\n' || Out.back() == '\r' ||
                          Out.back() == ' ' || Out.back() == '\t'))
    Out.pop_back();
  return true;
}
#endif

} // namespace

bool Topology::parseCpuList(std::string_view Text, std::vector<int> &Out) {
  Out.clear();
  // An offline node legitimately has an empty cpulist.
  if (Text.empty())
    return true;
  size_t Pos = 0;
  auto parseInt = [&](long &Value) {
    if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
      return false;
    long V = 0;
    while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9') {
      V = V * 10 + (Text[Pos] - '0');
      if (V > 1 << 20) // implausible cpu id; reject rather than overflow
        return false;
      ++Pos;
    }
    Value = V;
    return true;
  };
  while (true) {
    long Lo = 0;
    if (!parseInt(Lo))
      return false;
    long Hi = Lo;
    if (Pos < Text.size() && Text[Pos] == '-') {
      ++Pos;
      if (!parseInt(Hi) || Hi < Lo)
        return false;
    }
    for (long C = Lo; C <= Hi; ++C)
      Out.push_back(static_cast<int>(C));
    if (Pos == Text.size())
      break;
    if (Text[Pos] != ',')
      return false;
    ++Pos;
  }
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return true;
}

Topology Topology::singleNode(uint32_t HardwareThreads) {
  Topology T;
  T.HostThreads = HardwareThreads ? HardwareThreads : probeHardwareThreads();
  T.Nodes.clear();
  T.Nodes.emplace_back();
  T.Nodes[0].reserve(T.HostThreads);
  for (uint32_t C = 0; C < T.HostThreads; ++C)
    T.Nodes[0].push_back(static_cast<int>(C));
  T.CpuNode.assign(T.HostThreads, 0);
  return T;
}

Topology Topology::fromNodeCpus(std::vector<std::vector<int>> NodeCpus) {
  // Drop nodes with no cpus (sysfs lists memory-only nodes; no drain
  // worker can run there, so they get no shards either).
  NodeCpus.erase(std::remove_if(NodeCpus.begin(), NodeCpus.end(),
                                [](const std::vector<int> &C) {
                                  return C.empty();
                                }),
                 NodeCpus.end());
  if (NodeCpus.empty())
    return singleNode();
  Topology T;
  T.HostThreads = probeHardwareThreads();
  T.Nodes = std::move(NodeCpus);
  int MaxCpu = -1;
  for (const auto &Cpus : T.Nodes)
    for (int C : Cpus)
      MaxCpu = std::max(MaxCpu, C);
  T.CpuNode.assign(static_cast<size_t>(MaxCpu) + 1, 0);
  for (uint32_t N = 0; N < T.Nodes.size(); ++N)
    for (int C : T.Nodes[N])
      if (C >= 0)
        T.CpuNode[static_cast<size_t>(C)] = N;
  return T;
}

Topology Topology::detect(bool *ProbeOk) {
  if (ProbeOk)
    *ProbeOk = true;
#if defined(__linux__)
  DIR *Dir = opendir("/sys/devices/system/node");
  if (!Dir) {
    // Kernels without CONFIG_NUMA expose no node directory at all; that
    // is an honest single-node host, not a probe failure.
    return singleNode();
  }
  // Collect node ids first so the layout is independent of readdir order.
  std::vector<unsigned> NodeIds;
  bool Ok = true;
  while (struct dirent *Ent = readdir(Dir)) {
    unsigned Id = 0;
    int Consumed = 0;
    if (std::sscanf(Ent->d_name, "node%u%n", &Id, &Consumed) == 1 &&
        Ent->d_name[Consumed] == '\0')
      NodeIds.push_back(Id);
  }
  closedir(Dir);
  std::sort(NodeIds.begin(), NodeIds.end());
  std::vector<std::vector<int>> NodeCpus;
  for (unsigned Id : NodeIds) {
    std::string Line;
    std::vector<int> Cpus;
    if (!readSysfsLine("/sys/devices/system/node/node" + std::to_string(Id) +
                           "/cpulist",
                       Line) ||
        !parseCpuList(Line, Cpus)) {
      Ok = false;
      break;
    }
    NodeCpus.push_back(std::move(Cpus));
  }
  // A node directory that exists but yields no readable nodes is a
  // broken probe, not a single-node host.
  if (!Ok || NodeIds.empty()) {
    if (ProbeOk)
      *ProbeOk = false;
    return singleNode();
  }
  return fromNodeCpus(std::move(NodeCpus));
#else
  return singleNode();
#endif
}

const std::vector<int> &Topology::nodeCpus(uint32_t Node) const {
  static const std::vector<int> Empty;
  return Node < Nodes.size() ? Nodes[Node] : Empty;
}

uint32_t Topology::nodeOfCpu(int Cpu) const {
  if (Cpu < 0 || static_cast<size_t>(Cpu) >= CpuNode.size())
    return 0;
  return CpuNode[static_cast<size_t>(Cpu)];
}

uint32_t Topology::nodeOfShard(uint32_t Shard, uint32_t TotalShards) const {
  if (TotalShards == 0 || Nodes.size() <= 1)
    return 0;
  if (Shard >= TotalShards)
    Shard = TotalShards - 1;
  // Block distribution; the multiply stays in 64 bits for any sane count.
  return static_cast<uint32_t>(static_cast<uint64_t>(Shard) * Nodes.size() /
                               TotalShards);
}

bool pinThreadToCpus(const std::vector<int> &Cpus) {
#if defined(__linux__)
  if (Cpus.empty())
    return false;
  cpu_set_t Set;
  CPU_ZERO(&Set);
  bool Any = false;
  for (int C : Cpus)
    if (C >= 0 && C < CPU_SETSIZE) {
      CPU_SET(C, &Set);
      Any = true;
    }
  if (!Any)
    return false;
  return sched_setaffinity(0, sizeof(Set), &Set) == 0;
#else
  (void)Cpus;
  return false;
#endif
}

int currentCpu() {
#if defined(__linux__)
  return sched_getcpu();
#else
  return -1;
#endif
}

} // namespace support
} // namespace atmem
