//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Host memory-topology detection for the NUMA-sharded drain pipeline.
/// One probe of /sys/devices/system/node at Runtime construction yields
/// the NUMA node list and the cpu→node map; the runtime uses it to give
/// every SimContext shard a home node, pin the shard's kernel-pool worker
/// to that node's cpus (so the shard's miss buffer, recycle pool, and
/// attribution-index replica are first-touch allocated node-locally), and
/// account cross-socket drain traffic (`numa.remote_drain_bytes`).
///
/// Topology is a perf hint, never a correctness input: every consumer
/// must produce bit-identical results under any Topology value, and any
/// probe failure (missing sysfs, parse error, injected
/// `drain.topology_probe` fault) degrades to the single-node layout —
/// exactly the layout every pre-topology build used.
///
/// The class itself has no sysfs, fault, or obs dependency on its hot
/// paths: detection runs once, parsing is pure string work (exposed for
/// tests), and mocks are first-class (`fromNodeCpus`) so multi-node
/// behaviour is testable on any host.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_SUPPORT_TOPOLOGY_H
#define ATMEM_SUPPORT_TOPOLOGY_H

#include <cstdint>
#include <string_view>
#include <vector>

namespace atmem {
namespace support {

/// Immutable snapshot of the host's NUMA layout plus the cached hardware
/// thread count (std::thread::hardware_concurrency probed once, not per
/// drain). Default-constructed instances are the single-node fallback.
class Topology {
public:
  /// Minimal single-node layout (node 0 owning cpu 0, one hardware
  /// thread) with no sysfs or hardware_concurrency probe; singleNode()
  /// builds on top of this, so it must not delegate back to it.
  Topology() : Nodes(1, std::vector<int>(1, 0)), CpuNode(1, 0) {}

  /// Probes sysfs (/sys/devices/system/node/node*/cpulist). On any
  /// failure — no sysfs, no nodes, malformed cpulist — returns
  /// singleNode() and sets \p ProbeOk (when non-null) to false.
  static Topology detect(bool *ProbeOk = nullptr);

  /// The degraded / uniform layout: one node owning cpus
  /// [0, HardwareThreads).
  static Topology singleNode(uint32_t HardwareThreads = 0);

  /// Mocked topology from explicit per-node cpu lists (tests). Empty
  /// input degrades to singleNode().
  static Topology fromNodeCpus(std::vector<std::vector<int>> NodeCpus);

  uint32_t numNodes() const { return static_cast<uint32_t>(Nodes.size()); }
  bool multiNode() const { return Nodes.size() > 1; }

  /// Cached std::thread::hardware_concurrency (at least 1).
  uint32_t hardwareThreads() const { return HostThreads; }

  /// Cpus of \p Node (empty for out-of-range nodes).
  const std::vector<int> &nodeCpus(uint32_t Node) const;

  /// Node owning \p Cpu; 0 for cpus outside every node's list (hotplug
  /// holes, mocked layouts narrower than the host).
  uint32_t nodeOfCpu(int Cpu) const;

  /// Home node of shard \p Shard out of \p TotalShards: shards are
  /// block-distributed (shards 0..k-1 on node 0, the next k on node 1,
  /// ...) so neighbouring shards — which the kernel pool fills together —
  /// share a socket.
  uint32_t nodeOfShard(uint32_t Shard, uint32_t TotalShards) const;

  /// Parses a sysfs cpulist ("0-3,8,10-11") into sorted cpu ids. Returns
  /// false (leaving \p Out unspecified) on malformed input. Exposed for
  /// tests; detect() builds nodes from exactly this.
  static bool parseCpuList(std::string_view Text, std::vector<int> &Out);

private:
  /// Cpus per node, node ids dense in [0, numNodes()).
  std::vector<std::vector<int>> Nodes;
  /// Cpu id -> node id (index = cpu; sized to the max listed cpu).
  std::vector<uint32_t> CpuNode;
  uint32_t HostThreads = 1;
};

/// Best-effort affinity pin of the calling thread to \p Cpus (Linux
/// sched_setaffinity). Returns false — without side effects — when the
/// set is empty, the platform has no affinity API, or the kernel rejects
/// the mask (mocked topologies name cpus the host lacks); callers treat
/// pinning as a locality hint, never a requirement.
bool pinThreadToCpus(const std::vector<int> &Cpus);

/// The cpu the calling thread is currently running on (Linux
/// sched_getcpu), or -1 where unavailable. Paired with
/// Topology::nodeOfCpu for drain-locality accounting; -1 maps to node 0.
int currentCpu();

} // namespace support
} // namespace atmem

#endif // ATMEM_SUPPORT_TOPOLOGY_H
