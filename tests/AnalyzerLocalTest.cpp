//===----------------------------------------------------------------------===//
// Unit tests for hybrid local selection (paper Eq. 1-3).
//===----------------------------------------------------------------------===//

#include "analyzer/LocalSelector.h"

#include <gtest/gtest.h>

using namespace atmem::analyzer;

namespace {

TEST(LocalSelectorTest, EmptyInput) {
  LocalSelector Selector;
  LocalSelection Sel = Selector.select({}, 4096, 64);
  EXPECT_TRUE(Sel.Priority.empty());
  EXPECT_EQ(Sel.CriticalCount, 0u);
}

TEST(LocalSelectorTest, PriorityIsMissesPerByte) {
  LocalSelector Selector;
  LocalSelection Sel = Selector.select({4096.0, 8192.0}, 4096, 1);
  EXPECT_DOUBLE_EQ(Sel.Priority[0], 1.0);
  EXPECT_DOUBLE_EQ(Sel.Priority[1], 2.0);
}

TEST(LocalSelectorTest, AllZeroSelectsNothing) {
  LocalSelector Selector;
  LocalSelection Sel = Selector.select({0.0, 0.0, 0.0}, 4096, 64);
  EXPECT_EQ(Sel.CriticalCount, 0u);
}

TEST(LocalSelectorTest, SkewedDistributionSelectsHead) {
  LocalSelector Selector;
  // One scorching chunk, many cold ones.
  std::vector<double> Misses(100, 10.0);
  Misses[7] = 100000.0;
  LocalSelection Sel = Selector.select(Misses, 4096, 1);
  EXPECT_TRUE(Sel.Critical[7]);
  EXPECT_EQ(Sel.CriticalCount, 1u);
}

TEST(LocalSelectorTest, UniformDistributionSelectsNothingLocally) {
  // Eq. 3 is strict: an exactly even object has no intra-object contrast
  // for the *local* stage to exploit. Whether the whole object deserves
  // fast memory is the global ranking stage's call (see
  // AnalyzerPipelineTest.GlobalRankingLiftsUniformlyHotObject).
  LocalSelector Selector;
  std::vector<double> Misses(64, 5000.0);
  LocalSelection Sel = Selector.select(Misses, 4096, 1);
  EXPECT_EQ(Sel.CriticalCount, 0u);
}

TEST(LocalSelectorTest, NoiseFloorSuppressesSingleSamples) {
  LocalSelectorConfig Config;
  Config.MinSamples = 2.0;
  LocalSelector Selector(Config);
  // Estimates equal to one sampling period: below the 2-sample floor.
  std::vector<double> Misses(16, 64.0);
  LocalSelection Sel = Selector.select(Misses, 4096, /*SamplePeriod=*/64);
  EXPECT_EQ(Sel.CriticalCount, 0u);
}

TEST(LocalSelectorTest, AboveFloorSelected) {
  LocalSelectorConfig Config;
  Config.MinSamples = 2.0;
  Config.PercentileN = 50.0;
  LocalSelector Selector(Config);
  // Distinct values well above the noise floor: the top half (values
  // exceeding the median) classify critical.
  std::vector<double> Misses;
  for (int I = 0; I < 16; ++I)
    Misses.push_back(1000.0 + I * 10.0);
  LocalSelection Sel = Selector.select(Misses, 4096, 64);
  EXPECT_GE(Sel.CriticalCount, 7u);
  EXPECT_LE(Sel.CriticalCount, 8u);
}

TEST(LocalSelectorTest, PercentileControlsSelectionBreadth) {
  std::vector<double> Misses;
  for (int I = 0; I < 100; ++I)
    Misses.push_back(100.0 + I); // Slowly increasing, no big gaps.
  LocalSelectorConfig Narrow;
  Narrow.PercentileN = 95.0;
  Narrow.UseDerivativeCut = false;
  LocalSelectorConfig Wide;
  Wide.PercentileN = 50.0;
  Wide.UseDerivativeCut = false;
  uint32_t NarrowCount =
      LocalSelector(Narrow).select(Misses, 4096, 1).CriticalCount;
  uint32_t WideCount =
      LocalSelector(Wide).select(Misses, 4096, 1).CriticalCount;
  EXPECT_LT(NarrowCount, WideCount);
  EXPECT_NEAR(WideCount, 50u, 2u);
}

TEST(LocalSelectorTest, DerivativeCutTightensOnBimodal) {
  // 50 hot chunks, 50 lukewarm. P50 alone would select all hot plus the
  // boundary; the 2-means cut lands between the clusters.
  std::vector<double> Misses;
  for (int I = 0; I < 50; ++I)
    Misses.push_back(10000.0);
  for (int I = 0; I < 50; ++I)
    Misses.push_back(100.0);
  LocalSelectorConfig Config;
  Config.PercentileN = 10.0; // Alone, would select ~90%.
  LocalSelector Selector(Config);
  LocalSelection Sel = Selector.select(Misses, 4096, 1);
  EXPECT_EQ(Sel.CriticalCount, 50u);
  for (int I = 0; I < 50; ++I)
    EXPECT_TRUE(Sel.Critical[I]);
}

TEST(LocalSelectorTest, ThetaReported) {
  LocalSelector Selector;
  std::vector<double> Misses = {100.0, 200000.0, 50.0, 60.0};
  LocalSelection Sel = Selector.select(Misses, 4096, 1);
  EXPECT_GT(Sel.Theta, 0.0);
  for (size_t I = 0; I < Misses.size(); ++I) {
    if (Sel.Critical[I])
      EXPECT_GT(Sel.Priority[I], Sel.Theta);
    else
      EXPECT_LE(Sel.Priority[I], Sel.Theta);
  }
}

TEST(LocalSelectorTest, ZeroChunksNeverCritical) {
  LocalSelector Selector;
  std::vector<double> Misses = {0.0, 100.0, 0.0};
  LocalSelection Sel = Selector.select(Misses, 4096, 1);
  EXPECT_FALSE(Sel.Critical[0]);
  EXPECT_FALSE(Sel.Critical[2]);
  EXPECT_TRUE(Sel.Critical[1]);
}

TEST(LocalSelectorTest, LargerChunksLowerPriority) {
  LocalSelector Selector;
  LocalSelection SmallChunks = Selector.select({1000.0}, 4096, 1);
  LocalSelection LargeChunks = Selector.select({1000.0}, 65536, 1);
  EXPECT_GT(SmallChunks.Priority[0], LargeChunks.Priority[0]);
}

} // namespace
