//===----------------------------------------------------------------------===//
// Tests for the full analyzer pipeline (Analyzer::classify / plan):
// the global cross-object ranking stage, promotion toggles, and budget
// integration — driven through a real runtime + profiler.
//===----------------------------------------------------------------------===//

#include "analyzer/Analyzer.h"
#include "core/Runtime.h"

#include <gtest/gtest.h>

using namespace atmem;
using namespace atmem::analyzer;

namespace {

/// Fixture with two objects of very different density: a small array
/// hammered uniformly at random (hot) next to a large array scanned once
/// (cold-ish, sequential). This is the vertex-array-vs-edge-array shape
/// of every graph kernel.
class PipelineTest : public ::testing::Test {
protected:
  PipelineTest() : Rt(makeConfig()) {
    Hot = Rt.allocate<uint64_t>("hot", 1 << 15);   // 256 KiB.
    Cold = Rt.allocate<uint64_t>("cold", 1 << 19); // 4 MiB.
    Rt.profilingStart();
    Rt.beginIteration();
    uint64_t State = 5;
    for (int I = 0; I < 300000; ++I) {
      State = State * 6364136223846793005ull + 1442695040888963407ull;
      Hot[(State >> 33) & ((1 << 15) - 1)] += 1;
    }
    for (size_t I = 0; I < Cold.size(); I += 8)
      Cold[I] += 1;
    Rt.endIteration();
    Rt.profilingStop();
  }

  static core::RuntimeConfig makeConfig() {
    core::RuntimeConfig Config;
    Config.Machine = sim::nvmDramTestbed(1.0 / 1024);
    return Config;
  }

  const ObjectClassification &classOf(
      const std::vector<ObjectClassification> &Classes,
      mem::ObjectId Id) const {
    for (const auto &Class : Classes)
      if (Class.Object == Id)
        return Class;
    ADD_FAILURE() << "object not classified";
    static ObjectClassification Dummy;
    return Dummy;
  }

  static double selectedFraction(const ObjectClassification &Class) {
    uint32_t Count = 0;
    for (uint32_t C = 0; C < Class.numChunks(); ++C)
      if (Class.isSelected(C))
        ++Count;
    return static_cast<double>(Count) / Class.numChunks();
  }

  core::Runtime Rt;
  core::TrackedArray<uint64_t> Hot;
  core::TrackedArray<uint64_t> Cold;
};

TEST_F(PipelineTest, GlobalRankingLiftsUniformlyHotObject) {
  Analyzer WithGlobal;
  auto Classes = WithGlobal.classify(Rt.registry(), Rt.profiler());
  const auto &HotClass = classOf(Classes, Hot.objectId());
  EXPECT_GT(selectedFraction(HotClass), 0.9);

  AnalyzerConfig NoGlobal;
  NoGlobal.UseGlobalRanking = false;
  auto Local = Analyzer(NoGlobal).classify(Rt.registry(), Rt.profiler());
  const auto &HotLocal = classOf(Local, Hot.objectId());
  // The local percentile alone selects far less of a uniform object.
  EXPECT_LT(static_cast<double>(HotLocal.Local.CriticalCount) /
                HotLocal.numChunks(),
            0.6);
}

TEST_F(PipelineTest, ColdObjectStaysMostlyUnselected) {
  Analyzer Anal;
  auto Classes = Anal.classify(Rt.registry(), Rt.profiler());
  EXPECT_LT(selectedFraction(classOf(Classes, Cold.objectId())), 0.4);
}

TEST_F(PipelineTest, HotObjectWeightDominates) {
  Analyzer Anal;
  auto Classes = Anal.classify(Rt.registry(), Rt.profiler());
  EXPECT_GT(classOf(Classes, Hot.objectId()).Promotion.Weight,
            classOf(Classes, Cold.objectId()).Promotion.Weight);
}

TEST_F(PipelineTest, PromotionDisabledLeavesNoPromotedChunks) {
  AnalyzerConfig Config;
  Config.EnablePromotion = false;
  auto Classes = Analyzer(Config).classify(Rt.registry(), Rt.profiler());
  for (const auto &Class : Classes)
    EXPECT_EQ(Class.Promotion.PromotedCount, 0u);
}

TEST_F(PipelineTest, PlanRespectsBudget) {
  Analyzer Anal;
  PlacementPlan Unbounded =
      Anal.plan(Rt.registry(), Rt.profiler(), 1ull << 40);
  ASSERT_GT(Unbounded.TotalBytes, 0u);
  uint64_t Budget = Unbounded.TotalBytes / 3;
  PlacementPlan Bounded = Anal.plan(Rt.registry(), Rt.profiler(), Budget);
  EXPECT_LE(Bounded.TotalBytes, Budget);
  EXPECT_GT(Bounded.TotalBytes, 0u);
}

TEST_F(PipelineTest, ClassificationCoversEveryLiveObject) {
  Analyzer Anal;
  auto Classes = Anal.classify(Rt.registry(), Rt.profiler());
  EXPECT_EQ(Classes.size(), Rt.registry().liveObjects().size());
  for (const auto &Class : Classes) {
    const mem::DataObject &Obj = Rt.registry().object(Class.Object);
    EXPECT_EQ(Class.numChunks(), Obj.numChunks());
    EXPECT_EQ(Class.ChunkBytes, Obj.chunkBytes());
    EXPECT_EQ(Class.MappedBytes, Obj.mappedBytes());
  }
}

TEST(PipelineEmptyTest, NoSamplesYieldsEmptyPlan) {
  core::RuntimeConfig Config;
  Config.Machine = sim::nvmDramTestbed(1.0 / 1024);
  core::Runtime Rt(Config);
  auto Arr = Rt.allocate<uint64_t>("a", 1 << 14);
  (void)Arr;
  Rt.profilingStart();
  Rt.profilingStop(); // No accesses at all.
  Analyzer Anal;
  PlacementPlan Plan = Anal.plan(Rt.registry(), Rt.profiler(), 1ull << 30);
  EXPECT_EQ(Plan.TotalBytes, 0u);
}

TEST(PipelineEmptyTest, NoObjectsIsFine) {
  core::RuntimeConfig Config;
  Config.Machine = sim::nvmDramTestbed(1.0 / 1024);
  core::Runtime Rt(Config);
  Rt.profilingStart();
  Rt.profilingStop();
  Analyzer Anal;
  auto Classes = Anal.classify(Rt.registry(), Rt.profiler());
  EXPECT_TRUE(Classes.empty());
  PlacementPlan Plan = Anal.plan(Rt.registry(), Rt.profiler(), 1 << 20);
  EXPECT_EQ(Plan.TotalBytes, 0u);
}

} // namespace
