//===----------------------------------------------------------------------===//
// Unit tests for tree-based global promotion (paper Eq. 4-5, Section 4.3).
//===----------------------------------------------------------------------===//

#include "analyzer/GlobalPromoter.h"

#include <gtest/gtest.h>

using namespace atmem::analyzer;

namespace {

/// Builds a LocalSelection from explicit flags with uniform priority for
/// critical chunks.
LocalSelection makeSelection(std::vector<uint8_t> Critical,
                             double CriticalPr = 1.0) {
  LocalSelection Sel;
  Sel.Critical = std::move(Critical);
  Sel.Priority.resize(Sel.Critical.size(), 0.0);
  for (size_t I = 0; I < Sel.Critical.size(); ++I)
    if (Sel.Critical[I]) {
      Sel.Priority[I] = CriticalPr;
      ++Sel.CriticalCount;
    }
  return Sel;
}

TEST(ObjectWeightTest, AverageOfCriticalPriorities) {
  LocalSelection Sel = makeSelection({1, 0, 1, 0});
  Sel.Priority = {2.0, 99.0, 4.0, 99.0}; // Non-critical values ignored.
  EXPECT_DOUBLE_EQ(GlobalPromoter::objectWeight(Sel), 3.0);
}

TEST(ObjectWeightTest, NoCriticalChunksZeroWeight) {
  LocalSelection Sel = makeSelection({0, 0});
  EXPECT_DOUBLE_EQ(GlobalPromoter::objectWeight(Sel), 0.0);
}

TEST(ObjectWeightTest, FewHotBeatsManyLukewarm) {
  // Paper Section 4.3.2: "a data structure of fewer critical chunks with
  // high priority has a higher weight than one of more critical chunks
  // with low priority."
  LocalSelection FewHot = makeSelection({1, 0, 0, 0, 0, 0, 0, 0}, 100.0);
  LocalSelection ManyCool = makeSelection({1, 1, 1, 1, 1, 1, 0, 0}, 2.0);
  EXPECT_GT(GlobalPromoter::objectWeight(FewHot),
            GlobalPromoter::objectWeight(ManyCool));
}

TEST(AdaptiveThresholdTest, HigherWeightLowerThreshold) {
  GlobalPromoter Promoter;
  std::vector<double> Thresholds =
      Promoter.adaptiveThresholds({10.0, 1.0, 5.0});
  EXPECT_LT(Thresholds[0], Thresholds[1]);
  EXPECT_LT(Thresholds[0], Thresholds[2]);
  EXPECT_LT(Thresholds[2], Thresholds[1]);
}

TEST(AdaptiveThresholdTest, RangeIsEpsToEpsPlusTheta) {
  PromoterConfig Config;
  Config.Arity = 8;
  Config.ThetaTR = 0.5;
  GlobalPromoter Promoter(Config);
  std::vector<double> Thresholds = Promoter.adaptiveThresholds({10.0, 1.0});
  EXPECT_DOUBLE_EQ(Thresholds[0], 0.125); // eps for the heaviest object.
  EXPECT_DOUBLE_EQ(Thresholds[1], 0.625); // eps + thetaTR for the lightest.
}

TEST(AdaptiveThresholdTest, ZeroWeightNeverPromotes) {
  GlobalPromoter Promoter;
  std::vector<double> Thresholds = Promoter.adaptiveThresholds({5.0, 0.0});
  EXPECT_GT(Thresholds[1], 1.0);
}

TEST(AdaptiveThresholdTest, SingleWeightUsesMidpoint) {
  PromoterConfig Config;
  Config.Arity = 4;
  Config.ThetaTR = 0.5;
  GlobalPromoter Promoter(Config);
  std::vector<double> Thresholds = Promoter.adaptiveThresholds({3.0});
  EXPECT_DOUBLE_EQ(Thresholds[0], 0.25 + 0.25);
}

TEST(AdaptiveThresholdTest, EpsilonOffsetShiftsThresholds) {
  PromoterConfig Lo;
  Lo.EpsilonOffset = 0.0;
  PromoterConfig Hi;
  Hi.EpsilonOffset = 0.3;
  auto ThreshLo = GlobalPromoter(Lo).adaptiveThresholds({2.0, 1.0});
  auto ThreshHi = GlobalPromoter(Hi).adaptiveThresholds({2.0, 1.0});
  EXPECT_DOUBLE_EQ(ThreshHi[0], ThreshLo[0] + 0.3);
  EXPECT_DOUBLE_EQ(ThreshHi[1], ThreshLo[1] + 0.3);
}

TEST(AdaptiveThresholdTest, AllWeightsZero) {
  GlobalPromoter Promoter;
  for (double T : Promoter.adaptiveThresholds({0.0, 0.0}))
    EXPECT_GT(T, 1.0);
}

TEST(AdaptiveThresholdTest, EqualWeightsUseMidpoint) {
  // maxW == minW with several objects: ||minW - maxW|| degenerates to
  // zero and every object must fall back to the 0.5 midpoint norm, not
  // divide by zero.
  PromoterConfig Config;
  Config.Arity = 8;
  Config.ThetaTR = 0.5;
  GlobalPromoter Promoter(Config);
  std::vector<double> Thresholds =
      Promoter.adaptiveThresholds({3.0, 3.0, 3.0});
  for (double T : Thresholds)
    EXPECT_DOUBLE_EQ(T, 0.125 + 0.25);
}

TEST(AdaptiveThresholdTest, MixedZeroAndEqualPositiveWeights) {
  // Zero-weight objects are excluded from the min/max scan, so equal
  // positive weights still degenerate to the midpoint while the
  // zero-weight object stays clamped above 1.
  GlobalPromoter Promoter;
  std::vector<double> Thresholds =
      Promoter.adaptiveThresholds({2.0, 0.0, 2.0});
  EXPECT_DOUBLE_EQ(Thresholds[0], Thresholds[2]);
  EXPECT_LE(Thresholds[0], 1.0);
  EXPECT_GT(Thresholds[1], 1.0);
}

TEST(PromoteTest, TraceNodesRecordsPromotingNodeRatio) {
  // Figure 3c shape again, now with provenance: the promoted leaf must
  // carry the tree ratio of the node that promoted it (0.75 >= 0.5),
  // and untouched leaves the ratio of the node that blocked descent.
  PromoterConfig Config;
  Config.Arity = 2;
  GlobalPromoter Promoter(Config);
  LocalSelection Sel = makeSelection({1, 1, 1, 0, 0, 0, 0, 0});
  PromotionResult Result = Promoter.promote(Sel, 0.5, /*TraceNodes=*/true);
  ASSERT_EQ(Result.NodeTreeRatio.size(), 8u);
  EXPECT_TRUE(Result.Promoted[3]);
  // Leaves [0, 4) were promoted by the left subtree node with TR 0.75.
  for (int I = 0; I < 4; ++I)
    EXPECT_DOUBLE_EQ(Result.NodeTreeRatio[I], 0.75) << "leaf " << I;
  // The right subtree holds nothing critical: its node (TR 0) blocked.
  for (int I = 4; I < 8; ++I)
    EXPECT_DOUBLE_EQ(Result.NodeTreeRatio[I], 0.0) << "leaf " << I;
  // Every promoted chunk's recorded ratio justifies its promotion.
  for (int I = 0; I < 8; ++I)
    if (Result.Promoted[I])
      EXPECT_GE(Result.NodeTreeRatio[I], Result.Threshold);
}

TEST(PromoteTest, TraceNodesDoesNotChangeDecisions) {
  PromoterConfig Config;
  Config.Arity = 4;
  GlobalPromoter Promoter(Config);
  std::vector<uint8_t> Flags(16, 0);
  Flags[0] = Flags[1] = Flags[2] = Flags[9] = Flags[10] = 1;
  LocalSelection Sel = makeSelection(Flags);
  PromotionResult Plain = Promoter.promote(Sel, 0.6);
  PromotionResult Traced = Promoter.promote(Sel, 0.6, /*TraceNodes=*/true);
  EXPECT_EQ(Plain.Promoted, Traced.Promoted);
  EXPECT_EQ(Plain.PromotedCount, Traced.PromotedCount);
  EXPECT_TRUE(Plain.NodeTreeRatio.empty());
  EXPECT_EQ(Traced.NodeTreeRatio.size(), Flags.size());
}

TEST(PromoteTest, TraceNodesEmptyWhenWalkNeverRuns) {
  GlobalPromoter Promoter;
  // Threshold above 1: the walk is skipped entirely, so there is no
  // provenance to report — all ratios stay zero.
  LocalSelection Sel = makeSelection({1, 1, 0, 0});
  PromotionResult Result = Promoter.promote(Sel, 1.5, /*TraceNodes=*/true);
  for (double TR : Result.NodeTreeRatio)
    EXPECT_DOUBLE_EQ(TR, 0.0);
}

TEST(PromoteTest, PaperFigure3TopDownPromotion) {
  // Figure 3c: threshold 0.5; the left subtree of a binary tree has
  // TR 0.75 >= 0.5, so its zero-ratio child is patched, producing one
  // continuous region over leaves [0, 4). The right half is untouched.
  PromoterConfig Config;
  Config.Arity = 2;
  GlobalPromoter Promoter(Config);
  LocalSelection Sel = makeSelection({1, 1, 1, 0, 0, 0, 0, 0});
  PromotionResult Result = Promoter.promote(Sel, 0.5);
  EXPECT_TRUE(Result.Promoted[3]);
  EXPECT_EQ(Result.PromotedCount, 1u);
  for (int I = 4; I < 8; ++I)
    EXPECT_FALSE(Result.Promoted[I]) << "leaf " << I;
}

TEST(PromoteTest, RootAboveThresholdPromotesWholeObject) {
  PromoterConfig Config;
  Config.Arity = 2;
  GlobalPromoter Promoter(Config);
  LocalSelection Sel = makeSelection({1, 0, 1, 0, 1, 0, 1, 0});
  PromotionResult Result = Promoter.promote(Sel, 0.5);
  EXPECT_EQ(Result.PromotedCount, 4u);
  for (int I = 0; I < 8; ++I)
    EXPECT_TRUE(Sel.Critical[I] || Result.Promoted[I]);
}

TEST(PromoteTest, NothingCriticalNothingPromoted) {
  GlobalPromoter Promoter;
  LocalSelection Sel = makeSelection({0, 0, 0, 0});
  PromotionResult Result = Promoter.promote(Sel, 0.125);
  EXPECT_EQ(Result.PromotedCount, 0u);
}

TEST(PromoteTest, ThresholdAboveOneNeverPromotes) {
  GlobalPromoter Promoter;
  LocalSelection Sel = makeSelection({1, 1, 1, 0});
  PromotionResult Result = Promoter.promote(Sel, 1.5);
  EXPECT_EQ(Result.PromotedCount, 0u);
}

TEST(PromoteTest, IsolatedDenseSubtreePromotesLocally) {
  // Sixteen leaves, only the first four critical; with threshold 0.6 the
  // root (4/16) fails but the first quad (4/4) succeeds without needing
  // promotion; a 3/4 quad would promote its gap.
  PromoterConfig Config;
  Config.Arity = 4;
  GlobalPromoter Promoter(Config);
  std::vector<uint8_t> Flags(16, 0);
  Flags[0] = Flags[1] = Flags[2] = 1; // 3/4 in first quad.
  LocalSelection Sel = makeSelection(Flags);
  PromotionResult Result = Promoter.promote(Sel, 0.6);
  EXPECT_TRUE(Result.Promoted[3]);
  EXPECT_EQ(Result.PromotedCount, 1u);
}

TEST(PromoteTest, PromotionMergesFragmentsIntoContiguousRegion) {
  // Scattered criticals under a qualifying node become one continuous
  // range (the migration-efficiency motivation of Section 4.3).
  PromoterConfig Config;
  Config.Arity = 8;
  GlobalPromoter Promoter(Config);
  std::vector<uint8_t> Flags = {1, 0, 1, 0, 1, 0, 1, 0};
  LocalSelection Sel = makeSelection(Flags);
  PromotionResult Result = Promoter.promote(Sel, 0.5);
  for (int I = 0; I < 8; ++I)
    EXPECT_TRUE(Sel.Critical[I] || Result.Promoted[I]) << I;
}

TEST(PromoteTest, PromoteAllAppliesPerObjectThresholds) {
  PromoterConfig Config;
  Config.Arity = 2;
  Config.ThetaTR = 0.5;
  GlobalPromoter Promoter(Config);
  // Object A: hot (high priority) -> low threshold -> promotes its gaps.
  LocalSelection A = makeSelection({1, 0, 1, 0}, 100.0);
  // Object B: cool -> threshold 1.0 -> no promotion beyond full nodes.
  LocalSelection B = makeSelection({1, 0, 0, 0}, 1.0);
  auto Results = Promoter.promoteAll({A, B});
  ASSERT_EQ(Results.size(), 2u);
  EXPECT_GT(Results[0].PromotedCount, 0u);
  EXPECT_EQ(Results[1].PromotedCount, 0u);
  EXPECT_LT(Results[0].Threshold, Results[1].Threshold);
}

TEST(PromoteTest, WeightsReportedInResults) {
  GlobalPromoter Promoter;
  LocalSelection Sel = makeSelection({1, 1, 0, 0}, 7.0);
  PromotionResult Result = Promoter.promote(Sel, 0.5);
  EXPECT_DOUBLE_EQ(Result.Weight, 7.0);
}

} // namespace
