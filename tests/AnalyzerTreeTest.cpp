//===----------------------------------------------------------------------===//
// Unit tests for the m-ary promotion tree (paper Section 4.3.1, Figure 3).
//===----------------------------------------------------------------------===//

#include "analyzer/MaryTree.h"

#include <gtest/gtest.h>

using namespace atmem::analyzer;

namespace {

TEST(MaryTreeTest, SingleLeafTree) {
  MaryTree Tree({1}, 2);
  EXPECT_EQ(Tree.numLeaves(), 1u);
  EXPECT_EQ(Tree.numNodes(), 1u);
  EXPECT_DOUBLE_EQ(Tree.treeRatio(Tree.root()), 1.0);
}

TEST(MaryTreeTest, BinaryTreeOverFourLeaves) {
  MaryTree Tree({1, 0, 1, 1}, 2);
  EXPECT_EQ(Tree.numLeaves(), 4u);
  // 4 leaves + 2 internal + root = 7 nodes.
  EXPECT_EQ(Tree.numNodes(), 7u);
  const MaryTree::Node &Root = Tree.node(Tree.root());
  EXPECT_EQ(Root.Value, 3u);
  EXPECT_EQ(Root.LeafBegin, 0u);
  EXPECT_EQ(Root.LeafEnd, 4u);
  EXPECT_DOUBLE_EQ(Tree.treeRatio(Tree.root()), 0.75);
}

TEST(MaryTreeTest, LeavesAreFirstNodesInChunkOrder) {
  MaryTree Tree({1, 0, 1}, 2);
  for (uint32_t I = 0; I < 3; ++I) {
    const MaryTree::Node &Leaf = Tree.node(I);
    EXPECT_TRUE(Leaf.isLeaf());
    EXPECT_EQ(Leaf.LeafBegin, I);
    EXPECT_EQ(Leaf.LeafEnd, I + 1);
  }
  EXPECT_EQ(Tree.node(0).Value, 1u);
  EXPECT_EQ(Tree.node(1).Value, 0u);
}

TEST(MaryTreeTest, InternalValuesSumChildren) {
  MaryTree Tree({1, 1, 0, 0, 1, 0, 0, 0}, 2);
  // Verify every internal node's value equals the sum over its leaves.
  for (uint32_t Id = 0; Id < Tree.numNodes(); ++Id) {
    const MaryTree::Node &Node = Tree.node(Id);
    uint32_t Expected = 0;
    for (uint32_t Leaf = Node.LeafBegin; Leaf < Node.LeafEnd; ++Leaf)
      Expected += Tree.node(Leaf).Value;
    EXPECT_EQ(Node.Value, Expected) << "node " << Id;
  }
}

TEST(MaryTreeTest, ParentsAreConsistent) {
  MaryTree Tree({1, 0, 1, 0, 1, 0, 1}, 3);
  for (uint32_t Id = 0; Id + 1 < Tree.numNodes(); ++Id) {
    uint32_t Parent = Tree.node(Id).Parent;
    ASSERT_NE(Parent, MaryTree::InvalidNode) << "non-root without parent";
    const MaryTree::Node &P = Tree.node(Parent);
    EXPECT_GE(Id, P.FirstChild);
    EXPECT_LT(Id, P.FirstChild + P.NumChildren);
  }
  EXPECT_EQ(Tree.node(Tree.root()).Parent, MaryTree::InvalidNode);
}

TEST(MaryTreeTest, NonPowerLeafCountHandled) {
  // 5 leaves, arity 4: one full group of 4 plus one remainder node.
  MaryTree Tree({1, 1, 1, 1, 0}, 4);
  const MaryTree::Node &Root = Tree.node(Tree.root());
  EXPECT_EQ(Root.LeafEnd, 5u);
  EXPECT_EQ(Root.Value, 4u);
}

TEST(MaryTreeTest, PaperFigure3Example) {
  // Figure 3: eight chunks; with a binary tree over DO_i where the left
  // half has 3 of 4 critical (node N11 TR = 3/4) and the right half none.
  MaryTree Tree({1, 1, 1, 0, 0, 0, 0, 0}, 2);
  // Level-1 parents of leaves: nodes 8..11 (pairs), level-2: 12..13,
  // root 14. Find the node covering leaves [0,4).
  uint32_t N11 = MaryTree::InvalidNode;
  for (uint32_t Id = 0; Id < Tree.numNodes(); ++Id) {
    const MaryTree::Node &Node = Tree.node(Id);
    if (Node.LeafBegin == 0 && Node.LeafEnd == 4)
      N11 = Id;
  }
  ASSERT_NE(N11, MaryTree::InvalidNode);
  EXPECT_DOUBLE_EQ(Tree.treeRatio(N11), 0.75);
  EXPECT_DOUBLE_EQ(Tree.treeRatio(Tree.root()), 3.0 / 8.0);
}

TEST(MaryTreeTest, OcttreeShallowerThanBinary) {
  std::vector<uint8_t> Leaves(64, 0);
  MaryTree Binary(Leaves, 2);
  MaryTree Oct(Leaves, 8);
  // 64 leaves: binary has 127 nodes, octree 64 + 8 + 1 = 73.
  EXPECT_EQ(Binary.numNodes(), 127u);
  EXPECT_EQ(Oct.numNodes(), 73u);
}

TEST(MaryTreeTest, TreeRatioLeafIsCatValue) {
  MaryTree Tree({1, 0}, 2);
  EXPECT_DOUBLE_EQ(Tree.treeRatio(0), 1.0);
  EXPECT_DOUBLE_EQ(Tree.treeRatio(1), 0.0);
}

TEST(MaryTreeTest, EmptyTreeHasNoNodes) {
  MaryTree Tree({}, 4);
  EXPECT_EQ(Tree.numLeaves(), 0u);
  EXPECT_EQ(Tree.numNodes(), 0u);
}

TEST(MaryTreeTest, RootCoversAllLeavesForManyArities) {
  for (uint32_t Arity : {2u, 3u, 4u, 5u, 8u, 16u}) {
    for (uint32_t N : {1u, 2u, 7u, 64u, 100u, 1000u}) {
      std::vector<uint8_t> Leaves(N, 1);
      MaryTree Tree(Leaves, Arity);
      const MaryTree::Node &Root = Tree.node(Tree.root());
      ASSERT_EQ(Root.LeafBegin, 0u) << Arity << " " << N;
      ASSERT_EQ(Root.LeafEnd, N) << Arity << " " << N;
      ASSERT_EQ(Root.Value, N) << Arity << " " << N;
    }
  }
}

} // namespace
