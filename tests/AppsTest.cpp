//===----------------------------------------------------------------------===//
// Tests validating the instrumented kernels against the plain reference
// implementations, on handcrafted and generated graphs, across placements.
//===----------------------------------------------------------------------===//

#include "apps/Kernels.h"
#include "apps/Reference.h"
#include "graph/Generators.h"

#include <gtest/gtest.h>

using namespace atmem;
using namespace atmem::apps;
using namespace atmem::graph;

namespace {

core::RuntimeConfig testConfig() {
  core::RuntimeConfig Config;
  Config.Machine = sim::nvmDramTestbed(1.0 / 1024);
  return Config;
}

/// A small diamond graph with a tail:
///   0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, 3 -> 4.
CsrGraph diamondGraph() {
  return buildCsr(5, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}});
}

/// Power-law test graph with weights.
CsrGraph randomGraph(uint32_t Vertices = 2000, uint64_t Seed = 7) {
  PowerLawParams Params;
  Params.NumVertices = Vertices;
  Params.AverageDegree = 8;
  Params.Seed = Seed;
  return withRandomWeights(generatePowerLaw(Params), 64, Seed);
}

TEST(KernelFactoryTest, KnownNames) {
  EXPECT_EQ(kernelNames().size(), 5u);
  for (const std::string &Name : kernelNames()) {
    EXPECT_TRUE(isKnownKernel(Name));
    EXPECT_EQ(makeKernel(Name)->name(), Name);
  }
  EXPECT_TRUE(isKnownKernel("spmv"));
  EXPECT_FALSE(isKnownKernel("gcn"));
}

TEST(KernelFactoryTest, WeightRequirements) {
  EXPECT_FALSE(makeKernel("bfs")->needsWeights());
  EXPECT_TRUE(makeKernel("sssp")->needsWeights());
  EXPECT_TRUE(makeKernel("spmv")->needsWeights());
}

//===----------------------------------------------------------------------===//
// BFS
//===----------------------------------------------------------------------===//

TEST(BfsTest, DiamondLevels) {
  core::Runtime Rt(testConfig());
  CsrGraph G = diamondGraph(); // Max degree vertex: 0.
  BfsKernel Kernel;
  Kernel.setup(Rt, G);
  EXPECT_EQ(Kernel.source(), 0u);
  Kernel.runIteration();
  const int32_t *Levels = Kernel.levels().raw();
  EXPECT_EQ(Levels[0], 0);
  EXPECT_EQ(Levels[1], 1);
  EXPECT_EQ(Levels[2], 1);
  EXPECT_EQ(Levels[3], 2);
  EXPECT_EQ(Levels[4], 3);
}

TEST(BfsTest, MatchesReferenceOnRandomGraph) {
  core::Runtime Rt(testConfig());
  CsrGraph G = randomGraph();
  BfsKernel Kernel;
  Kernel.setup(Rt, G);
  Kernel.runIteration();
  std::vector<int32_t> Expected = referenceBfs(G, Kernel.source());
  for (uint32_t V = 0; V < G.numVertices(); ++V)
    ASSERT_EQ(Kernel.levels().raw()[V], Expected[V]) << "vertex " << V;
}

TEST(BfsTest, IterationsAreIdempotent) {
  core::Runtime Rt(testConfig());
  CsrGraph G = randomGraph();
  BfsKernel Kernel;
  Kernel.setup(Rt, G);
  Kernel.runIteration();
  uint64_t First = Kernel.checksum();
  Kernel.runIteration();
  EXPECT_EQ(Kernel.checksum(), First);
}

//===----------------------------------------------------------------------===//
// SSSP
//===----------------------------------------------------------------------===//

TEST(SsspTest, DiamondDistancesUnitWeights) {
  core::Runtime Rt(testConfig());
  CsrGraph G = diamondGraph();
  SsspKernel Kernel;
  Kernel.setup(Rt, G);
  Kernel.runIteration();
  const uint32_t *Dist = Kernel.distances().raw();
  EXPECT_EQ(Dist[0], 0u);
  EXPECT_EQ(Dist[3], 2u);
  EXPECT_EQ(Dist[4], 3u);
}

TEST(SsspTest, WeightedShortcutPreferred) {
  // 0 -> 1 (w 10), 0 -> 2 (w 1), 2 -> 1 (w 1): distance to 1 must be 2.
  CsrGraph G(std::vector<uint64_t>{0, 2, 2, 3},
             std::vector<VertexId>{1, 2, 1},
             std::vector<uint32_t>{10, 1, 1});
  core::Runtime Rt(testConfig());
  SsspKernel Kernel;
  Kernel.setup(Rt, G);
  Kernel.runIteration();
  EXPECT_EQ(Kernel.distances().raw()[1], 2u);
}

TEST(SsspTest, MatchesReferenceOnRandomGraph) {
  core::Runtime Rt(testConfig());
  CsrGraph G = randomGraph();
  SsspKernel Kernel;
  Kernel.setup(Rt, G);
  Kernel.runIteration();
  std::vector<uint32_t> Expected = referenceSssp(G, Kernel.source());
  for (uint32_t V = 0; V < G.numVertices(); ++V)
    ASSERT_EQ(Kernel.distances().raw()[V], Expected[V]) << "vertex " << V;
}

TEST(SsspTest, UnweightedGraphGetsUnitWeights) {
  core::Runtime Rt(testConfig());
  CsrGraph G = diamondGraph(); // No weights attached.
  SsspKernel Kernel;
  Kernel.setup(Rt, G);
  Kernel.runIteration();
  std::vector<uint32_t> Expected = referenceSssp(G, Kernel.source());
  for (uint32_t V = 0; V < G.numVertices(); ++V)
    ASSERT_EQ(Kernel.distances().raw()[V], Expected[V]);
}

//===----------------------------------------------------------------------===//
// PageRank
//===----------------------------------------------------------------------===//

TEST(PageRankTest, RanksSumNearOne) {
  core::Runtime Rt(testConfig());
  CsrGraph G = randomGraph();
  PageRankKernel Kernel;
  Kernel.setup(Rt, G);
  for (int I = 0; I < 3; ++I)
    Kernel.runIteration();
  double Sum = 0.0;
  for (uint32_t V = 0; V < G.numVertices(); ++V)
    Sum += Kernel.ranks().raw()[V];
  // Dangling vertices leak mass, so the sum is at most one.
  EXPECT_LE(Sum, 1.0 + 1e-3);
  EXPECT_GT(Sum, 0.2);
}

TEST(PageRankTest, MatchesReferenceAfterIterations) {
  core::Runtime Rt(testConfig());
  CsrGraph G = randomGraph(500);
  PageRankKernel Kernel;
  Kernel.setup(Rt, G);
  constexpr uint32_t Iters = 4;
  for (uint32_t I = 0; I < Iters; ++I)
    Kernel.runIteration();
  std::vector<float> Expected = referencePageRank(G, Iters);
  for (uint32_t V = 0; V < G.numVertices(); ++V)
    ASSERT_NEAR(Kernel.ranks().raw()[V], Expected[V], 1e-6) << V;
}

TEST(PageRankTest, HubRanksHigherThanLeaf) {
  // Star: everyone points to vertex 0.
  std::vector<Edge> Edges;
  for (uint32_t V = 1; V < 50; ++V)
    Edges.push_back({V, 0});
  CsrGraph G = buildCsr(50, Edges);
  core::Runtime Rt(testConfig());
  PageRankKernel Kernel;
  Kernel.setup(Rt, G);
  Kernel.runIteration();
  EXPECT_GT(Kernel.ranks().raw()[0], Kernel.ranks().raw()[1] * 10);
}

//===----------------------------------------------------------------------===//
// Betweenness centrality
//===----------------------------------------------------------------------===//

TEST(BcTest, DiamondDeltas) {
  core::Runtime Rt(testConfig());
  CsrGraph G = diamondGraph();
  BcKernel Kernel;
  Kernel.setup(Rt, G);
  Kernel.runIteration();
  std::vector<float> Expected = referenceBc(G, Kernel.source());
  for (uint32_t V = 0; V < G.numVertices(); ++V)
    ASSERT_NEAR(Kernel.deltas().raw()[V], Expected[V], 1e-5) << V;
  // Vertex 3 lies on every path to 4 from both branches.
  EXPECT_GT(Kernel.deltas().raw()[3], 0.9f);
}

TEST(BcTest, MatchesReferenceOnRandomGraph) {
  core::Runtime Rt(testConfig());
  CsrGraph G = randomGraph(800);
  BcKernel Kernel;
  Kernel.setup(Rt, G);
  Kernel.runIteration();
  std::vector<float> Expected = referenceBc(G, Kernel.source());
  for (uint32_t V = 0; V < G.numVertices(); ++V)
    ASSERT_NEAR(Kernel.deltas().raw()[V], Expected[V],
                1e-3 * (1.0 + std::abs(Expected[V])))
        << V;
}

//===----------------------------------------------------------------------===//
// Connected components
//===----------------------------------------------------------------------===//

TEST(CcTest, TwoComponents) {
  CsrGraph G = buildCsr(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  core::Runtime Rt(testConfig());
  CcKernel Kernel;
  Kernel.setup(Rt, G);
  while (!Kernel.converged())
    Kernel.runIteration();
  const uint32_t *Comp = Kernel.components().raw();
  EXPECT_EQ(Comp[0], Comp[1]);
  EXPECT_EQ(Comp[1], Comp[2]);
  EXPECT_EQ(Comp[3], Comp[4]);
  EXPECT_NE(Comp[0], Comp[3]);
}

TEST(CcTest, MatchesReferenceOnRandomGraph) {
  core::Runtime Rt(testConfig());
  CsrGraph G = randomGraph(1500);
  CcKernel Kernel;
  Kernel.setup(Rt, G);
  for (int I = 0; I < 50 && !Kernel.converged(); ++I)
    Kernel.runIteration();
  ASSERT_TRUE(Kernel.converged());
  std::vector<uint32_t> Expected = referenceCc(G);
  for (uint32_t V = 0; V < G.numVertices(); ++V)
    ASSERT_EQ(Kernel.components().raw()[V], Expected[V]) << V;
}

TEST(CcTest, DirectedEdgesTreatedAsUndirected) {
  // A chain with edges pointing "backwards" still forms one component.
  CsrGraph G = buildCsr(3, {{2, 1}, {1, 0}});
  core::Runtime Rt(testConfig());
  CcKernel Kernel;
  Kernel.setup(Rt, G);
  while (!Kernel.converged())
    Kernel.runIteration();
  EXPECT_EQ(Kernel.components().raw()[2], 0u);
}

//===----------------------------------------------------------------------===//
// SpMV
//===----------------------------------------------------------------------===//

TEST(SpmvTest, MatchesReference) {
  core::Runtime Rt(testConfig());
  CsrGraph G = randomGraph(1000);
  SpmvKernel Kernel;
  Kernel.setup(Rt, G);
  Kernel.runIteration();
  std::vector<float> Expected = referenceSpmv(G);
  for (uint32_t V = 0; V < G.numVertices(); ++V)
    ASSERT_NEAR(Kernel.result().raw()[V], Expected[V],
                1e-3 * (1.0 + std::abs(Expected[V])))
        << V;
}

TEST(SpmvTest, UnweightedCountsNeighborValues) {
  CsrGraph G = diamondGraph();
  core::Runtime Rt(testConfig());
  SpmvKernel Kernel;
  Kernel.setup(Rt, G);
  Kernel.runIteration();
  // y[0] = x[1] + x[2] with x[v] = 1 + v % 7 -> 2 + 3 = 5.
  EXPECT_NEAR(Kernel.result().raw()[0], 5.0f, 1e-6);
}

//===----------------------------------------------------------------------===//
// Placement independence: migration must never change results.
//===----------------------------------------------------------------------===//

class PlacementIndependenceTest
    : public ::testing::TestWithParam<const char *> {};

TEST_P(PlacementIndependenceTest, ChecksumStableAcrossMigration) {
  CsrGraph G = randomGraph(3000, 11);
  // Run once with everything on the slow tier.
  core::Runtime RtSlow(testConfig());
  auto KernelSlow = makeKernel(GetParam());
  KernelSlow->setup(RtSlow, G);
  KernelSlow->runIteration();
  uint64_t Baseline = KernelSlow->checksum();

  // Run with ATMem profiling + migration between iterations.
  core::Runtime RtAtmem(testConfig());
  auto KernelAtmem = makeKernel(GetParam());
  KernelAtmem->setup(RtAtmem, G);
  RtAtmem.profilingStart();
  KernelAtmem->runIteration();
  RtAtmem.profilingStop();
  RtAtmem.optimize();
  KernelAtmem->runIteration();
  uint64_t Migrated = KernelAtmem->checksum();
  if (std::string(GetParam()) == "pr") {
    // PageRank accumulates across iterations; compare against two
    // baseline iterations instead.
    KernelSlow->runIteration();
    Baseline = KernelSlow->checksum();
  } else if (std::string(GetParam()) == "cc") {
    KernelSlow->runIteration();
    Baseline = KernelSlow->checksum();
  }
  EXPECT_EQ(Migrated, Baseline);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, PlacementIndependenceTest,
                         ::testing::Values("bfs", "sssp", "pr", "bc", "cc",
                                           "spmv"),
                         [](const auto &Info) {
                           return std::string(Info.param);
                         });

} // namespace
