//===----------------------------------------------------------------------===//
// Unit tests for the ATMem runtime and the paper's C-style API.
//===----------------------------------------------------------------------===//

#include "core/AtmemApi.h"
#include "core/Runtime.h"

#include <gtest/gtest.h>

using namespace atmem;
using namespace atmem::core;

namespace {

RuntimeConfig testConfig() {
  RuntimeConfig Config;
  Config.Machine = sim::nvmDramTestbed(1.0 / 1024);
  return Config;
}

TEST(RuntimeTest, AllocateRegistersObject) {
  Runtime Rt(testConfig());
  TrackedArray<uint32_t> Arr = Rt.allocate<uint32_t>("v", 1024);
  EXPECT_EQ(Arr.size(), 1024u);
  EXPECT_EQ(Rt.registry().liveObjects().size(), 1u);
  EXPECT_EQ(Rt.registry().object(Arr.objectId()).sizeBytes(), 4096u);
}

TEST(RuntimeTest, TrackedAccessCountsStats) {
  Runtime Rt(testConfig());
  TrackedArray<uint32_t> Arr = Rt.allocate<uint32_t>("v", 1024);
  Rt.beginIteration();
  for (int I = 0; I < 100; ++I)
    Arr[static_cast<size_t>(I)] = I;
  EXPECT_EQ(Rt.iterationStats().Accesses, 100u);
}

TEST(RuntimeTest, TrackingDisableSuppressesCounting) {
  Runtime Rt(testConfig());
  TrackedArray<uint32_t> Arr = Rt.allocate<uint32_t>("v", 64);
  Rt.beginIteration();
  Rt.setTrackingEnabled(false);
  Arr[0] = 1;
  Rt.setTrackingEnabled(true);
  EXPECT_EQ(Rt.iterationStats().Accesses, 0u);
}

TEST(RuntimeTest, RepeatedAccessHitsLlc) {
  Runtime Rt(testConfig());
  TrackedArray<uint32_t> Arr = Rt.allocate<uint32_t>("v", 16);
  Rt.beginIteration();
  Arr[0] = 1;
  uint32_t X = Arr[0];
  (void)X;
  const sim::AccessStats &Stats = Rt.iterationStats();
  EXPECT_EQ(Stats.Accesses, 2u);
  EXPECT_EQ(Stats.LlcHits, 1u);
  EXPECT_EQ(Stats.totalMisses(), 1u);
}

TEST(RuntimeTest, MissesAttributedToSlowTierInitially) {
  Runtime Rt(testConfig());
  TrackedArray<uint32_t> Arr = Rt.allocate<uint32_t>("v", 1 << 16);
  Rt.beginIteration();
  for (size_t I = 0; I < Arr.size(); I += 16)
    Arr[I] = 1;
  const sim::AccessStats &Stats = Rt.iterationStats();
  EXPECT_GT(Stats.TierMisses[sim::tierIndex(sim::TierId::Slow)], 0u);
  EXPECT_EQ(Stats.TierMisses[sim::tierIndex(sim::TierId::Fast)], 0u);
}

TEST(RuntimeTest, EndIterationReturnsPositiveTime) {
  Runtime Rt(testConfig());
  TrackedArray<uint32_t> Arr = Rt.allocate<uint32_t>("v", 1 << 16);
  Rt.beginIteration();
  for (size_t I = 0; I < Arr.size(); ++I)
    Arr[I] = 1;
  EXPECT_GT(Rt.endIteration(), 0.0);
}

TEST(RuntimeTest, FastPlacementMakesFastMisses) {
  RuntimeConfig Config = testConfig();
  Config.Placement = mem::InitialPlacement::Fast;
  Runtime Rt(Config);
  TrackedArray<uint32_t> Arr = Rt.allocate<uint32_t>("v", 1 << 16);
  Rt.beginIteration();
  for (size_t I = 0; I < Arr.size(); I += 16)
    Arr[I] = 1;
  EXPECT_GT(Rt.iterationStats().TierMisses[0], 0u);
  EXPECT_EQ(Rt.iterationStats().TierMisses[1], 0u);
  EXPECT_DOUBLE_EQ(Rt.fastDataRatio(), 1.0);
}

/// End-to-end: a synthetic object with one hot region; ATMem must find
/// and migrate (at least) the hot region and speed up the next iteration.
TEST(RuntimeTest, OptimizeMigratesHotRegion) {
  Runtime Rt(testConfig());
  TrackedArray<uint64_t> Hot = Rt.allocate<uint64_t>("hot", 1 << 17);
  TrackedArray<uint64_t> Cold = Rt.allocate<uint64_t>("cold", 1 << 17);

  auto RunIteration = [&]() {
    // Hot array hammered randomly; cold array touched once.
    uint64_t State = 12345;
    for (int I = 0; I < 200000; ++I) {
      State = State * 6364136223846793005ull + 1442695040888963407ull;
      Hot[(State >> 33) & ((1 << 17) - 1)] += 1;
    }
    for (size_t I = 0; I < Cold.size(); I += 64)
      Cold[I] += 1;
  };

  Rt.profilingStart();
  Rt.beginIteration();
  RunIteration();
  double Before = Rt.endIteration();
  Rt.profilingStop();

  mem::MigrationResult Result = Rt.optimize();
  EXPECT_GT(Result.BytesMoved, 0u);

  // The hot object must now be mostly on the fast tier.
  const mem::DataObject &HotObj = Rt.registry().object(Hot.objectId());
  EXPECT_GT(HotObj.bytesOn(sim::TierId::Fast),
            HotObj.mappedBytes() / 2);

  Rt.beginIteration();
  RunIteration();
  double After = Rt.endIteration();
  EXPECT_LT(After, Before);
}

TEST(RuntimeTest, OptimizeRespectsBudgetFraction) {
  RuntimeConfig Config = testConfig();
  Config.FastBudgetFraction = 0.0; // No budget: nothing may migrate.
  Runtime Rt(Config);
  TrackedArray<uint64_t> Arr = Rt.allocate<uint64_t>("a", 1 << 16);
  Rt.profilingStart();
  Rt.beginIteration();
  for (size_t I = 0; I < Arr.size(); ++I)
    Arr[I] = 1;
  Rt.endIteration();
  mem::MigrationResult Result = Rt.optimize();
  EXPECT_EQ(Result.BytesMoved, 0u);
  EXPECT_DOUBLE_EQ(Rt.fastDataRatio(), 0.0);
}

TEST(RuntimeTest, WholeObjectChunksSingleChunk) {
  RuntimeConfig Config = testConfig();
  Config.WholeObjectChunks = true;
  Runtime Rt(Config);
  TrackedArray<uint64_t> Arr = Rt.allocate<uint64_t>("a", 1 << 18);
  EXPECT_EQ(Rt.registry().object(Arr.objectId()).numChunks(), 1u);
}

TEST(RuntimeTest, ReplayTlbObservesAccesses) {
  Runtime Rt(testConfig());
  TrackedArray<uint64_t> Arr = Rt.allocate<uint64_t>("a", 1 << 16);
  sim::Tlb Tlb = Rt.machine().makeTlb();
  Rt.setReplayTlb(&Tlb);
  Rt.beginIteration();
  for (size_t I = 0; I < Arr.size(); I += 8)
    Arr[I] = 1;
  Rt.setReplayTlb(nullptr);
  EXPECT_GT(Tlb.misses(), 0u);
}

TEST(RuntimeTest, ReleaseRemovesObject) {
  Runtime Rt(testConfig());
  TrackedArray<uint32_t> Arr = Rt.allocate<uint32_t>("v", 64);
  Rt.release(Arr.objectId());
  EXPECT_TRUE(Rt.registry().liveObjects().empty());
}

//===----------------------------------------------------------------------===//
// C-style API (paper Listing 1)
//===----------------------------------------------------------------------===//

class ApiTest : public ::testing::Test {
protected:
  ApiTest() : Rt(testConfig()) { atmem_set_runtime(&Rt); }
  ~ApiTest() override { atmem_set_runtime(nullptr); }
  Runtime Rt;
};

TEST_F(ApiTest, MallocRegistersAndFreeUnregisters) {
  void *Ptr = atmem_malloc(1 << 20);
  ASSERT_NE(Ptr, nullptr);
  EXPECT_EQ(Rt.registry().liveObjects().size(), 1u);
  atmem_free(Ptr);
  EXPECT_TRUE(Rt.registry().liveObjects().empty());
}

TEST_F(ApiTest, MallocZeroReturnsNull) {
  EXPECT_EQ(atmem_malloc(0), nullptr);
}

TEST_F(ApiTest, FreeUnknownPointerIgnored) {
  int Local = 0;
  atmem_free(&Local); // Must not crash or unregister anything.
  EXPECT_TRUE(Rt.registry().liveObjects().empty());
}

TEST_F(ApiTest, LookupObjectResolvesPointer) {
  void *Ptr = atmem_malloc(4096);
  mem::ObjectId Id = 0;
  ASSERT_TRUE(atmem_lookup_object(Ptr, Id));
  EXPECT_EQ(Rt.registry().object(Id).data(), Ptr);
  atmem_free(Ptr);
}

TEST_F(ApiTest, ProfilingControlRoundTrip) {
  atmem_profiling_start();
  EXPECT_TRUE(Rt.profiler().isActive());
  atmem_profiling_stop();
  EXPECT_FALSE(Rt.profiler().isActive());
}

TEST_F(ApiTest, TrackedViewFeedsProfiler) {
  void *Ptr = atmem_malloc(1 << 20);
  auto View = atmem_tracked_view<uint64_t>(Ptr, (1 << 20) / 8);
  ASSERT_EQ(View.size(), (1u << 20) / 8);
  atmem_profiling_start();
  Rt.beginIteration();
  for (size_t I = 0; I < View.size(); I += 8)
    View[I] = I;
  atmem_profiling_stop();
  EXPECT_GT(Rt.profiler().sampleCount(), 0u);
  atmem_free(Ptr);
}

TEST_F(ApiTest, OptimizeViaApiRuns) {
  void *Ptr = atmem_malloc(1 << 20);
  auto View = atmem_tracked_view<uint64_t>(Ptr, (1 << 20) / 8);
  atmem_profiling_start();
  Rt.beginIteration();
  for (size_t I = 0; I < View.size(); ++I)
    View[I] = I;
  atmem_profiling_stop();
  atmem_optimize();
  EXPECT_GT(Rt.fastDataRatio(), 0.0);
  atmem_free(Ptr);
}

TEST(ApiNoRuntimeTest, CallsAreSafeWithoutRuntime) {
  atmem_set_runtime(nullptr);
  EXPECT_EQ(atmem_malloc(100), nullptr);
  atmem_free(nullptr);
  atmem_profiling_start();
  atmem_profiling_stop();
  atmem_optimize();
  EXPECT_EQ(atmem_current_runtime(), nullptr);
}

} // namespace
