//===----------------------------------------------------------------------===//
// Cross-policy correctness matrix: every kernel must produce identical
// results under every placement policy on both testbeds — placement and
// migration may never change computation.
//===----------------------------------------------------------------------===//

#include "baseline/Experiment.h"
#include "graph/Generators.h"

#include <gtest/gtest.h>

#include <map>

using namespace atmem;
using namespace atmem::baseline;

namespace {

struct MatrixCase {
  const char *Kernel;
  bool Mcdram;
};

class CrossPolicyTest : public ::testing::TestWithParam<MatrixCase> {
protected:
  static void SetUpTestSuite() {
    graph::PowerLawParams Params;
    Params.NumVertices = 6000;
    Params.AverageDegree = 10;
    Params.Gamma = 2.1;
    Params.Seed = 99;
    Graph = new graph::CsrGraph(
        graph::withRandomWeights(graph::generatePowerLaw(Params), 32, 3));
  }
  static void TearDownTestSuite() {
    delete Graph;
    Graph = nullptr;
  }

  static graph::CsrGraph *Graph;
};

graph::CsrGraph *CrossPolicyTest::Graph = nullptr;

TEST_P(CrossPolicyTest, ChecksumIdenticalUnderEveryPolicy) {
  const MatrixCase &Case = GetParam();
  const Policy Policies[] = {
      Policy::AllSlow,       Policy::AllFast,
      Policy::PreferredFast, Policy::Interleaved,
      Policy::Atmem,         Policy::AtmemMbind,
      Policy::AtmemSampledOnly, Policy::CoarseGrained,
  };
  std::map<Policy, uint64_t> Checksums;
  for (Policy P : Policies) {
    RunConfig Config;
    Config.KernelName = Case.Kernel;
    Config.Graph = Graph;
    Config.Machine = Case.Mcdram ? sim::mcdramDramTestbed(1.0 / 2048)
                                 : sim::nvmDramTestbed(1.0 / 2048);
    Config.PolicyKind = P;
    Checksums[P] = runExperiment(Config).Checksum;
  }
  // Iterative kernels accumulate across iterations, so policies that run
  // one extra profiled iteration (the ATMem family) are compared among
  // themselves, and the single-measured-iteration baselines among
  // themselves.
  EXPECT_EQ(Checksums[Policy::AllFast], Checksums[Policy::AllSlow]);
  EXPECT_EQ(Checksums[Policy::PreferredFast], Checksums[Policy::AllSlow]);
  EXPECT_EQ(Checksums[Policy::Interleaved], Checksums[Policy::AllSlow]);
  EXPECT_EQ(Checksums[Policy::AtmemMbind], Checksums[Policy::Atmem]);
  EXPECT_EQ(Checksums[Policy::AtmemSampledOnly], Checksums[Policy::Atmem]);
  EXPECT_EQ(Checksums[Policy::CoarseGrained], Checksums[Policy::Atmem]);
  // Idempotent kernels agree across both groups too.
  std::string Kernel = Case.Kernel;
  if (Kernel != "pr" && Kernel != "cc") {
    EXPECT_EQ(Checksums[Policy::Atmem], Checksums[Policy::AllSlow]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsBothTestbeds, CrossPolicyTest,
    ::testing::Values(MatrixCase{"bfs", false}, MatrixCase{"bfs", true},
                      MatrixCase{"sssp", false}, MatrixCase{"sssp", true},
                      MatrixCase{"pr", false}, MatrixCase{"pr", true},
                      MatrixCase{"bc", false}, MatrixCase{"bc", true},
                      MatrixCase{"cc", false}, MatrixCase{"cc", true},
                      MatrixCase{"spmv", false}, MatrixCase{"spmv", true},
                      MatrixCase{"tc", false}, MatrixCase{"kcore", false}),
    [](const auto &Info) {
      return std::string(Info.param.Kernel) +
             (Info.param.Mcdram ? "_mcdram" : "_nvm");
    });

} // namespace
