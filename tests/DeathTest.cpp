//===----------------------------------------------------------------------===//
// Death tests for the library's programmatic-error contracts: invariant
// violations must abort with a diagnostic rather than corrupt state.
//===----------------------------------------------------------------------===//

#include "apps/Kernel.h"
#include "graph/CsrGraph.h"
#include "graph/Datasets.h"
#include "mem/DataObject.h"
#include "support/Error.h"
#include "support/TablePrinter.h"

#include <gtest/gtest.h>

using namespace atmem;

namespace {

TEST(DeathTest, ReportFatalErrorAborts) {
  EXPECT_DEATH(reportFatalError("boom"), "atmem fatal error: boom");
}

TEST(DeathTest, UnreachableAborts) {
  EXPECT_DEATH(ATMEM_UNREACHABLE("impossible"), "impossible");
}

TEST(DeathTest, TableRowWidthMismatchAborts) {
  TablePrinter Table({"a", "b"});
  EXPECT_DEATH(Table.addRow({"only-one"}), "row width");
}

TEST(DeathTest, UnknownDatasetAborts) {
  EXPECT_DEATH((void)graph::makeDataset("orkut"), "unknown dataset");
}

TEST(DeathTest, UnknownKernelAborts) {
  EXPECT_DEATH((void)apps::makeKernel("gnn"), "unknown kernel");
}

TEST(DeathTest, NonPowerOfTwoChunkAborts) {
  EXPECT_DEATH(mem::DataObject(0, "x", 0x1000000, 8192, 5000),
               "power of two");
}

TEST(DeathTest, SubPageChunkAborts) {
  EXPECT_DEATH(mem::DataObject(0, "x", 0x1000000, 8192, 1024),
               "power of two");
}

TEST(DeathTest, MismatchedCsrArraysAbort) {
  EXPECT_DEATH(graph::CsrGraph(std::vector<uint64_t>{0, 2},
                               std::vector<graph::VertexId>{1}),
               "row offsets");
}

TEST(DeathTest, MismatchedWeightsAbort) {
  EXPECT_DEATH(graph::CsrGraph(std::vector<uint64_t>{0, 1},
                               std::vector<graph::VertexId>{0},
                               std::vector<uint32_t>{1, 2}),
               "weight");
}

} // namespace
