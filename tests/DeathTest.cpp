//===----------------------------------------------------------------------===//
// Death tests for the library's programmatic-error contracts: invariant
// violations must abort with a diagnostic rather than corrupt state.
//
// Only genuine invariant violations belong here. Conditions a caller can
// legitimately hit with user input (unknown dataset/kernel names, tier
// capacity, migration refusal) have query/result APIs — isKnownDataset(),
// isKnownKernel(), DataObjectRegistry::tryCreate(), MigrationStatus — and
// are tested below and in the migrator/fault suites as error results.
//===----------------------------------------------------------------------===//

#include "apps/Kernel.h"
#include "graph/CsrGraph.h"
#include "graph/Datasets.h"
#include "mem/DataObject.h"
#include "support/Error.h"
#include "support/TablePrinter.h"

#include <gtest/gtest.h>

using namespace atmem;

namespace {

TEST(DeathTest, ReportFatalErrorAborts) {
  EXPECT_DEATH(reportFatalError("boom"), "atmem fatal error: boom");
}

TEST(DeathTest, UnreachableAborts) {
  EXPECT_DEATH(ATMEM_UNREACHABLE("impossible"), "impossible");
}

TEST(DeathTest, TableRowWidthMismatchAborts) {
  TablePrinter Table({"a", "b"});
  EXPECT_DEATH(Table.addRow({"only-one"}), "row width");
}

// Unknown dataset/kernel names arrive from user input (CLI flags), so the
// contract is a queryable predicate, not an abort: callers check
// isKnown*() and report an error result. makeDataset()/makeKernel() then
// only ever see validated names.
TEST(ErrorResultTest, UnknownDatasetIsReportedNotFatal) {
  EXPECT_FALSE(graph::isKnownDataset("orkut"));
  EXPECT_FALSE(graph::isKnownDataset(""));
  EXPECT_TRUE(graph::isKnownDataset("pokec"));
}

TEST(ErrorResultTest, UnknownKernelIsReportedNotFatal) {
  EXPECT_FALSE(apps::isKnownKernel("gnn"));
  EXPECT_FALSE(apps::isKnownKernel(""));
  EXPECT_TRUE(apps::isKnownKernel("pr"));
}

TEST(DeathTest, NonPowerOfTwoChunkAborts) {
  EXPECT_DEATH(mem::DataObject(0, "x", 0x1000000, 8192, 5000),
               "power of two");
}

TEST(DeathTest, SubPageChunkAborts) {
  EXPECT_DEATH(mem::DataObject(0, "x", 0x1000000, 8192, 1024),
               "power of two");
}

TEST(DeathTest, MismatchedCsrArraysAbort) {
  EXPECT_DEATH(graph::CsrGraph(std::vector<uint64_t>{0, 2},
                               std::vector<graph::VertexId>{1}),
               "row offsets");
}

TEST(DeathTest, MismatchedWeightsAbort) {
  EXPECT_DEATH(graph::CsrGraph(std::vector<uint64_t>{0, 1},
                               std::vector<graph::VertexId>{0},
                               std::vector<uint32_t>{1, 2}),
               "weight");
}

} // namespace
