//===----------------------------------------------------------------------===//
// Tests for the placement-decision flight recorder (obs/DecisionLog.h) and
// the atmem_explain rendering layer: binary round-trips, validator
// corruption rejection, the Eq. 5 edge cases the log must capture, the
// end-to-end causal chain behind every promoted chunk of a planted-hot-set
// run, fault-site attribution with re-nomination, and the guarantee that
// recording does not change placement.
//===----------------------------------------------------------------------===//

#include "analyzer/Analyzer.h"
#include "core/Runtime.h"
#include "fault/FaultInjection.h"
#include "obs/DecisionExplain.h"
#include "obs/DecisionLog.h"
#include "obs/Json.h"
#include "sim/Machine.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

using namespace atmem;
using namespace atmem::obs;

namespace {

/// Every test starts and ends with the process-wide log closed; a leaked
/// open log would silently record into later tests of this binary.
class DecisionLogTest : public ::testing::Test {
protected:
  void SetUp() override {
    DecisionLog::instance().close();
    fault::FaultRegistry::instance().disarmAll();
  }
  void TearDown() override {
    DecisionLog::instance().close();
    fault::FaultRegistry::instance().disarmAll();
  }

  static std::string tempPath(const char *Name) {
    return ::testing::TempDir() + Name;
  }
};

DecisionArtifact readBack(const std::string &Path) {
  DecisionArtifact Artifact;
  std::string Error;
  EXPECT_TRUE(readDecisionLog(Path, Artifact, &Error)) << Error;
  return Artifact;
}

//===----------------------------------------------------------------------===//
// Writer / reader round-trip and validator basics
//===----------------------------------------------------------------------===//

TEST_F(DecisionLogTest, RoundTripPreservesEveryField) {
  std::string Path = tempPath("decision_roundtrip.atdl");
  DecisionLog &Log = DecisionLog::instance();
  ASSERT_FALSE(DecisionLog::enabled());
  std::string Error;
  ASSERT_TRUE(Log.open(Path, &Error)) << Error;
  EXPECT_TRUE(DecisionLog::enabled());
  EXPECT_EQ(Log.path(), Path);

  EXPECT_EQ(Log.beginEpoch(), 1u);
  uint32_t Name = Log.nameId("rank");
  EXPECT_NE(Name, 0u);
  EXPECT_EQ(Log.nameId("rank"), Name); // Interned: same id, no new record.

  ObjectEpochRecord Obj;
  Obj.Object = 7;
  Obj.NameId = Name;
  Obj.NumChunks = 32;
  Obj.ChunkBytes = 4096;
  Obj.SamplePeriod = 64;
  Obj.Weight = 0.25;
  Obj.WeightRank = 2;
  Obj.RankedObjects = 3;
  Obj.TrThreshold = 0.375;
  Obj.Theta = 0.5;
  Obj.ThetaPercentile = 0.5;
  Obj.ThetaDerivative = 0.125;
  Obj.ThetaNoiseFloor = 0.0625;
  Obj.Winner = ThetaWinner::Percentile;
  Obj.SampledCritical = 5;
  Obj.PromotedCount = 2;
  Log.recordObject(Obj);

  ChunkDecisionRecord Chunk;
  Chunk.Object = 7;
  Chunk.Chunk = 17;
  Chunk.Samples = 9;
  Chunk.EstimatedMisses = 576.0;
  Chunk.Priority = 0.140625;
  Chunk.Flags = DecisionChunkSampledCritical | DecisionChunkPromoted;
  Chunk.NodeTreeRatio = 0.75;
  Log.recordChunk(Chunk);

  MigrationEventRecord Event;
  Event.Object = 7;
  Event.FirstChunk = 16;
  Event.NumChunks = 4;
  Event.TargetFast = 1;
  Event.Phase = DecisionPhase::RolledBack;
  Event.FaultSiteNameId = Log.nameId("migrator.remap");
  Event.Priority = 0.140625;
  Log.recordMigration(Event);

  ASSERT_TRUE(Log.close(&Error)) << Error;
  EXPECT_FALSE(DecisionLog::enabled());

  DecisionArtifact Artifact = readBack(Path);
  DecisionLogStats Stats;
  ASSERT_TRUE(validateDecisionLog(Artifact, &Error, &Stats)) << Error;
  EXPECT_TRUE(Artifact.HasTrailer);
  EXPECT_EQ(Artifact.TrailerCount, Artifact.Records.size());
  EXPECT_EQ(Stats.Epochs, 1u);
  EXPECT_EQ(Stats.Objects, 1u);
  EXPECT_EQ(Stats.Chunks, 1u);
  EXPECT_EQ(Stats.PromotedChunks, 1u);
  EXPECT_EQ(Stats.RolledBack, 1u);
  EXPECT_EQ(Artifact.name(Name), "rank");

  const ObjectEpochRecord *GotObj = nullptr;
  const ChunkDecisionRecord *GotChunk = nullptr;
  const MigrationEventRecord *GotEvent = nullptr;
  for (const DecisionRecord &Rec : Artifact.Records) {
    if (Rec.Kind == DecisionKind::ObjectEpoch)
      GotObj = &Rec.Object;
    if (Rec.Kind == DecisionKind::ChunkDecision)
      GotChunk = &Rec.Chunk;
    if (Rec.Kind == DecisionKind::MigrationEvent)
      GotEvent = &Rec.Migration;
  }
  ASSERT_TRUE(GotObj && GotChunk && GotEvent);
  EXPECT_EQ(GotObj->Epoch, 1u); // Stamped by the writer.
  EXPECT_EQ(GotObj->Object, 7u);
  EXPECT_EQ(GotObj->NumChunks, 32u);
  EXPECT_DOUBLE_EQ(GotObj->Weight, 0.25);
  EXPECT_EQ(GotObj->WeightRank, 2u);
  EXPECT_DOUBLE_EQ(GotObj->TrThreshold, 0.375);
  EXPECT_DOUBLE_EQ(GotObj->ThetaDerivative, 0.125);
  EXPECT_EQ(GotObj->Winner, ThetaWinner::Percentile);
  EXPECT_EQ(GotChunk->Chunk, 17u);
  EXPECT_EQ(GotChunk->Samples, 9u);
  EXPECT_DOUBLE_EQ(GotChunk->NodeTreeRatio, 0.75);
  EXPECT_EQ(GotChunk->Flags,
            DecisionChunkSampledCritical | DecisionChunkPromoted);
  EXPECT_EQ(GotEvent->Phase, DecisionPhase::RolledBack);
  EXPECT_EQ(Artifact.name(GotEvent->FaultSiteNameId), "migrator.remap");
  EXPECT_EQ(GotEvent->FirstChunk, 16u);
}

TEST_F(DecisionLogTest, RecordingWhileClosedIsANoOp) {
  ObjectEpochRecord Obj;
  DecisionLog::instance().recordObject(Obj); // Must not crash or write.
  EXPECT_EQ(DecisionLog::instance().nameId("ignored"), 0u);
  EXPECT_EQ(DecisionLog::instance().beginEpoch(), 0u);
  EXPECT_FALSE(DecisionLog::instance().isOpen());
}

TEST_F(DecisionLogTest, ValidatorRejectsCorruption) {
  std::string Path = tempPath("decision_corrupt.atdl");
  DecisionLog &Log = DecisionLog::instance();
  ASSERT_TRUE(Log.open(Path));
  Log.beginEpoch();
  ObjectEpochRecord Obj;
  Obj.Object = 1;
  Log.recordObject(Obj);
  ASSERT_TRUE(Log.close());

  std::string Bytes;
  {
    std::ifstream In(Path, std::ios::binary);
    std::stringstream Buf;
    Buf << In.rdbuf();
    Bytes = Buf.str();
  }
  ASSERT_GT(Bytes.size(), 16u);

  auto writeVariant = [&](const std::string &Data) {
    std::string Variant = tempPath("decision_corrupt_variant.atdl");
    std::ofstream Out(Variant, std::ios::binary | std::ios::trunc);
    Out.write(Data.data(), static_cast<std::streamsize>(Data.size()));
    Out.close();
    return Variant;
  };

  DecisionArtifact Artifact;
  std::string Error;

  // Bad magic.
  std::string BadMagic = Bytes;
  BadMagic[0] = 'X';
  EXPECT_FALSE(readDecisionLog(writeVariant(BadMagic), Artifact, &Error));
  EXPECT_NE(Error.find("magic"), std::string::npos) << Error;

  // Unsupported version.
  std::string BadVersion = Bytes;
  BadVersion[4] = 99;
  EXPECT_FALSE(readDecisionLog(writeVariant(BadVersion), Artifact, &Error));
  EXPECT_NE(Error.find("version"), std::string::npos) << Error;

  // Truncation mid-record: reads what it can but flags the missing
  // trailer at validation time.
  std::string Truncated = Bytes.substr(0, Bytes.size() - 5);
  EXPECT_FALSE(readDecisionLog(writeVariant(Truncated), Artifact, &Error));

  // Clean truncation at a record boundary (producer crashed between
  // records): the read succeeds, the validator reports the lost trailer.
  // Trailer record = 4-byte length + 1-byte kind + 8-byte count.
  std::string NoTrailer = Bytes.substr(0, Bytes.size() - 13);
  ASSERT_TRUE(readDecisionLog(writeVariant(NoTrailer), Artifact, &Error));
  EXPECT_FALSE(validateDecisionLog(Artifact, &Error));
  EXPECT_NE(Error.find("trailer"), std::string::npos) << Error;

  // Corrupted trailer count.
  std::string BadCount = Bytes;
  BadCount[Bytes.size() - 1] ^= 0x40;
  ASSERT_TRUE(readDecisionLog(writeVariant(BadCount), Artifact, &Error));
  EXPECT_FALSE(validateDecisionLog(Artifact, &Error));
  EXPECT_NE(Error.find("trailer claims"), std::string::npos) << Error;

  // The untouched original still validates.
  Artifact = readBack(Path);
  EXPECT_TRUE(validateDecisionLog(Artifact, &Error)) << Error;
}

//===----------------------------------------------------------------------===//
// Eq. 5 edge cases (equal weights, single object, zero samples) must be
// recorded with the clamped TR' the promoter actually used.
//===----------------------------------------------------------------------===//

/// Hands the analyzer hand-built per-chunk profiles.
class StubProfiler : public prof::ProfileSource {
public:
  std::map<mem::ObjectId, prof::ObjectProfile> Profiles;
  uint64_t Period = 16;

  prof::ObjectProfile profileFor(mem::ObjectId Id) const override {
    auto It = Profiles.find(Id);
    if (It != Profiles.end())
      return It->second;
    return {};
  }
  uint64_t period() const override { return Period; }

  /// A skewed profile: chunk 0 very hot (16 samples), chunks 1-2 warm
  /// (2 samples each), the rest cold. The hot/warm separation exceeds
  /// the selector's StrongSeparation, so chunk 0 classifies critical and
  /// the object's weight is strictly positive.
  void setSkewedProfile(mem::ObjectId Id, uint32_t NumChunks) {
    prof::ObjectProfile P;
    P.Samples.assign(NumChunks, 0);
    P.EstimatedMisses.assign(NumChunks, 0.0);
    const uint64_t Hits[] = {16, 2, 2};
    for (uint32_t C = 0; C < 3 && C < NumChunks; ++C) {
      P.Samples[C] = Hits[C];
      P.EstimatedMisses[C] = static_cast<double>(Hits[C] * Period);
    }
    Profiles[Id] = P;
  }
};

/// Registry + stub-profiler fixture for driving Analyzer::classify
/// directly (no runtime, no kernels).
class Eq5EdgeCaseTest : public DecisionLogTest {
protected:
  Eq5EdgeCaseTest()
      : M(sim::nvmDramTestbed(1.0 / 1024)), Registry(M) {}

  mem::DataObject &makeObject(const char *Name, uint32_t NumChunks) {
    return Registry.create(Name, NumChunks * 4096ull,
                           mem::InitialPlacement::Slow, 4096);
  }

  /// Runs classify with the decision log capturing, returns the log
  /// artifact plus the classifications for ground truth.
  std::vector<analyzer::ObjectClassification>
  classifyLogged(const std::string &Path) {
    DecisionLog &Log = DecisionLog::instance();
    EXPECT_TRUE(Log.open(Path));
    Log.beginEpoch();
    auto Classes = analyzer::Analyzer().classify(Registry, Profiler);
    EXPECT_TRUE(Log.close());
    return Classes;
  }

  static const ObjectEpochRecord &
  objectRecord(const DecisionArtifact &Artifact, uint32_t Object) {
    for (const DecisionRecord &Rec : Artifact.Records)
      if (Rec.Kind == DecisionKind::ObjectEpoch &&
          Rec.Object.Object == Object)
        return Rec.Object;
    ADD_FAILURE() << "no ObjectEpoch record for object " << Object;
    static ObjectEpochRecord Dummy;
    return Dummy;
  }

  sim::Machine M;
  mem::DataObjectRegistry Registry;
  StubProfiler Profiler;
};

TEST_F(Eq5EdgeCaseTest, EqualWeightsUseMidpointNorm) {
  // Two objects with byte-identical profiles: maxW == minW, so Eq. 5's
  // norm degenerates and the midpoint 0.5 must be used for both —
  // TR' = eps + 0.5 * thetaTR = 1/8 + 0.25 = 0.375 with the defaults.
  mem::DataObject &A = makeObject("a", 8);
  mem::DataObject &B = makeObject("b", 8);
  Profiler.setSkewedProfile(A.id(), 8);
  Profiler.setSkewedProfile(B.id(), 8);

  std::string Path = tempPath("decision_eq5_equal.atdl");
  auto Classes = classifyLogged(Path);
  DecisionArtifact Artifact = readBack(Path);
  std::string Error;
  ASSERT_TRUE(validateDecisionLog(Artifact, &Error)) << Error;

  const ObjectEpochRecord &RecA = objectRecord(Artifact, A.id());
  const ObjectEpochRecord &RecB = objectRecord(Artifact, B.id());
  EXPECT_DOUBLE_EQ(RecA.Weight, RecB.Weight);
  EXPECT_GT(RecA.Weight, 0.0);
  EXPECT_DOUBLE_EQ(RecA.TrThreshold, 0.375);
  EXPECT_DOUBLE_EQ(RecB.TrThreshold, 0.375);
  // The log reports the TR' the promoter actually applied.
  for (const auto &Class : Classes) {
    const ObjectEpochRecord &Rec = objectRecord(Artifact, Class.Object);
    EXPECT_DOUBLE_EQ(Rec.TrThreshold, Class.Promotion.Threshold);
    EXPECT_DOUBLE_EQ(Rec.Weight, Class.Promotion.Weight);
  }
}

TEST_F(Eq5EdgeCaseTest, SingleObjectUsesMidpointNorm) {
  mem::DataObject &A = makeObject("only", 8);
  Profiler.setSkewedProfile(A.id(), 8);

  std::string Path = tempPath("decision_eq5_single.atdl");
  auto Classes = classifyLogged(Path);
  DecisionArtifact Artifact = readBack(Path);
  const ObjectEpochRecord &Rec = objectRecord(Artifact, A.id());
  EXPECT_DOUBLE_EQ(Rec.TrThreshold, 0.375); // eps + 0.5 * thetaTR.
  EXPECT_EQ(Rec.WeightRank, 1u);
  EXPECT_EQ(Rec.RankedObjects, 1u);
  ASSERT_EQ(Classes.size(), 1u);
  EXPECT_DOUBLE_EQ(Rec.TrThreshold, Classes[0].Promotion.Threshold);
}

TEST_F(Eq5EdgeCaseTest, ZeroSampleObjectRecordsClampedThreshold) {
  mem::DataObject &Hot = makeObject("hot", 8);
  mem::DataObject &Cold = makeObject("cold", 8);
  Profiler.setSkewedProfile(Hot.id(), 8);
  // "cold" gets no profile at all: zero samples, zero weight.

  std::string Path = tempPath("decision_eq5_zero.atdl");
  auto Classes = classifyLogged(Path);
  DecisionArtifact Artifact = readBack(Path);

  const ObjectEpochRecord &ColdRec = objectRecord(Artifact, Cold.id());
  EXPECT_DOUBLE_EQ(ColdRec.Weight, 0.0);
  EXPECT_EQ(ColdRec.WeightRank, 0u); // Unranked: carries no weight.
  EXPECT_DOUBLE_EQ(ColdRec.TrThreshold, 2.0); // Clamped: never promotes.
  EXPECT_EQ(ColdRec.SampledCritical, 0u);
  EXPECT_EQ(ColdRec.PromotedCount, 0u);
  for (const auto &Class : Classes)
    if (Class.Object == Cold.id())
      EXPECT_DOUBLE_EQ(Class.Promotion.Threshold, 2.0);

  // Cold chunks are implied by absence: no ChunkDecision records.
  for (const DecisionRecord &Rec : Artifact.Records)
    if (Rec.Kind == DecisionKind::ChunkDecision)
      EXPECT_NE(Rec.Chunk.Object, Cold.id());
}

//===----------------------------------------------------------------------===//
// End-to-end: planted hot set through the full runtime
//===----------------------------------------------------------------------===//

/// Runtime-level fixture: a planted hot array beside a cold one, so
/// optimize() must select, promote and migrate a known region.
class RuntimeDecisionTest : public DecisionLogTest {
protected:
  static core::RuntimeConfig testConfig(const std::string &LogPath = "") {
    core::RuntimeConfig Config;
    Config.Machine = sim::nvmDramTestbed(1.0 / 1024);
    Config.Telemetry.DecisionLogPath = LogPath;
    return Config;
  }

  template <typename ArrayT>
  static void profiledHotIteration(core::Runtime &Rt, ArrayT &Hot) {
    Rt.profilingStart();
    Rt.beginIteration();
    uint64_t State = 12345;
    for (int I = 0; I < 200000; ++I) {
      State = State * 6364136223846793005ull + 1442695040888963407ull;
      Hot[(State >> 33) & (Hot.size() - 1)] += 1;
    }
    Rt.endIteration();
    Rt.profilingStop();
  }
};

TEST_F(RuntimeDecisionTest, PromotedChunksHaveCompleteCausalChains) {
  std::string Path = tempPath("decision_planted.atdl");
  core::Runtime Rt(testConfig(Path));
  ASSERT_TRUE(DecisionLog::enabled()); // The constructor opened the log.
  auto Hot = Rt.allocate<uint64_t>("hot", 1 << 17);
  profiledHotIteration(Rt, Hot);
  mem::MigrationResult Result = Rt.optimize();
  EXPECT_GT(Result.BytesMoved, 0u);
  ASSERT_TRUE(DecisionLog::instance().close());

  DecisionArtifact Artifact = readBack(Path);
  std::string Error;
  DecisionLogStats Stats;
  ASSERT_TRUE(validateDecisionLog(Artifact, &Error, &Stats)) << Error;
  EXPECT_EQ(Stats.Epochs, 1u);
  EXPECT_GT(Stats.CommittedRanges, 0u);

  // Index the artifact: object verdicts, committed chunk set.
  std::map<uint32_t, const ObjectEpochRecord *> Objects;
  std::map<uint32_t, std::vector<const MigrationEventRecord *>> Events;
  for (const DecisionRecord &Rec : Artifact.Records) {
    if (Rec.Kind == DecisionKind::ObjectEpoch)
      Objects[Rec.Object.Object] = &Rec.Object;
    if (Rec.Kind == DecisionKind::MigrationEvent)
      Events[Rec.Migration.Object].push_back(&Rec.Migration);
  }

  uint32_t PromotedSeen = 0;
  for (const DecisionRecord &Rec : Artifact.Records) {
    if (Rec.Kind != DecisionKind::ChunkDecision ||
        !(Rec.Chunk.Flags & DecisionChunkPromoted))
      continue;
    ++PromotedSeen;
    const ChunkDecisionRecord &Chunk = Rec.Chunk;

    // 1. The object verdict exists and its theta is the max of its terms.
    ASSERT_TRUE(Objects.count(Chunk.Object));
    const ObjectEpochRecord &Obj = *Objects[Chunk.Object];
    double MaxTerm = std::max({Obj.ThetaPercentile, Obj.ThetaDerivative,
                               Obj.ThetaNoiseFloor});
    EXPECT_DOUBLE_EQ(Obj.Theta, MaxTerm);
    const double Terms[] = {Obj.ThetaPercentile, Obj.ThetaDerivative,
                            Obj.ThetaNoiseFloor};
    EXPECT_DOUBLE_EQ(Terms[static_cast<int>(Obj.Winner)], Obj.Theta);

    // 2. The promotion was justified: the recorded tree-node ratio
    //    cleared the recorded (valid) TR' threshold.
    EXPECT_LE(Obj.TrThreshold, 1.0);
    EXPECT_GE(Chunk.NodeTreeRatio, Obj.TrThreshold);

    // 3. A promoted chunk was not sampled critical (it was estimated).
    EXPECT_FALSE(Chunk.Flags & DecisionChunkSampledCritical);

    // 4. The full migration lifecycle covers the chunk.
    bool Planned = false, Staged = false, Remapped = false,
         Committed = false;
    for (const MigrationEventRecord *Event : Events[Chunk.Object]) {
      if (Chunk.Chunk < Event->FirstChunk ||
          Chunk.Chunk >= Event->FirstChunk + Event->NumChunks)
        continue;
      EXPECT_EQ(Event->TargetFast, 1u);
      switch (Event->Phase) {
      case DecisionPhase::Planned:
        Planned = true;
        break;
      case DecisionPhase::Staged:
        Staged = true;
        break;
      case DecisionPhase::Remapped:
        Remapped = true;
        break;
      case DecisionPhase::Committed:
        Committed = true;
        break;
      default:
        break;
      }
    }
    EXPECT_TRUE(Planned) << "chunk " << Chunk.Chunk;
    EXPECT_TRUE(Staged) << "chunk " << Chunk.Chunk;
    EXPECT_TRUE(Remapped) << "chunk " << Chunk.Chunk;
    EXPECT_TRUE(Committed) << "chunk " << Chunk.Chunk;

    // 5. atmem_explain reproduces the chain from the artifact alone.
    WhyQuery Query;
    Query.Object = Artifact.name(Obj.NameId);
    Query.Chunk = Chunk.Chunk;
    std::string Explanation;
    ASSERT_TRUE(explainChunk(Artifact, Query, Explanation, &Error))
        << Error;
    EXPECT_NE(Explanation.find("Eq.2 theta"), std::string::npos);
    EXPECT_NE(Explanation.find("Eq.5 TR'"), std::string::npos);
    EXPECT_NE(Explanation.find("promoted"), std::string::npos);
    EXPECT_NE(Explanation.find("committed"), std::string::npos);
  }
  EXPECT_GT(PromotedSeen, 0u) << "planted hot set promoted nothing";
  EXPECT_EQ(PromotedSeen, Stats.PromotedChunks);

  // The rendering helpers run over the same artifact.
  std::string Heatmap = renderHeatmap(Artifact, "hot");
  EXPECT_NE(Heatmap.find("epoch"), std::string::npos);
  std::string Summary = summarizeDecisions(Artifact);
  EXPECT_NE(Summary.find("hot"), std::string::npos);
  EXPECT_EQ(diffDecisions(Artifact, Artifact),
            "placement decisions identical\n");
}

TEST_F(RuntimeDecisionTest, RecordingDoesNotChangePlacement) {
  // Identical runs with the flight recorder off and on must produce the
  // same per-chunk placement (the "--decision-log off keeps fig05
  // byte-identical" guarantee, asserted at the placement level).
  auto runOnce = [&](const std::string &LogPath) {
    core::Runtime Rt(testConfig(LogPath));
    auto Hot = Rt.allocate<uint64_t>("hot", 1 << 17);
    auto Cold = Rt.allocate<uint64_t>("cold", 1 << 18);
    profiledHotIteration(Rt, Hot);
    Rt.optimize();
    std::vector<uint8_t> Tiers;
    for (mem::ObjectId Id : {Hot.objectId(), Cold.objectId()}) {
      const mem::DataObject &Obj = Rt.registry().object(Id);
      for (uint32_t C = 0; C < Obj.numChunks(); ++C)
        Tiers.push_back(Obj.chunkTier(C) == sim::TierId::Fast ? 1 : 0);
    }
    if (!LogPath.empty())
      EXPECT_TRUE(DecisionLog::instance().close());
    return Tiers;
  };

  std::vector<uint8_t> Off = runOnce("");
  std::vector<uint8_t> On =
      runOnce(tempPath("decision_equivalence.atdl"));
  EXPECT_EQ(Off, On);
}

TEST_F(RuntimeDecisionTest, FaultAttributionAndRenomination) {
  std::string Path = tempPath("decision_faulted.atdl");
  core::RuntimeConfig Config = testConfig(Path);
  Config.MigrationMaxRetries = 1;
  core::Runtime Rt(Config);
  auto Hot = Rt.allocate<uint64_t>("hot", 1 << 17);
  profiledHotIteration(Rt, Hot);

  // Every staging allocation fails: the log must attribute the rollbacks
  // to the staging fault site, record the exhausted retry and the skip.
  fault::FaultPlan Plan;
  Plan.Mode = fault::Trigger::EveryKth;
  Plan.N = 1;
  fault::FaultRegistry::instance().arm("migrator.staging_alloc", Plan);
  mem::MigrationResult Faulted = Rt.optimize();
  fault::FaultRegistry::instance().disarmAll();
  EXPECT_EQ(Faulted.BytesMoved, 0u);
  ASSERT_FALSE(Rt.skippedChunks().empty());

  // The next, unfaulted epoch re-nominates and places the skipped chunks.
  mem::MigrationResult Recovered = Rt.optimize();
  EXPECT_GT(Recovered.BytesMoved, 0u);
  ASSERT_TRUE(DecisionLog::instance().close());

  DecisionArtifact Artifact = readBack(Path);
  std::string Error;
  DecisionLogStats Stats;
  ASSERT_TRUE(validateDecisionLog(Artifact, &Error, &Stats)) << Error;
  EXPECT_EQ(Stats.Epochs, 2u);
  EXPECT_GT(Stats.RolledBack, 0u);
  EXPECT_GT(Stats.Retried, 0u);
  EXPECT_GT(Stats.Skipped, 0u);
  EXPECT_GT(Stats.Renominated, 0u);
  EXPECT_GT(Stats.CommittedRanges, 0u);

  // Every rollback in epoch 1 names the armed fault site; epoch 2 holds
  // the re-nominations and the commits.
  uint64_t Epoch1Rollbacks = 0, Epoch2Commits = 0, Epoch2Renominated = 0;
  for (const DecisionRecord &Rec : Artifact.Records) {
    if (Rec.Kind != DecisionKind::MigrationEvent)
      continue;
    const MigrationEventRecord &Event = Rec.Migration;
    if (Event.Phase == DecisionPhase::RolledBack) {
      EXPECT_EQ(Event.Epoch, 1u);
      EXPECT_EQ(Artifact.name(Event.FaultSiteNameId),
                "migrator.staging_alloc");
      ++Epoch1Rollbacks;
    }
    if (Event.Phase == DecisionPhase::Committed && Event.Epoch == 2)
      ++Epoch2Commits;
    if (Event.Phase == DecisionPhase::Renominated) {
      EXPECT_EQ(Event.Epoch, 2u);
      ++Epoch2Renominated;
    }
  }
  EXPECT_GT(Epoch1Rollbacks, 0u);
  EXPECT_GT(Epoch2Commits, 0u);
  EXPECT_GT(Epoch2Renominated, 0u);

  // The causal chain of the failure is renderable: the why-query for a
  // skipped chunk reports the rollback with its fault site.
  const MigrationEventRecord *Skip = nullptr;
  for (const DecisionRecord &Rec : Artifact.Records)
    if (Rec.Kind == DecisionKind::MigrationEvent &&
        Rec.Migration.Phase == DecisionPhase::Skipped) {
      Skip = &Rec.Migration;
      break;
    }
  ASSERT_NE(Skip, nullptr);
  WhyQuery Query;
  Query.Object = "hot";
  Query.Chunk = Skip->FirstChunk;
  Query.Epoch = 1;
  std::string Explanation;
  ASSERT_TRUE(explainChunk(Artifact, Query, Explanation, &Error)) << Error;
  EXPECT_NE(Explanation.find("rolled_back"), std::string::npos)
      << Explanation;
  EXPECT_NE(Explanation.find("migrator.staging_alloc"), std::string::npos)
      << Explanation;
  EXPECT_NE(Explanation.find("skipped"), std::string::npos) << Explanation;
}

TEST_F(RuntimeDecisionTest, JsonlExportParsesLineByLine) {
  std::string Path = tempPath("decision_jsonl.atdl");
  core::Runtime Rt(testConfig(Path));
  auto Hot = Rt.allocate<uint64_t>("hot", 1 << 17);
  profiledHotIteration(Rt, Hot);
  Rt.optimize();
  ASSERT_TRUE(DecisionLog::instance().close());

  DecisionArtifact Artifact = readBack(Path);
  std::string Jsonl = decisionJsonl(Artifact);
  ASSERT_FALSE(Jsonl.empty());
  size_t Lines = 0;
  std::istringstream In(Jsonl);
  std::string Line;
  bool SawObject = false, SawChunk = false, SawMigration = false;
  while (std::getline(In, Line)) {
    ++Lines;
    JsonValue Doc;
    std::string Error;
    ASSERT_TRUE(parseJson(Line, Doc, &Error)) << Error << "\n" << Line;
    const JsonValue *Kind = Doc.findString("kind");
    ASSERT_NE(Kind, nullptr) << Line;
    SawObject |= Kind->StringVal == "object";
    SawChunk |= Kind->StringVal == "chunk";
    SawMigration |= Kind->StringVal == "migration";
  }
  // Every record except the trailer exports exactly one line.
  EXPECT_EQ(Lines, Artifact.Records.size());
  EXPECT_TRUE(SawObject);
  EXPECT_TRUE(SawChunk);
  EXPECT_TRUE(SawMigration);
}

} // namespace
