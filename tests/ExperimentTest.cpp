//===----------------------------------------------------------------------===//
// Integration tests over the experiment runner: the paper's qualitative
// claims must hold on the simulated testbeds.
//===----------------------------------------------------------------------===//

#include "baseline/Experiment.h"
#include "graph/Datasets.h"

#include <gtest/gtest.h>

using namespace atmem;
using namespace atmem::baseline;

namespace {

/// Shared scaled dataset; rmat24 is the smallest input with robust skew.
class ExperimentTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    Data = new graph::Dataset(graph::makeDataset("rmat24", 512));
  }
  static void TearDownTestSuite() {
    delete Data;
    Data = nullptr;
  }

  RunConfig nvmConfig(Policy P) const {
    RunConfig Config;
    Config.KernelName = "bfs";
    Config.Graph = &Data->Graph;
    Config.Machine = sim::nvmDramTestbed(1.0 / 512);
    Config.PolicyKind = P;
    return Config;
  }

  static graph::Dataset *Data;
};

graph::Dataset *ExperimentTest::Data = nullptr;

TEST_F(ExperimentTest, PolicyNamesUnique) {
  std::set<std::string> Names;
  for (Policy P :
       {Policy::AllSlow, Policy::AllFast, Policy::PreferredFast,
        Policy::Atmem, Policy::AtmemMbind, Policy::AtmemSampledOnly,
        Policy::CoarseGrained})
    EXPECT_TRUE(Names.insert(policyName(P)).second);
}

TEST_F(ExperimentTest, PolicyUsesAtmemClassification) {
  EXPECT_FALSE(policyUsesAtmem(Policy::AllSlow));
  EXPECT_FALSE(policyUsesAtmem(Policy::AllFast));
  EXPECT_FALSE(policyUsesAtmem(Policy::PreferredFast));
  EXPECT_TRUE(policyUsesAtmem(Policy::Atmem));
  EXPECT_TRUE(policyUsesAtmem(Policy::AtmemMbind));
  EXPECT_TRUE(policyUsesAtmem(Policy::AtmemSampledOnly));
  EXPECT_TRUE(policyUsesAtmem(Policy::CoarseGrained));
}

TEST_F(ExperimentTest, AtmemBetweenBaselineAndIdeal) {
  RunResult Slow = runExperiment(nvmConfig(Policy::AllSlow));
  RunResult Atmem = runExperiment(nvmConfig(Policy::Atmem));
  RunResult Fast = runExperiment(nvmConfig(Policy::AllFast));
  EXPECT_LT(Atmem.MeasuredIterSec, Slow.MeasuredIterSec);
  EXPECT_GE(Atmem.MeasuredIterSec, Fast.MeasuredIterSec);
}

TEST_F(ExperimentTest, ChecksumsIdenticalAcrossPolicies) {
  uint64_t Reference = runExperiment(nvmConfig(Policy::AllSlow)).Checksum;
  for (Policy P : {Policy::AllFast, Policy::Atmem, Policy::AtmemMbind,
                   Policy::AtmemSampledOnly, Policy::CoarseGrained})
    EXPECT_EQ(runExperiment(nvmConfig(P)).Checksum, Reference)
        << policyName(P);
}

TEST_F(ExperimentTest, AtmemSelectsMinorityOfData) {
  RunResult Atmem = runExperiment(nvmConfig(Policy::Atmem));
  EXPECT_GT(Atmem.FastDataRatio, 0.01);
  EXPECT_LT(Atmem.FastDataRatio, 0.5);
}

TEST_F(ExperimentTest, BaselineRatiosAtExtremes) {
  EXPECT_DOUBLE_EQ(runExperiment(nvmConfig(Policy::AllSlow)).FastDataRatio,
                   0.0);
  EXPECT_DOUBLE_EQ(runExperiment(nvmConfig(Policy::AllFast)).FastDataRatio,
                   1.0);
}

TEST_F(ExperimentTest, ProfilingOverheadUnderTenPercent) {
  // Paper Section 7.4: profiling costs less than 10% of iteration one.
  RunResult Atmem = runExperiment(nvmConfig(Policy::Atmem));
  EXPECT_LT(Atmem.ProfilingOverheadSec, 0.1 * Atmem.FirstIterSec);
  EXPECT_GT(Atmem.ProfilingOverheadSec, 0.0);
}

TEST_F(ExperimentTest, MigrationCountersPopulated) {
  RunResult Atmem = runExperiment(nvmConfig(Policy::Atmem));
  EXPECT_GT(Atmem.Migration.BytesMoved, 0u);
  EXPECT_GT(Atmem.Migration.Ranges, 0u);
  EXPECT_GT(Atmem.Migration.SimSeconds, 0.0);
}

TEST_F(ExperimentTest, NonAtmemPoliciesDoNotMigrate) {
  RunResult Slow = runExperiment(nvmConfig(Policy::AllSlow));
  EXPECT_EQ(Slow.Migration.BytesMoved, 0u);
  EXPECT_EQ(Slow.ProfilingOverheadSec, 0.0);
}

TEST_F(ExperimentTest, MbindMigrationSlowerAndMoreTlbMisses) {
  // Table 4: ATMem reduces both migration time and post-migration TLB
  // misses relative to mbind.
  RunConfig AtmemConfig = nvmConfig(Policy::Atmem);
  AtmemConfig.KernelName = "pr";
  AtmemConfig.MeasureTlb = true;
  RunConfig MbindConfig = nvmConfig(Policy::AtmemMbind);
  MbindConfig.KernelName = "pr";
  MbindConfig.MeasureTlb = true;
  RunResult Atmem = runExperiment(AtmemConfig);
  RunResult Mbind = runExperiment(MbindConfig);
  EXPECT_LT(Atmem.Migration.SimSeconds, Mbind.Migration.SimSeconds);
  // At this tiny scale the selected ranges can be smaller than a huge
  // page on both paths, so the TLB comparison is only required not to
  // regress; the strict separation is covered by
  // RuntimeTlbTest.AtmemPreservesTlbReachAfterMigration and by the
  // full-scale table4 benchmark.
  EXPECT_LE(Atmem.TlbMisses, Mbind.TlbMisses);
  EXPECT_GT(Mbind.Migration.HugePagesSplit, 0u);
  EXPECT_EQ(Atmem.Migration.HugePagesSplit, 0u);
}

TEST_F(ExperimentTest, AtmemPreservesTlbReachAfterMigration) {
  // Deterministic Table 4 mechanism check: a hot object spanning many
  // huge pages is fully selected and migrated; ATMem's remap keeps 2 MiB
  // mappings while mbind fragments them into 4 KiB entries, so replaying
  // the same access pattern misses the TLB far more often after mbind.
  auto RunOne = [](core::MigrationMechanism Mechanism) {
    core::RuntimeConfig Config;
    Config.Machine = sim::nvmDramTestbed(1.0 / 512);
    Config.Mechanism = Mechanism;
    core::Runtime Rt(Config);
    auto Hot = Rt.allocate<uint64_t>("hot", (16ull << 20) / 8);
    auto Touch = [&] {
      uint64_t State = 99;
      for (int I = 0; I < 400000; ++I) {
        State = State * 6364136223846793005ull + 1442695040888963407ull;
        Hot[(State >> 30) % Hot.size()] += 1;
      }
    };
    Rt.profilingStart();
    Rt.beginIteration();
    Touch();
    Rt.endIteration();
    Rt.profilingStop();
    Rt.optimize();
    EXPECT_GT(Rt.fastDataRatio(), 0.9);
    sim::Tlb Tlb = Rt.machine().makeTlb();
    Rt.setReplayTlb(&Tlb);
    Rt.beginIteration();
    Touch();
    Rt.endIteration();
    Rt.setReplayTlb(nullptr);
    return Tlb.misses();
  };
  uint64_t AtmemMisses = RunOne(core::MigrationMechanism::Atmem);
  uint64_t MbindMisses = RunOne(core::MigrationMechanism::Mbind);
  EXPECT_GT(MbindMisses, 5 * AtmemMisses);
}

TEST_F(ExperimentTest, EpsilonSweepMovesDataRatio) {
  // The Section 7.2 sensitivity mechanism: larger eps -> higher TR
  // thresholds -> less promotion -> lower data ratio.
  RunConfig Low = nvmConfig(Policy::Atmem);
  Low.EpsilonOffset = -0.10;
  RunConfig High = nvmConfig(Policy::Atmem);
  High.EpsilonOffset = 0.60;
  RunResult LowResult = runExperiment(Low);
  RunResult HighResult = runExperiment(High);
  EXPECT_GE(LowResult.FastDataRatio, HighResult.FastDataRatio);
}

TEST_F(ExperimentTest, SampledOnlyAblationSelectsNoMoreData) {
  RunResult Full = runExperiment(nvmConfig(Policy::Atmem));
  RunResult Sampled = runExperiment(nvmConfig(Policy::AtmemSampledOnly));
  EXPECT_LE(Sampled.FastDataRatio, Full.FastDataRatio);
}

TEST_F(ExperimentTest, McdramPreferredOverflowsOnLargeGraph) {
  graph::Dataset Big = graph::makeDataset("friendster", 512);
  RunConfig Config;
  Config.KernelName = "bfs";
  Config.Graph = &Big.Graph;
  Config.Machine = sim::mcdramDramTestbed(1.0 / 512);
  Config.PolicyKind = Policy::PreferredFast;
  RunResult Preferred = runExperiment(Config);
  // MCDRAM cannot hold everything (the Section 7.2 capacity story).
  EXPECT_LT(Preferred.FastDataRatio, 1.0);
  EXPECT_GT(Preferred.FastDataRatio, 0.1);

  Config.PolicyKind = Policy::Atmem;
  RunResult Atmem = runExperiment(Config);
  // ATMem stays within capacity and beats the preferred policy.
  EXPECT_LT(Atmem.FastDataRatio, Preferred.FastDataRatio);
  EXPECT_LT(Atmem.MeasuredIterSec, Preferred.MeasuredIterSec);
}

TEST_F(ExperimentTest, MeasuredIterationsAveraged) {
  RunConfig Config = nvmConfig(Policy::AllSlow);
  Config.MeasuredIterations = 3;
  RunResult Result = runExperiment(Config);
  EXPECT_GT(Result.MeasuredIterSec, 0.0);
}

TEST_F(ExperimentTest, AllKernelsRunUnderAtmem) {
  for (const char *Kernel : {"bfs", "sssp", "pr", "bc", "cc", "spmv"}) {
    RunConfig Config = nvmConfig(Policy::Atmem);
    Config.KernelName = Kernel;
    RunResult Result = runExperiment(Config);
    EXPECT_GT(Result.MeasuredIterSec, 0.0) << Kernel;
    EXPECT_GT(Result.FastDataRatio, 0.0) << Kernel;
  }
}

} // namespace
