//===----------------------------------------------------------------------===//
// Tests for the Section 9 extension features: adaptive re-optimization
// with demotion, the AutoTuner, channel-aware bandwidth modelling, and
// bandwidth-balanced placement.
//===----------------------------------------------------------------------===//

#include "analyzer/PlacementPlan.h"
#include "apps/Kernels.h"
#include "core/AutoTuner.h"
#include "core/Runtime.h"
#include "graph/Generators.h"

#include <gtest/gtest.h>

using namespace atmem;
using namespace atmem::core;

namespace {

RuntimeConfig nvmConfig() {
  RuntimeConfig Config;
  Config.Machine = sim::nvmDramTestbed(1.0 / 1024);
  return Config;
}

//===----------------------------------------------------------------------===//
// Demotion / adaptive re-optimization
//===----------------------------------------------------------------------===//

class DemotionTest : public ::testing::Test {
protected:
  DemotionTest() : Rt(nvmConfig()) {
    HotA = Rt.allocate<uint64_t>("phaseA", 1 << 16);
    HotB = Rt.allocate<uint64_t>("phaseB", 1 << 16);
  }

  void hammer(TrackedArray<uint64_t> &Arr) {
    uint64_t State = 7;
    for (int I = 0; I < 150000; ++I) {
      State = State * 6364136223846793005ull + 1442695040888963407ull;
      Arr[(State >> 33) & ((1 << 16) - 1)] += 1;
    }
  }

  void profileAndOptimize(TrackedArray<uint64_t> &Hot) {
    Rt.profilingStart();
    Rt.beginIteration();
    hammer(Hot);
    Rt.endIteration();
    Rt.profilingStop();
    Rt.optimize();
  }

  Runtime Rt;
  TrackedArray<uint64_t> HotA;
  TrackedArray<uint64_t> HotB;
};

TEST_F(DemotionTest, ReoptimizationFollowsThePhase) {
  profileAndOptimize(HotA);
  const mem::DataObject &ObjA = Rt.registry().object(HotA.objectId());
  const mem::DataObject &ObjB = Rt.registry().object(HotB.objectId());
  EXPECT_GT(ObjA.bytesOn(sim::TierId::Fast), ObjA.mappedBytes() / 2);
  EXPECT_EQ(ObjB.bytesOn(sim::TierId::Fast), 0u);

  // Phase change: B becomes hot, A cold. Re-optimization must demote A
  // and promote B.
  profileAndOptimize(HotB);
  EXPECT_GT(ObjB.bytesOn(sim::TierId::Fast), ObjB.mappedBytes() / 2);
  EXPECT_LT(ObjA.bytesOn(sim::TierId::Fast), ObjA.mappedBytes() / 4);
}

TEST_F(DemotionTest, DemotionPreservesData) {
  for (size_t I = 0; I < HotA.size(); ++I)
    HotA.raw()[I] = I * 3 + 1;
  profileAndOptimize(HotA);
  profileAndOptimize(HotB); // Demotes A.
  uint64_t State = 7;
  // HotA was hammered once before the snapshot values were written...
  // verify against a fresh recomputation instead: the array must equal
  // what the same operations produce on a plain vector.
  std::vector<uint64_t> Expected(HotA.size());
  for (size_t I = 0; I < Expected.size(); ++I)
    Expected[I] = I * 3 + 1;
  for (int I = 0; I < 150000; ++I) {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    Expected[(State >> 33) & ((1 << 16) - 1)] += 1;
  }
  for (size_t I = 0; I < HotA.size(); ++I)
    ASSERT_EQ(HotA.raw()[I], Expected[I]) << I;
}

TEST_F(DemotionTest, DisabledDemotionLeavesOldPlacement) {
  RuntimeConfig Config = nvmConfig();
  Config.DemoteUnselected = false;
  Runtime Local(Config);
  auto A = Local.allocate<uint64_t>("a", 1 << 16);
  auto B = Local.allocate<uint64_t>("b", 1 << 16);
  auto Hammer = [&](TrackedArray<uint64_t> &Arr) {
    uint64_t State = 7;
    for (int I = 0; I < 150000; ++I) {
      State = State * 6364136223846793005ull + 1442695040888963407ull;
      Arr[(State >> 33) & ((1 << 16) - 1)] += 1;
    }
  };
  Local.profilingStart();
  Local.beginIteration();
  Hammer(A);
  Local.endIteration();
  Local.profilingStop();
  Local.optimize();
  uint64_t AOnFast =
      Local.registry().object(A.objectId()).bytesOn(sim::TierId::Fast);
  ASSERT_GT(AOnFast, 0u);

  Local.profilingStart();
  Local.beginIteration();
  Hammer(B);
  Local.endIteration();
  Local.profilingStop();
  Local.optimize();
  // A keeps its fast placement when demotion is off.
  EXPECT_EQ(Local.registry().object(A.objectId()).bytesOn(sim::TierId::Fast),
            AOnFast);
}

//===----------------------------------------------------------------------===//
// AutoTuner
//===----------------------------------------------------------------------===//

TEST(AutoTunerTest, OptimizesAfterFirstIteration) {
  Runtime Rt(nvmConfig());
  auto Hot = Rt.allocate<uint64_t>("hot", 1 << 16);
  AutoTuner Tuner(Rt);
  EXPECT_FALSE(Tuner.optimized());

  auto Iterate = [&] {
    Tuner.beginIteration();
    uint64_t State = 3;
    for (int I = 0; I < 150000; ++I) {
      State = State * 6364136223846793005ull + 1442695040888963407ull;
      Hot[(State >> 33) & ((1 << 16) - 1)] += 1;
    }
    return Tuner.endIteration();
  };

  double First = Iterate();
  EXPECT_TRUE(Tuner.optimized());
  EXPECT_EQ(Tuner.optimizeCount(), 1u);
  EXPECT_GT(Tuner.migration().BytesMoved, 0u);
  double Second = Iterate();
  EXPECT_LT(Second, First);
  // Steady state: no further optimize while the pattern is stable.
  Iterate();
  EXPECT_EQ(Tuner.optimizeCount(), 1u);
}

TEST(AutoTunerTest, MultiIterationProfilingWindow) {
  Runtime Rt(nvmConfig());
  auto Hot = Rt.allocate<uint64_t>("hot", 1 << 14);
  AutoTunerConfig Config;
  Config.ProfileIterations = 3;
  AutoTuner Tuner(Rt, Config);
  for (int I = 0; I < 2; ++I) {
    Tuner.beginIteration();
    for (size_t J = 0; J < Hot.size(); ++J)
      Hot[J] += 1;
    Tuner.endIteration();
    EXPECT_FALSE(Tuner.optimized());
  }
  Tuner.beginIteration();
  for (size_t J = 0; J < Hot.size(); ++J)
    Hot[J] += 1;
  Tuner.endIteration();
  EXPECT_TRUE(Tuner.optimized());
}

TEST(AutoTunerTest, ReprofilesOnPhaseChange) {
  Runtime Rt(nvmConfig());
  auto Hot = Rt.allocate<uint64_t>("hot", 1 << 15);
  AutoTunerConfig Config;
  Config.ReprofileDeviation = 0.5;
  AutoTuner Tuner(Rt, Config);

  auto Iterate = [&](int Accesses) {
    Tuner.beginIteration();
    uint64_t State = 3;
    for (int I = 0; I < Accesses; ++I) {
      State = State * 6364136223846793005ull + 1442695040888963407ull;
      Hot[(State >> 33) & ((1 << 15) - 1)] += 1;
    }
    return Tuner.endIteration();
  };

  Iterate(100000); // Profile + optimize #1.
  ASSERT_EQ(Tuner.optimizeCount(), 1u);
  Iterate(100000); // Stable.
  EXPECT_EQ(Tuner.optimizeCount(), 1u);
  Iterate(400000); // 4x the volume: flags a phase change...
  EXPECT_EQ(Tuner.optimizeCount(), 1u);
  Iterate(400000); // ...so this iteration is profiled and re-optimized.
  EXPECT_EQ(Tuner.optimizeCount(), 2u);
}

TEST(AutoTunerTest, DeviationZeroDisablesReoptimization) {
  Runtime Rt(nvmConfig());
  auto Hot = Rt.allocate<uint64_t>("hot", 1 << 14);
  AutoTunerConfig Config;
  Config.ReprofileDeviation = 0.0;
  AutoTuner Tuner(Rt, Config);
  for (int Round = 0; Round < 4; ++Round) {
    Tuner.beginIteration();
    for (size_t J = 0; J < Hot.size(); J += (Round + 1))
      Hot[J] += 1;
    Tuner.endIteration();
  }
  EXPECT_EQ(Tuner.optimizeCount(), 1u);
}

TEST(BudgetCapTest, ByteCapBoundsPlacement) {
  RuntimeConfig Config = nvmConfig();
  Config.FastBudgetBytesCap = 64 << 10; // 64 KiB for a hot 512 KiB array.
  Runtime Rt(Config);
  auto Hot = Rt.allocate<uint64_t>("hot", 1 << 16);
  Rt.profilingStart();
  Rt.beginIteration();
  uint64_t State = 11;
  for (int I = 0; I < 200000; ++I) {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    Hot[(State >> 33) & ((1 << 16) - 1)] += 1;
  }
  Rt.endIteration();
  Rt.profilingStop();
  Rt.optimize();
  uint64_t OnFast =
      Rt.registry().object(Hot.objectId()).bytesOn(sim::TierId::Fast);
  EXPECT_GT(OnFast, 0u);
  EXPECT_LE(OnFast, 64u << 10);
}

//===----------------------------------------------------------------------===//
// Channel-aware bandwidth model
//===----------------------------------------------------------------------===//

TEST(ChannelModelTest, SharedChannelsSerializeTraffic) {
  sim::MachineConfig Shared = sim::nvmDramTestbed();
  ASSERT_EQ(Shared.Exec.Channels, sim::ChannelSharing::Shared);
  sim::MachineConfig Independent = Shared;
  Independent.Exec.Channels = sim::ChannelSharing::Independent;

  sim::AccessStats Stats;
  Stats.Accesses = 20000000;
  Stats.TierMisses[0] = 10000000;
  Stats.TierMisses[1] = 10000000;
  sim::KernelCostModel SharedModel(Shared);
  sim::KernelCostModel IndependentModel(Independent);
  EXPECT_GT(SharedModel.estimate(Stats).BandwidthSec,
            IndependentModel.estimate(Stats).BandwidthSec);
  // Single-tier traffic is identical under both topologies.
  sim::AccessStats OneTier;
  OneTier.Accesses = 20000000;
  OneTier.TierMisses[1] = 20000000;
  EXPECT_DOUBLE_EQ(SharedModel.estimate(OneTier).BandwidthSec,
                   IndependentModel.estimate(OneTier).BandwidthSec);
}

TEST(ChannelModelTest, KnlPresetIsIndependent) {
  EXPECT_EQ(sim::mcdramDramTestbed().Exec.Channels,
            sim::ChannelSharing::Independent);
}

//===----------------------------------------------------------------------===//
// Bandwidth-balanced placement
//===----------------------------------------------------------------------===//

analyzer::ObjectClassification
uniformClass(uint32_t ObjectId, uint32_t Chunks, double Priority) {
  analyzer::ObjectClassification Class;
  Class.Object = ObjectId;
  Class.ChunkBytes = 4096;
  Class.MappedBytes = static_cast<uint64_t>(Chunks) * 4096;
  Class.Local.Critical.assign(Chunks, 0);
  Class.Local.Priority.assign(Chunks, Priority);
  Class.Promotion.Promoted.assign(Chunks, 0);
  return Class;
}

TEST(BandwidthBalanceTest, SelectsTargetTrafficShare) {
  // 100 uniform chunks: an 80% traffic target selects ~80 of them.
  auto Class = uniformClass(0, 100, 1.0);
  analyzer::PlacementPlan Plan = analyzer::PlanBuilder::buildBandwidthBalanced(
      {Class}, /*BudgetBytes=*/1ull << 30, /*FastTrafficShare=*/0.8);
  EXPECT_NEAR(static_cast<double>(Plan.TotalBytes) / (100.0 * 4096), 0.8,
              0.02);
}

TEST(BandwidthBalanceTest, HotChunksTakenFirst) {
  auto Class = uniformClass(0, 10, 1.0);
  Class.Local.Priority[3] = 100.0; // One scorching chunk.
  analyzer::PlacementPlan Plan = analyzer::PlanBuilder::buildBandwidthBalanced(
      {Class}, 1ull << 30, 0.5);
  // The hot chunk alone carries 100/109 of the traffic: selection stops
  // right after it.
  ASSERT_EQ(Plan.Objects.size(), 1u);
  EXPECT_EQ(Plan.TotalBytes, 4096u);
  EXPECT_EQ(Plan.Objects[0].Ranges[0].FirstChunk, 3u);
}

TEST(BandwidthBalanceTest, BudgetStillBinds) {
  auto Class = uniformClass(0, 100, 1.0);
  analyzer::PlacementPlan Plan = analyzer::PlanBuilder::buildBandwidthBalanced(
      {Class}, /*BudgetBytes=*/10 * 4096, /*FastTrafficShare=*/1.0);
  EXPECT_LE(Plan.TotalBytes, 10u * 4096);
}

TEST(BandwidthBalanceTest, ZeroShareSelectsNothing) {
  auto Class = uniformClass(0, 16, 1.0);
  analyzer::PlacementPlan Plan = analyzer::PlanBuilder::buildBandwidthBalanced(
      {Class}, 1ull << 30, 0.0);
  EXPECT_EQ(Plan.TotalBytes, 0u);
}

TEST(BandwidthBalanceTest, RuntimeStrategyOnKnlImprovesBandwidthBoundKernel) {
  // On the independent-channel machine, splitting the traffic between
  // MCDRAM and DDR4 must not be slower than pushing everything to
  // MCDRAM, and both must beat the all-DDR4 baseline.
  graph::PowerLawParams Params;
  Params.NumVertices = 1 << 15;
  Params.AverageDegree = 16;
  Params.Seed = 5;
  graph::CsrGraph G = graph::generatePowerLaw(Params);

  auto RunWith = [&](PlacementStrategy Strategy) {
    RuntimeConfig Config;
    Config.Machine = sim::mcdramDramTestbed(1.0 / 1024);
    Config.Strategy = Strategy;
    Runtime Rt(Config);
    apps::PageRankKernel Kernel;
    Kernel.setup(Rt, G);
    Rt.profilingStart();
    Rt.beginIteration();
    Kernel.runIteration();
    Rt.endIteration();
    Rt.profilingStop();
    Rt.optimize();
    Rt.beginIteration();
    Kernel.runIteration();
    return Rt.endIteration();
  };

  double Critical = RunWith(PlacementStrategy::CriticalChunks);
  double Balanced = RunWith(PlacementStrategy::BandwidthBalanced);
  // Balanced placement may win or tie, but must stay in the same class.
  EXPECT_LT(Balanced, Critical * 1.25);
}

} // namespace
