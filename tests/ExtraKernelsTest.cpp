//===----------------------------------------------------------------------===//
// Tests for the extra kernels beyond the paper's five: triangle counting
// and k-core decomposition.
//===----------------------------------------------------------------------===//

#include "apps/Kernels.h"
#include "apps/Reference.h"
#include "graph/Generators.h"

#include <gtest/gtest.h>

using namespace atmem;
using namespace atmem::apps;
using namespace atmem::graph;

namespace {

core::RuntimeConfig testConfig() {
  core::RuntimeConfig Config;
  Config.Machine = sim::nvmDramTestbed(1.0 / 1024);
  return Config;
}

CsrGraph randomGraph(uint32_t Vertices = 1200, uint64_t Seed = 13) {
  PowerLawParams Params;
  Params.NumVertices = Vertices;
  Params.AverageDegree = 8;
  Params.Seed = Seed;
  return generatePowerLaw(Params);
}

//===----------------------------------------------------------------------===//
// Triangle counting
//===----------------------------------------------------------------------===//

TEST(TriangleCountTest, CompleteGraphK4HasFourTriangles) {
  std::vector<Edge> Edges;
  for (VertexId U = 0; U < 4; ++U)
    for (VertexId V = 0; V < 4; ++V)
      if (U != V)
        Edges.push_back({U, V});
  CsrGraph G = buildCsr(4, Edges);
  core::Runtime Rt(testConfig());
  TriangleCountKernel Kernel;
  Kernel.setup(Rt, G);
  Kernel.runIteration();
  EXPECT_EQ(Kernel.triangles(), 4u);
}

TEST(TriangleCountTest, TriangleFreeGraphCountsZero) {
  // A star has no triangles.
  std::vector<Edge> Edges;
  for (VertexId V = 1; V < 20; ++V)
    Edges.push_back({0, V});
  CsrGraph G = buildCsr(20, Edges);
  core::Runtime Rt(testConfig());
  TriangleCountKernel Kernel;
  Kernel.setup(Rt, G);
  Kernel.runIteration();
  EXPECT_EQ(Kernel.triangles(), 0u);
}

TEST(TriangleCountTest, DirectionAndDuplicatesIgnored) {
  // The same triangle expressed with mixed directions and a duplicate.
  CsrGraph G = buildCsr(3, {{0, 1}, {1, 0}, {1, 2}, {0, 2}, {0, 2}});
  core::Runtime Rt(testConfig());
  TriangleCountKernel Kernel;
  Kernel.setup(Rt, G);
  Kernel.runIteration();
  EXPECT_EQ(Kernel.triangles(), 1u);
}

TEST(TriangleCountTest, MatchesReferenceOnRandomGraph) {
  CsrGraph G = randomGraph(800, 21);
  core::Runtime Rt(testConfig());
  TriangleCountKernel Kernel;
  Kernel.setup(Rt, G);
  Kernel.runIteration();
  EXPECT_EQ(Kernel.triangles(), referenceTriangles(G));
}

TEST(TriangleCountTest, IterationsIdempotent) {
  CsrGraph G = randomGraph(500, 5);
  core::Runtime Rt(testConfig());
  TriangleCountKernel Kernel;
  Kernel.setup(Rt, G);
  Kernel.runIteration();
  uint64_t First = Kernel.triangles();
  Kernel.runIteration();
  EXPECT_EQ(Kernel.triangles(), First);
}

//===----------------------------------------------------------------------===//
// k-core
//===----------------------------------------------------------------------===//

TEST(KCoreTest, CompleteGraphCoreness) {
  // K5: every vertex has coreness 4.
  std::vector<Edge> Edges;
  for (VertexId U = 0; U < 5; ++U)
    for (VertexId V = U + 1; V < 5; ++V)
      Edges.push_back({U, V});
  CsrGraph G = buildCsr(5, Edges);
  core::Runtime Rt(testConfig());
  KCoreKernel Kernel;
  Kernel.setup(Rt, G);
  while (!Kernel.converged())
    Kernel.runIteration();
  for (uint32_t V = 0; V < 5; ++V)
    EXPECT_EQ(Kernel.coreness().raw()[V], 4u) << V;
}

TEST(KCoreTest, ChainHasCorenessOne) {
  CsrGraph G = buildCsr(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  core::Runtime Rt(testConfig());
  KCoreKernel Kernel;
  Kernel.setup(Rt, G);
  while (!Kernel.converged())
    Kernel.runIteration();
  for (uint32_t V = 0; V < 5; ++V)
    EXPECT_EQ(Kernel.coreness().raw()[V], 1u) << V;
}

TEST(KCoreTest, TriangleWithTailMixedCoreness) {
  // Triangle {0,1,2} (coreness 2) with a pendant 3 (coreness 1).
  CsrGraph G = buildCsr(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}});
  core::Runtime Rt(testConfig());
  KCoreKernel Kernel;
  Kernel.setup(Rt, G);
  while (!Kernel.converged())
    Kernel.runIteration();
  EXPECT_EQ(Kernel.coreness().raw()[0], 2u);
  EXPECT_EQ(Kernel.coreness().raw()[1], 2u);
  EXPECT_EQ(Kernel.coreness().raw()[2], 2u);
  EXPECT_EQ(Kernel.coreness().raw()[3], 1u);
}

TEST(KCoreTest, MatchesReferenceOnRandomGraph) {
  CsrGraph G = randomGraph(1000, 31);
  core::Runtime Rt(testConfig());
  KCoreKernel Kernel;
  Kernel.setup(Rt, G);
  for (int I = 0; I < 100000 && !Kernel.converged(); ++I)
    Kernel.runIteration();
  ASSERT_TRUE(Kernel.converged());
  std::vector<uint32_t> Expected = referenceKCore(G);
  for (uint32_t V = 0; V < G.numVertices(); ++V)
    ASSERT_EQ(Kernel.coreness().raw()[V], Expected[V]) << V;
}

TEST(KCoreTest, EmptyGraphConvergesImmediately) {
  CsrGraph G = buildCsr(0, {});
  core::Runtime Rt(testConfig());
  KCoreKernel Kernel;
  Kernel.setup(Rt, G);
  EXPECT_TRUE(Kernel.converged());
}

//===----------------------------------------------------------------------===//
// Factory integration
//===----------------------------------------------------------------------===//

TEST(ExtraKernelFactoryTest, NamesRegistered) {
  EXPECT_TRUE(isKnownKernel("tc"));
  EXPECT_TRUE(isKnownKernel("kcore"));
  EXPECT_EQ(makeKernel("tc")->name(), "tc");
  EXPECT_EQ(makeKernel("kcore")->name(), "kcore");
  // The paper's evaluation matrix stays the original five.
  EXPECT_EQ(kernelNames().size(), 5u);
}

TEST(ExtraKernelFactoryTest, RunUnderAtmemPipeline) {
  CsrGraph G = randomGraph(2000, 41);
  for (const char *Name : {"tc", "kcore"}) {
    core::Runtime Rt(testConfig());
    auto Kernel = makeKernel(Name);
    Kernel->setup(Rt, G);
    Rt.profilingStart();
    Rt.beginIteration();
    Kernel->runIteration();
    Rt.endIteration();
    Rt.profilingStop();
    Rt.optimize();
    EXPECT_GT(Rt.fastDataRatio(), 0.0) << Name;
    Rt.beginIteration();
    Kernel->runIteration();
    EXPECT_GT(Rt.endIteration(), 0.0) << Name;
  }
}

} // namespace
