//===----------------------------------------------------------------------===//
// Fault-matrix tests for the deterministic fault-injection framework and
// the graceful-degradation migration pipeline: every registered site is
// exercised under each trigger mode, failures must surface as typed error
// results (never aborts), the cross-layer memory invariants must hold
// after every injected failure, and the next unfaulted attempt must
// recover.
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "fault/FaultInjection.h"
#include "mem/AtmemMigrator.h"
#include "mem/MbindMigrator.h"
#include "mem/MemoryInvariants.h"
#include "obs/Json.h"
#include "sim/Machine.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

using namespace atmem;
using namespace atmem::mem;
using namespace atmem::sim;

namespace {

/// Every test starts and ends with nothing armed; a leaked armed site
/// would silently poison later tests in the binary.
class FaultTest : public ::testing::Test {
protected:
  void SetUp() override { fault::FaultRegistry::instance().disarmAll(); }
  void TearDown() override { fault::FaultRegistry::instance().disarmAll(); }
};

void expectInvariants(const DataObjectRegistry &Registry,
                      InvariantLevel Level = InvariantLevel::Full) {
  std::string Why;
  EXPECT_TRUE(checkMemoryInvariants(Registry, Level, &Why)) << Why;
}

//===----------------------------------------------------------------------===//
// Registry and trigger-mode semantics (a synthetic site, no subsystem).
//===----------------------------------------------------------------------===//

TEST_F(FaultTest, DisarmedSiteNeverFiresAndCostsNothing) {
  fault::Site S("test.disarmed");
  EXPECT_FALSE(fault::anyArmed());
  for (int I = 0; I < 100; ++I)
    EXPECT_FALSE(S.shouldFail());
  // Hits are only recorded while something is armed.
  EXPECT_EQ(fault::FaultRegistry::instance().hits("test.disarmed"), 0u);
}

TEST_F(FaultTest, NthTriggerFiresExactlyOnce) {
  fault::Site S("test.nth");
  fault::FaultPlan Plan;
  Plan.Mode = fault::Trigger::Nth;
  Plan.N = 3;
  fault::FaultRegistry::instance().arm("test.nth", Plan);
  EXPECT_TRUE(fault::anyArmed());
  std::vector<bool> Fired;
  for (int I = 0; I < 6; ++I)
    Fired.push_back(S.shouldFail());
  EXPECT_EQ(Fired, (std::vector<bool>{false, false, true, false, false,
                                      false}));
  EXPECT_EQ(fault::FaultRegistry::instance().hits("test.nth"), 6u);
  EXPECT_EQ(fault::FaultRegistry::instance().fires("test.nth"), 1u);
}

TEST_F(FaultTest, EveryKthTriggerFiresPeriodically) {
  fault::Site S("test.every");
  fault::FaultPlan Plan;
  Plan.Mode = fault::Trigger::EveryKth;
  Plan.N = 2;
  fault::FaultRegistry::instance().arm("test.every", Plan);
  std::vector<bool> Fired;
  for (int I = 0; I < 6; ++I)
    Fired.push_back(S.shouldFail());
  EXPECT_EQ(Fired,
            (std::vector<bool>{false, true, false, true, false, true}));
  EXPECT_EQ(fault::FaultRegistry::instance().fires("test.every"), 3u);
}

TEST_F(FaultTest, ProbabilityTriggerIsDeterministicPerSeed) {
  fault::Site S("test.prob");
  fault::FaultPlan Plan;
  Plan.Mode = fault::Trigger::Probability;
  Plan.P = 0.5;
  Plan.Seed = 42;
  auto Draw = [&] {
    fault::FaultRegistry::instance().arm("test.prob", Plan);
    std::vector<bool> Fired;
    for (int I = 0; I < 64; ++I)
      Fired.push_back(S.shouldFail());
    return Fired;
  };
  std::vector<bool> First = Draw();
  std::vector<bool> Second = Draw();
  // Re-arming reseeds the per-site stream: the schedule replays exactly.
  EXPECT_EQ(First, Second);
  uint64_t Fires = fault::FaultRegistry::instance().fires("test.prob");
  EXPECT_GT(Fires, 16u);
  EXPECT_LT(Fires, 48u);

  // A different seed produces a different schedule.
  Plan.Seed = 43;
  fault::FaultRegistry::instance().arm("test.prob", Plan);
  std::vector<bool> Other;
  for (int I = 0; I < 64; ++I)
    Other.push_back(S.shouldFail());
  EXPECT_NE(First, Other);
}

TEST_F(FaultTest, ProbabilityExtremesNeverAndAlways) {
  fault::Site S("test.extreme");
  fault::FaultPlan Plan;
  Plan.Mode = fault::Trigger::Probability;
  Plan.P = 0.0;
  fault::FaultRegistry::instance().arm("test.extreme", Plan);
  for (int I = 0; I < 32; ++I)
    EXPECT_FALSE(S.shouldFail());
  Plan.P = 1.0;
  fault::FaultRegistry::instance().arm("test.extreme", Plan);
  for (int I = 0; I < 32; ++I)
    EXPECT_TRUE(S.shouldFail());
}

TEST_F(FaultTest, DisarmStopsFiringAndClearsGlobalFlag) {
  fault::Site S("test.disarm");
  fault::FaultPlan Plan;
  Plan.Mode = fault::Trigger::EveryKth;
  Plan.N = 1;
  fault::FaultRegistry::instance().arm("test.disarm", Plan);
  EXPECT_TRUE(S.shouldFail());
  fault::FaultRegistry::instance().disarm("test.disarm");
  EXPECT_FALSE(fault::anyArmed());
  EXPECT_FALSE(S.shouldFail());
}

//===----------------------------------------------------------------------===//
// --fault-spec parsing.
//===----------------------------------------------------------------------===//

TEST_F(FaultTest, SpecParserArmsEveryEntry) {
  ASSERT_TRUE(fault::armFromSpec(
      "test.a=nth:2,test.b=every:3,test.c=prob:0.25:7"));
  EXPECT_TRUE(fault::anyArmed());
  fault::Site A("test.a");
  EXPECT_FALSE(A.shouldFail());
  EXPECT_TRUE(A.shouldFail()); // nth:2
  fault::Site B("test.b");
  EXPECT_FALSE(B.shouldFail());
  EXPECT_FALSE(B.shouldFail());
  EXPECT_TRUE(B.shouldFail()); // every:3
}

TEST_F(FaultTest, SpecParserRejectsMalformedWithoutArming) {
  const char *Bad[] = {
      "no-equals",          "site=",          "site=bogus:1",
      "site=nth:",          "site=nth:x",     "site=nth:0",
      "site=every:0",       "site=prob:",     "site=prob:1.5",
      "site=prob:-0.1",     "site=prob:0.5:x", ",",
      "site=nth:99999999999999999999", "=nth:1",
  };
  for (const char *Spec : Bad) {
    std::string Error;
    EXPECT_FALSE(fault::armFromSpec(Spec, &Error)) << Spec;
    EXPECT_FALSE(Error.empty()) << Spec;
    // Parse-all-before-arm: a malformed spec must not leave the process
    // half-armed.
    EXPECT_FALSE(fault::anyArmed()) << Spec;
  }
}

TEST_F(FaultTest, SpecParserMixedGoodBadArmsNothing) {
  std::string Error;
  EXPECT_FALSE(fault::armFromSpec("test.ok=nth:1,test.bad=nope", &Error));
  EXPECT_FALSE(fault::anyArmed());
  fault::Site Ok("test.ok");
  EXPECT_FALSE(Ok.shouldFail());
}

TEST_F(FaultTest, EnvironmentUnsetIsSuccess) {
  // The driver environment never exports ATMEM_FAULT_SPEC; unset must be
  // a silent no-op success.
  EXPECT_TRUE(fault::armFromEnvironment());
  EXPECT_FALSE(fault::anyArmed());
}

TEST_F(FaultTest, RegisteredSitesListsCatalogue) {
  fault::Site S("test.catalogue");
  std::vector<std::string> Sites =
      fault::FaultRegistry::instance().registeredSites();
  bool Found = false;
  for (const std::string &Name : Sites)
    Found |= Name == "test.catalogue";
  EXPECT_TRUE(Found);
}

//===----------------------------------------------------------------------===//
// Fault matrix: the real sites, one subsystem each. Each case checks the
// typed status, the cross-layer invariants after the failure, and that an
// unfaulted retry recovers.
//===----------------------------------------------------------------------===//

class MigratorFaultTest : public FaultTest {
protected:
  MigratorFaultTest()
      : M(nvmDramTestbed(1.0 / 1024)), Registry(M), Pool(2),
        Atmem(Registry, Pool), Mbind(Registry) {}

  DataObject &makeObject(const char *Name, uint64_t Size,
                         uint64_t ChunkBytes) {
    DataObject &Obj =
        Registry.create(Name, Size, InitialPlacement::Slow, ChunkBytes);
    for (uint64_t I = 0; I < Obj.mappedBytes(); ++I)
      Obj.data()[I] = static_cast<std::byte>((I * 131 + 7) & 0xFF);
    return Obj;
  }

  static bool patternIntact(const DataObject &Obj) {
    for (uint64_t I = 0; I < Obj.mappedBytes(); ++I)
      if (Obj.data()[I] != static_cast<std::byte>((I * 131 + 7) & 0xFF))
        return false;
    return true;
  }

  static void armOnce(const char *SiteName, uint64_t N = 1) {
    fault::FaultPlan Plan;
    Plan.Mode = fault::Trigger::Nth;
    Plan.N = N;
    fault::FaultRegistry::instance().arm(SiteName, Plan);
  }

  Machine M;
  DataObjectRegistry Registry;
  ThreadPool Pool;
  AtmemMigrator Atmem;
  MbindMigrator Mbind;
};

TEST_F(MigratorFaultTest, StagingAllocFaultRollsBackAndRecovers) {
  DataObject &Obj = makeObject("obj", 8 << 20, 1 << 20);
  uint64_t FastUsedBefore = M.allocator(TierId::Fast).usedBytes();
  armOnce("migrator.staging_alloc");

  MigrationResult Result;
  EXPECT_EQ(Atmem.migrate(Obj, {{0, 4}}, TierId::Fast, Result),
            MigrationStatus::Retryable);
  // Rolled back: nothing moved, no staging frames leaked, data intact.
  EXPECT_EQ(Result.BytesMoved, 0u);
  EXPECT_EQ(M.allocator(TierId::Fast).usedBytes(), FastUsedBefore);
  EXPECT_EQ(Obj.bytesOn(TierId::Fast), 0u);
  EXPECT_TRUE(patternIntact(Obj));
  fault::FaultRegistry::instance().disarmAll();
  expectInvariants(Registry);

  // The unfaulted retry succeeds from the rolled-back state.
  EXPECT_EQ(Atmem.migrate(Obj, {{0, 4}}, TierId::Fast, Result),
            MigrationStatus::Success);
  EXPECT_EQ(Result.BytesMoved, 4u << 20);
  EXPECT_TRUE(patternIntact(Obj));
  expectInvariants(Registry);
}

TEST_F(MigratorFaultTest, RemapFaultUnmapsStagingAndRecovers) {
  DataObject &Obj = makeObject("obj", 8 << 20, 1 << 20);
  uint64_t FastUsedBefore = M.allocator(TierId::Fast).usedBytes();
  armOnce("migrator.remap");

  MigrationResult Result;
  EXPECT_EQ(Atmem.migrate(Obj, {{0, 4}}, TierId::Fast, Result),
            MigrationStatus::Retryable);
  // The staging buffer was mapped in stage (a); the failed remap must
  // unmap it, restoring the fast tier exactly.
  EXPECT_EQ(M.allocator(TierId::Fast).usedBytes(), FastUsedBefore);
  EXPECT_EQ(Obj.bytesOn(TierId::Fast), 0u);
  EXPECT_TRUE(patternIntact(Obj));
  fault::FaultRegistry::instance().disarmAll();
  expectInvariants(Registry);

  EXPECT_EQ(Atmem.migrate(Obj, {{0, 4}}, TierId::Fast, Result),
            MigrationStatus::Success);
  EXPECT_TRUE(patternIntact(Obj));
  expectInvariants(Registry);
}

TEST_F(MigratorFaultTest, RemapFaultMidMultiRangeKeepsEarlierRanges) {
  DataObject &Obj = makeObject("obj", 8 << 20, 1 << 20);
  // Second range's remap fails; the first range stays migrated.
  armOnce("migrator.remap", 2);

  MigrationResult Result;
  EXPECT_EQ(Atmem.migrate(Obj, {{0, 2}, {4, 2}}, TierId::Fast, Result),
            MigrationStatus::Retryable);
  EXPECT_EQ(Obj.chunkTier(0), TierId::Fast);
  EXPECT_EQ(Obj.chunkTier(1), TierId::Fast);
  EXPECT_EQ(Obj.chunkTier(4), TierId::Slow);
  EXPECT_TRUE(patternIntact(Obj));
  fault::FaultRegistry::instance().disarmAll();
  expectInvariants(Registry);

  // Retrying only the leftover completes the move.
  EXPECT_EQ(Atmem.migrate(Obj, {{4, 2}}, TierId::Fast, Result),
            MigrationStatus::Success);
  EXPECT_EQ(Obj.chunkTier(4), TierId::Fast);
  expectInvariants(Registry);
}

TEST_F(MigratorFaultTest, MovePageFaultDegradesMbindWithPartialProgress) {
  DataObject &Obj = makeObject("obj", 4 << 20, 1 << 20);
  // Fail one page in the middle: a prefix has moved, so the result is
  // Degraded (partial progress), not Failed.
  armOnce("mbind.move_page", 3);

  MigrationResult Result;
  EXPECT_EQ(Mbind.migrate(Obj, {{0, 4}}, TierId::Fast, Result),
            MigrationStatus::Degraded);
  EXPECT_GT(Result.BytesMoved, 0u);
  EXPECT_LT(Result.BytesMoved, 4u << 20);
  EXPECT_TRUE(patternIntact(Obj));
  fault::FaultRegistry::instance().disarmAll();
  // A partial mbind leaves mixed chunks, so only the frame-exactness
  // level is meaningful here.
  expectInvariants(Registry, InvariantLevel::Frames);

  // Unfaulted retry of the whole request completes it.
  EXPECT_EQ(Mbind.migrate(Obj, {{0, 4}}, TierId::Fast, Result),
            MigrationStatus::Success);
  EXPECT_TRUE(patternIntact(Obj));
  expectInvariants(Registry);
}

TEST_F(MigratorFaultTest, MovePageFaultOnFirstPageIsFailed) {
  DataObject &Obj = makeObject("obj", 4 << 20, 1 << 20);
  fault::FaultPlan Plan;
  Plan.Mode = fault::Trigger::EveryKth;
  Plan.N = 1; // Every page move fails: zero progress possible.
  fault::FaultRegistry::instance().arm("mbind.move_page", Plan);

  MigrationResult Result;
  EXPECT_EQ(Mbind.migrate(Obj, {{0, 4}}, TierId::Fast, Result),
            MigrationStatus::Failed);
  EXPECT_EQ(Result.BytesMoved, 0u);
  EXPECT_TRUE(patternIntact(Obj));
  fault::FaultRegistry::instance().disarmAll();
  expectInvariants(Registry);
}

TEST_F(MigratorFaultTest, AddrspaceAllocFaultFailsTryCreateCleanly) {
  armOnce("addrspace.alloc");
  uint64_t SlowUsedBefore = M.allocator(TierId::Slow).usedBytes();

  EXPECT_EQ(Registry.tryCreate("victim", 4 << 20, InitialPlacement::Slow),
            nullptr);
  // Nothing registered, nothing mapped.
  EXPECT_TRUE(Registry.liveObjects().empty());
  EXPECT_EQ(M.allocator(TierId::Slow).usedBytes(), SlowUsedBefore);
  fault::FaultRegistry::instance().disarmAll();
  expectInvariants(Registry);

  // The next attempt succeeds.
  DataObject *Obj =
      Registry.tryCreate("victim", 4 << 20, InitialPlacement::Slow);
  ASSERT_NE(Obj, nullptr);
  EXPECT_EQ(Obj->mappedBytes(), 4u << 20);
  expectInvariants(Registry);
}

TEST_F(MigratorFaultTest, LookaheadStagingAllocFaultIsRetryableAndClean) {
  DataObject &Obj = makeObject("obj", 8 << 20, 1 << 20);
  uint64_t FastUsedBefore = M.allocator(TierId::Fast).usedBytes();
  armOnce("lookahead.staging_alloc");

  std::vector<StagedAheadRange> Out;
  EXPECT_EQ(Atmem.stageAhead(Obj, {{0, 2}}, TierId::Fast, Out),
            MigrationStatus::Retryable);
  // Nothing staged, no fast-tier frames leaked, placement untouched.
  EXPECT_TRUE(Out.empty());
  EXPECT_EQ(M.allocator(TierId::Fast).usedBytes(), FastUsedBefore);
  EXPECT_EQ(Obj.bytesOn(TierId::Fast), 0u);
  EXPECT_TRUE(patternIntact(Obj));
  fault::FaultRegistry::instance().disarmAll();
  expectInvariants(Registry);

  // The unfaulted retry stages, and the cancel path hands every staging
  // frame back — a cancelled prefetch is a placement no-op end to end.
  ASSERT_EQ(Atmem.stageAhead(Obj, {{0, 2}}, TierId::Fast, Out),
            MigrationStatus::Success);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_GT(M.allocator(TierId::Fast).usedBytes(), FastUsedBefore);
  Atmem.cancelStagedAhead(Obj, Out[0], TierId::Fast);
  EXPECT_EQ(M.allocator(TierId::Fast).usedBytes(), FastUsedBefore);
  EXPECT_EQ(Obj.bytesOn(TierId::Fast), 0u);
  EXPECT_TRUE(patternIntact(Obj));
  expectInvariants(Registry);
}

TEST_F(MigratorFaultTest, LookaheadCopyFaultBlocksCommitUntilRetried) {
  DataObject &Obj = makeObject("obj", 8 << 20, 1 << 20);
  std::vector<StagedAheadRange> Out;
  ASSERT_EQ(Atmem.stageAhead(Obj, {{0, 2}}, TierId::Fast, Out),
            MigrationStatus::Success);
  ASSERT_EQ(Out.size(), 1u);

  armOnce("lookahead.copy");
  EXPECT_FALSE(Atmem.copyStagedAhead(Out[0], TierId::Fast));
  // The failed overlap copy leaves the range uncommittable (CopyDone
  // false is what the runtime's boundary resolution keys on) but fully
  // staged: the unfaulted retry completes it.
  EXPECT_FALSE(Out[0].CopyDone);
  EXPECT_TRUE(patternIntact(Obj));
  fault::FaultRegistry::instance().disarmAll();

  EXPECT_TRUE(Atmem.copyStagedAhead(Out[0], TierId::Fast));
  EXPECT_TRUE(Out[0].CopyDone);
  MigrationResult Result;
  EXPECT_EQ(Atmem.commitStagedAhead(Obj, Out[0], TierId::Fast, Result),
            MigrationStatus::Success);
  EXPECT_EQ(Obj.chunkTier(0), TierId::Fast);
  EXPECT_EQ(Obj.chunkTier(1), TierId::Fast);
  EXPECT_TRUE(patternIntact(Obj));
  expectInvariants(Registry);
}

TEST_F(MigratorFaultTest, StagedAheadCommitRemapFaultCancelsPrefetch) {
  DataObject &Obj = makeObject("obj", 8 << 20, 1 << 20);
  uint64_t FastUsedBefore = M.allocator(TierId::Fast).usedBytes();
  std::vector<StagedAheadRange> Out;
  ASSERT_EQ(Atmem.stageAhead(Obj, {{0, 2}}, TierId::Fast, Out),
            MigrationStatus::Success);
  ASSERT_EQ(Out.size(), 1u);
  ASSERT_TRUE(Atmem.copyStagedAhead(Out[0], TierId::Fast));

  armOnce("migrator.remap");
  MigrationResult Result;
  EXPECT_EQ(Atmem.commitStagedAhead(Obj, Out[0], TierId::Fast, Result),
            MigrationStatus::Retryable);
  // The failed commit released the staging buffer and left the source
  // mapping untouched — the prefetch evaporated, placement is exactly the
  // no-lookahead state.
  EXPECT_EQ(Result.BytesMoved, 0u);
  EXPECT_EQ(M.allocator(TierId::Fast).usedBytes(), FastUsedBefore);
  EXPECT_EQ(Obj.bytesOn(TierId::Fast), 0u);
  EXPECT_TRUE(patternIntact(Obj));
  fault::FaultRegistry::instance().disarmAll();
  expectInvariants(Registry);
}

TEST_F(FaultTest, ThreadPoolSpawnFaultDegradesToInlineExecution) {
  fault::FaultPlan Plan;
  Plan.Mode = fault::Trigger::EveryKth;
  Plan.N = 1; // Every spawn fails.
  fault::FaultRegistry::instance().arm("threadpool.spawn", Plan);
  ThreadPool Pool(4);
  fault::FaultRegistry::instance().disarmAll();
  EXPECT_EQ(Pool.threadCount(), 0u);

  // parallelFor still runs the whole range, inline.
  std::atomic<uint64_t> Sum{0};
  Pool.parallelFor(0, 1000, [&](uint64_t Begin, uint64_t End) {
    for (uint64_t I = Begin; I < End; ++I)
      Sum.fetch_add(I, std::memory_order_relaxed);
  });
  EXPECT_EQ(Sum.load(), 1000u * 999u / 2);
}

TEST_F(FaultTest, ThreadPoolPartialSpawnStillWorks) {
  fault::FaultPlan Plan;
  Plan.Mode = fault::Trigger::Nth;
  Plan.N = 2; // The second spawn fails; the rest come up.
  fault::FaultRegistry::instance().arm("threadpool.spawn", Plan);
  ThreadPool Pool(4);
  fault::FaultRegistry::instance().disarmAll();
  EXPECT_EQ(Pool.threadCount(), 3u);

  std::atomic<uint64_t> Sum{0};
  Pool.parallelFor(0, 1000, [&](uint64_t Begin, uint64_t End) {
    for (uint64_t I = Begin; I < End; ++I)
      Sum.fetch_add(I, std::memory_order_relaxed);
  });
  EXPECT_EQ(Sum.load(), 1000u * 999u / 2);
}

TEST_F(FaultTest, IoReadFaultSurfacesAsParseError) {
  std::string Path = ::testing::TempDir() + "fault_io_read.json";
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  ASSERT_NE(Out, nullptr);
  std::fputs("{\"answer\": 42}", Out);
  std::fclose(Out);

  fault::FaultPlan Plan;
  Plan.Mode = fault::Trigger::Nth;
  Plan.N = 1;
  fault::FaultRegistry::instance().arm("io.read", Plan);
  obs::JsonValue Doc;
  std::string Error;
  EXPECT_FALSE(obs::parseJsonFile(Path, Doc, &Error));
  EXPECT_NE(Error.find("read error"), std::string::npos) << Error;
  fault::FaultRegistry::instance().disarmAll();

  // Unfaulted read succeeds.
  ASSERT_TRUE(obs::parseJsonFile(Path, Doc, &Error)) << Error;
  const obs::JsonValue *Answer = Doc.findNumber("answer");
  ASSERT_NE(Answer, nullptr);
  EXPECT_EQ(Answer->NumberVal, 42.0);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Runtime-level graceful degradation: retry, skip, re-nominate.
//===----------------------------------------------------------------------===//

class RuntimeFaultTest : public FaultTest {
protected:
  static core::RuntimeConfig testConfig() {
    core::RuntimeConfig Config;
    Config.Machine = nvmDramTestbed(1.0 / 1024);
    return Config;
  }

  /// One profiled iteration hammering Hot so optimize() plans a
  /// promotion.
  template <typename ArrayT>
  static void profiledHotIteration(core::Runtime &Rt, ArrayT &Hot) {
    Rt.profilingStart();
    Rt.beginIteration();
    uint64_t State = 12345;
    for (int I = 0; I < 200000; ++I) {
      State = State * 6364136223846793005ull + 1442695040888963407ull;
      Hot[(State >> 33) & (Hot.size() - 1)] += 1;
    }
    Rt.endIteration();
    Rt.profilingStop();
  }
};

TEST_F(RuntimeFaultTest, TransientFaultRecoveredByRetry) {
  core::Runtime Rt(testConfig());
  auto Hot = Rt.allocate<uint64_t>("hot", 1 << 17);
  profiledHotIteration(Rt, Hot);

  // One transient remap failure: the bounded retry must absorb it.
  fault::FaultPlan Plan;
  Plan.Mode = fault::Trigger::Nth;
  Plan.N = 1;
  fault::FaultRegistry::instance().arm("migrator.remap", Plan);
  MigrationResult Result = Rt.optimize();
  fault::FaultRegistry::instance().disarmAll();

  EXPECT_GT(Result.BytesMoved, 0u);
  EXPECT_TRUE(Rt.skippedChunks().empty());
  expectInvariants(Rt.registry());
}

TEST_F(RuntimeFaultTest, PersistentFaultSkipsThenRenominates) {
  core::RuntimeConfig Config = testConfig();
  Config.MigrationMaxRetries = 1;
  core::Runtime Rt(Config);
  auto Hot = Rt.allocate<uint64_t>("hot", 1 << 17);
  profiledHotIteration(Rt, Hot);

  // Every staging allocation fails: retries exhaust and the planned
  // chunks land in the skipped set instead of aborting the process.
  fault::FaultPlan Plan;
  Plan.Mode = fault::Trigger::EveryKth;
  Plan.N = 1;
  fault::FaultRegistry::instance().arm("migrator.staging_alloc", Plan);
  MigrationResult Faulted = Rt.optimize();
  fault::FaultRegistry::instance().disarmAll();

  EXPECT_EQ(Faulted.BytesMoved, 0u);
  ASSERT_FALSE(Rt.skippedChunks().empty());
  for (const core::SkippedChunk &Skip : Rt.skippedChunks())
    EXPECT_EQ(Skip.Target, TierId::Fast);
  expectInvariants(Rt.registry());

  // The next epoch re-nominates the skipped chunks and, unfaulted,
  // places them.
  MigrationResult Recovered = Rt.optimize();
  EXPECT_GT(Recovered.BytesMoved, 0u);
  EXPECT_TRUE(Rt.skippedChunks().empty());
  EXPECT_GT(Rt.registry().object(Hot.objectId()).bytesOn(TierId::Fast), 0u);
  expectInvariants(Rt.registry());
}

TEST_F(RuntimeFaultTest, TopologyProbeFaultDegradesToSingleNode) {
  // An injected topology-probe failure must yield the single-node layout
  // (the pre-topology behaviour), count the fire, and leave placement
  // results identical to an unfaulted runtime.
  fault::FaultPlan Plan;
  Plan.Mode = fault::Trigger::EveryKth;
  Plan.N = 1;
  fault::FaultRegistry::instance().arm("drain.topology_probe", Plan);
  core::RuntimeConfig Config = testConfig();
  Config.SimThreads = 2;
  core::Runtime Faulted(Config);
  fault::FaultRegistry::instance().disarmAll();

  EXPECT_GE(
      fault::FaultRegistry::instance().fires("drain.topology_probe"), 1u);
  EXPECT_EQ(Faulted.topology().numNodes(), 1u);
  EXPECT_FALSE(Faulted.topology().multiNode());
  EXPECT_GE(Faulted.hostThreads(), 1u);
  // Every shard homes on the lone node.
  for (uint32_t T = 0; T < Faulted.simThreads(); ++T)
    EXPECT_EQ(Faulted.simContext(T).homeNode(), 0u);

  // Topology is a locality hint, never a correctness input: a faulted
  // runtime and an unfaulted one place the same workload identically.
  core::Runtime Clean(Config);
  auto HotF = Faulted.allocate<uint64_t>("hot", 1 << 17);
  auto HotC = Clean.allocate<uint64_t>("hot", 1 << 17);
  profiledHotIteration(Faulted, HotF);
  profiledHotIteration(Clean, HotC);
  MigrationResult RF = Faulted.optimize();
  MigrationResult RC = Clean.optimize();
  EXPECT_EQ(RF.BytesMoved, RC.BytesMoved);
  EXPECT_EQ(
      Faulted.registry().object(HotF.objectId()).bytesOn(TierId::Fast),
      Clean.registry().object(HotC.objectId()).bytesOn(TierId::Fast));
  expectInvariants(Faulted.registry());
}

TEST_F(RuntimeFaultTest, UnfaultedOptimizeUnaffectedByFrameworkPresence) {
  // The whole pipeline with nothing armed: byte-identical behaviour is
  // asserted end-to-end by the fig05 gate; here we sanity-check the fast
  // path still migrates and leaves no skips.
  core::Runtime Rt(testConfig());
  auto Hot = Rt.allocate<uint64_t>("hot", 1 << 17);
  profiledHotIteration(Rt, Hot);
  MigrationResult Result = Rt.optimize();
  EXPECT_GT(Result.BytesMoved, 0u);
  EXPECT_TRUE(Rt.skippedChunks().empty());
  expectInvariants(Rt.registry());
}

} // namespace
