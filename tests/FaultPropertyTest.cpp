//===----------------------------------------------------------------------===//
// Property tests under randomized fault schedules: whatever mix of
// injected failures a migration sequence hits, the cross-layer accounting
// must stay exact — per-tier FrameAllocator bytes equal the bytes of live
// DataObjects on that tier, no frame is leaked, none is double-freed, and
// destroying everything returns both allocators to empty. Every trial's
// seed is logged so a failure replays deterministically.
//===----------------------------------------------------------------------===//

#include "fault/FaultInjection.h"
#include "mem/AtmemMigrator.h"
#include "mem/MbindMigrator.h"
#include "mem/MemoryInvariants.h"
#include "sim/Machine.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

#include <iterator>
#include <string>
#include <vector>

using namespace atmem;
using namespace atmem::mem;
using namespace atmem::sim;

namespace {

class FaultPropertyTest : public ::testing::Test {
protected:
  void SetUp() override { fault::FaultRegistry::instance().disarmAll(); }
  void TearDown() override { fault::FaultRegistry::instance().disarmAll(); }

  static void armProbability(const char *SiteName, double P,
                             uint64_t Seed) {
    fault::FaultPlan Plan;
    Plan.Mode = fault::Trigger::Probability;
    Plan.P = P;
    Plan.Seed = Seed;
    fault::FaultRegistry::instance().arm(SiteName, Plan);
  }

  /// Asserts the full accounting identity for a quiescent system:
  /// invariant checker at \p Level, plus the explicit per-tier equation
  /// sum(live object bytesOn(T)) == allocator(T).usedBytes().
  static void expectAccountingExact(const DataObjectRegistry &Registry,
                                    InvariantLevel Level) {
    std::string Why;
    EXPECT_TRUE(checkMemoryInvariants(Registry, Level, &Why)) << Why;
    if (Level != InvariantLevel::Full)
      return;
    const Machine &M = Registry.machine();
    for (TierId Tier : {TierId::Fast, TierId::Slow}) {
      uint64_t ObjectBytes = 0;
      for (const DataObject *Obj : Registry.liveObjects())
        ObjectBytes += Obj->bytesOn(Tier);
      EXPECT_EQ(ObjectBytes, M.allocator(Tier).usedBytes())
          << "tier " << (Tier == TierId::Fast ? "fast" : "slow");
    }
  }

  /// A maximal run of chunks of \p Obj starting at a random chunk that
  /// all sit on one tier (migrators move ranges with a single source).
  static ChunkRange randomUniformRange(Xoshiro256 &Rng,
                                       const DataObject &Obj,
                                       TierId &SourceOut) {
    uint32_t First =
        static_cast<uint32_t>(Rng.nextBounded(Obj.numChunks()));
    SourceOut = Obj.chunkTier(First);
    uint32_t End = First + 1;
    uint32_t MaxLen = 1 + static_cast<uint32_t>(Rng.nextBounded(8));
    while (End < Obj.numChunks() && End - First < MaxLen &&
           Obj.chunkTier(End) == SourceOut)
      ++End;
    return {First, End - First};
  }
};

TEST_F(FaultPropertyTest, AtmemSchedulesPreserveAccounting) {
  for (uint64_t Trial = 0; Trial < 6; ++Trial) {
    uint64_t Seed = 0xA73 + Trial * 7919;
    SCOPED_TRACE("trial seed " + std::to_string(Seed));
    Xoshiro256 Rng(Seed);

    // Worker spawns may also fail; the pool degrades, never the test.
    armProbability("threadpool.spawn", 0.3, Seed + 1);
    Machine M(nvmDramTestbed(1.0 / 1024));
    DataObjectRegistry Registry(M);
    ThreadPool Pool(2);
    AtmemMigrator Atmem(Registry, Pool);
    fault::FaultRegistry::instance().disarmAll();

    armProbability("migrator.staging_alloc", 0.25, Seed + 2);
    armProbability("migrator.remap", 0.25, Seed + 3);
    armProbability("addrspace.alloc", 0.2, Seed + 4);

    std::vector<DataObject *> Objects;
    auto CreateOne = [&](uint64_t Index) {
      uint64_t Chunks = 4 + Rng.nextBounded(5);
      DataObject *Obj = Registry.tryCreate(
          "obj" + std::to_string(Index), Chunks << 20,
          InitialPlacement::Slow, 1 << 20);
      if (Obj)
        Objects.push_back(Obj);
    };
    for (uint64_t I = 0; I < 3; ++I)
      CreateOne(I);

    for (uint64_t Op = 0; Op < 24; ++Op) {
      if (Objects.empty() || Rng.nextBounded(8) == 0) {
        CreateOne(100 + Op);
        continue;
      }
      uint64_t Pick = Rng.nextBounded(Objects.size());
      if (Rng.nextBounded(10) == 0) {
        Registry.destroy(Objects[Pick]->id());
        Objects.erase(Objects.begin() + static_cast<long>(Pick));
        continue;
      }
      DataObject &Obj = *Objects[Pick];
      TierId Source;
      ChunkRange Range = randomUniformRange(Rng, Obj, Source);
      TierId Target =
          Source == TierId::Fast ? TierId::Slow : TierId::Fast;
      MigrationResult Result;
      MigrationStatus Status =
          Atmem.migrate(Obj, {Range}, Target, Result);
      // Any typed status is acceptable; aborting or corrupting state is
      // not. ATMem ranges move whole or not at all, so the system is
      // quiescent and fully consistent after every call.
      (void)Status;
    }

    fault::FaultRegistry::instance().disarmAll();
    expectAccountingExact(Registry, InvariantLevel::Full);

    // Free everything: both allocators must return to exactly empty (no
    // leaked staging frames, no double-free across the whole schedule).
    for (DataObject *Obj : Objects)
      Registry.destroy(Obj->id());
    std::string Why;
    EXPECT_TRUE(
        checkMemoryInvariants(Registry, InvariantLevel::Full, &Why))
        << Why;
    EXPECT_EQ(M.allocator(TierId::Fast).usedBytes(), 0u);
    EXPECT_EQ(M.allocator(TierId::Slow).usedBytes(), 0u);
  }
}

TEST_F(FaultPropertyTest, MixedMechanismSchedulesHealCleanly) {
  for (uint64_t Trial = 0; Trial < 4; ++Trial) {
    uint64_t Seed = 0xB61 + Trial * 104729;
    SCOPED_TRACE("trial seed " + std::to_string(Seed));
    Xoshiro256 Rng(Seed);

    Machine M(nvmDramTestbed(1.0 / 1024));
    DataObjectRegistry Registry(M);
    ThreadPool Pool(2);
    AtmemMigrator Atmem(Registry, Pool);
    MbindMigrator Mbind(Registry);

    std::vector<DataObject *> Objects;
    for (uint64_t I = 0; I < 3; ++I) {
      DataObject *Obj = Registry.tryCreate(
          "obj" + std::to_string(I), (4 + Rng.nextBounded(5)) << 20,
          InitialPlacement::Slow, 1 << 20);
      ASSERT_NE(Obj, nullptr);
      Objects.push_back(Obj);
    }

    armProbability("migrator.staging_alloc", 0.2, Seed + 1);
    armProbability("migrator.remap", 0.2, Seed + 2);
    armProbability("mbind.move_page", 0.02, Seed + 3);

    for (uint64_t Op = 0; Op < 24; ++Op) {
      DataObject &Obj = *Objects[Rng.nextBounded(Objects.size())];
      TierId Source;
      ChunkRange Range = randomUniformRange(Rng, Obj, Source);
      TierId Target =
          Source == TierId::Fast ? TierId::Slow : TierId::Fast;
      MigrationResult Result;
      if (Rng.nextBounded(2) == 0)
        (void)Atmem.migrate(Obj, {Range}, Target, Result);
      else
        (void)Mbind.migrate(Obj, {Range}, Target, Result);
      // A faulted mbind can stop mid-chunk, so only frame exactness is
      // checkable between operations.
      std::string Why;
      ASSERT_TRUE(checkMemoryInvariants(Registry,
                                        InvariantLevel::Frames, &Why))
          << Why << " after op " << Op;
    }

    // Heal: with faults disarmed, move every object wholly to the slow
    // tier (capacity there always suffices), restoring whole-chunk
    // placement. Full accounting must then hold exactly.
    fault::FaultRegistry::instance().disarmAll();
    for (DataObject *Obj : Objects) {
      MigrationResult Result;
      ASSERT_EQ(Mbind.migrate(*Obj, {{0, Obj->numChunks()}}, TierId::Slow,
                              Result),
                MigrationStatus::Success);
    }
    expectAccountingExact(Registry, InvariantLevel::Full);
    EXPECT_EQ(M.allocator(TierId::Fast).usedBytes(), 0u);

    for (DataObject *Obj : Objects)
      Registry.destroy(Obj->id());
    EXPECT_EQ(M.allocator(TierId::Slow).usedBytes(), 0u);
  }
}

TEST_F(FaultPropertyTest, RandomSpecStringsNeverCorruptRegistry) {
  // armFromSpec on arbitrary fragment soup must either cleanly arm (and
  // then cleanly disarm) or reject without arming anything.
  const char *Fragments[] = {"test.x", "=",    "nth:",  "every:", "prob:",
                             "1",      "0.5",  ",",     ":",      "x",
                             "nth:3",  "9e99", "test.y"};
  Xoshiro256 Rng(20260805);
  for (int Iter = 0; Iter < 200; ++Iter) {
    std::string Spec;
    uint64_t Parts = 1 + Rng.nextBounded(6);
    for (uint64_t P = 0; P < Parts; ++P)
      Spec += Fragments[Rng.nextBounded(std::size(Fragments))];
    std::string Error;
    if (!fault::armFromSpec(Spec, &Error)) {
      EXPECT_FALSE(fault::anyArmed()) << Spec;
      EXPECT_FALSE(Error.empty()) << Spec;
    }
    fault::FaultRegistry::instance().disarmAll();
    EXPECT_FALSE(fault::anyArmed());
  }
}

} // namespace
