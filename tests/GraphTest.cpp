//===----------------------------------------------------------------------===//
// Unit tests for the graph library: CSR building, generators, datasets,
// and edge-list IO.
//===----------------------------------------------------------------------===//

#include "graph/CsrGraph.h"
#include "graph/Datasets.h"
#include "graph/EdgeListIO.h"
#include "graph/Generators.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace atmem::graph;

namespace {

TEST(CsrGraphTest, BuildFromEdges) {
  CsrGraph G = buildCsr(4, {{0, 1}, {0, 2}, {1, 2}, {3, 0}});
  EXPECT_EQ(G.numVertices(), 4u);
  EXPECT_EQ(G.numEdges(), 4u);
  EXPECT_EQ(G.outDegree(0), 2u);
  EXPECT_EQ(G.outDegree(2), 0u);
  auto N0 = G.neighbors(0);
  ASSERT_EQ(N0.size(), 2u);
  EXPECT_EQ(N0[0], 1u);
  EXPECT_EQ(N0[1], 2u);
}

TEST(CsrGraphTest, SelfLoopsRemovedByDefault) {
  CsrGraph G = buildCsr(3, {{0, 0}, {0, 1}, {1, 1}});
  EXPECT_EQ(G.numEdges(), 1u);
}

TEST(CsrGraphTest, SelfLoopsKeptOnRequest) {
  BuildOptions Options;
  Options.RemoveSelfLoops = false;
  CsrGraph G = buildCsr(3, {{0, 0}, {0, 1}}, Options);
  EXPECT_EQ(G.numEdges(), 2u);
}

TEST(CsrGraphTest, DeduplicateEdges) {
  BuildOptions Options;
  Options.DeduplicateEdges = true;
  CsrGraph G = buildCsr(3, {{0, 1}, {0, 1}, {0, 2}, {0, 2}}, Options);
  EXPECT_EQ(G.numEdges(), 2u);
}

TEST(CsrGraphTest, SymmetrizeAddsReverseEdges) {
  BuildOptions Options;
  Options.Symmetrize = true;
  CsrGraph G = buildCsr(3, {{0, 1}}, Options);
  EXPECT_EQ(G.numEdges(), 2u);
  EXPECT_EQ(G.neighbors(1)[0], 0u);
}

TEST(CsrGraphTest, NeighborsSorted) {
  CsrGraph G = buildCsr(4, {{0, 3}, {0, 1}, {0, 2}});
  auto N = G.neighbors(0);
  EXPECT_TRUE(std::is_sorted(N.begin(), N.end()));
}

TEST(CsrGraphTest, MaxDegreeVertex) {
  CsrGraph G = buildCsr(4, {{2, 0}, {2, 1}, {2, 3}, {0, 1}});
  EXPECT_EQ(G.maxDegreeVertex(), 2u);
}

TEST(CsrGraphTest, EmptyGraph) {
  CsrGraph G = buildCsr(0, {});
  EXPECT_EQ(G.numVertices(), 0u);
  EXPECT_EQ(G.numEdges(), 0u);
  EXPECT_EQ(G.maxDegreeVertex(), 0u);
}

TEST(CsrGraphTest, TopDegreeEdgeShare) {
  // Vertex 0 owns 9 of 10 edges.
  std::vector<Edge> Edges;
  for (uint32_t I = 1; I < 10; ++I)
    Edges.push_back({0, I});
  Edges.push_back({1, 2});
  CsrGraph G = buildCsr(10, Edges);
  EXPECT_NEAR(G.topDegreeEdgeShare(0.1), 0.9, 1e-9);
  EXPECT_DOUBLE_EQ(G.topDegreeEdgeShare(1.0), 1.0);
}

TEST(CsrGraphTest, RandomWeightsDeterministicAndInRange) {
  CsrGraph G = buildCsr(4, {{0, 1}, {0, 2}, {1, 3}});
  CsrGraph W1 = withRandomWeights(G, 255, 42);
  CsrGraph W2 = withRandomWeights(G, 255, 42);
  ASSERT_TRUE(W1.hasWeights());
  EXPECT_EQ(W1.weights(), W2.weights());
  for (uint32_t W : W1.weights()) {
    EXPECT_GE(W, 1u);
    EXPECT_LE(W, 255u);
  }
}

TEST(RmatGeneratorTest, DeterministicForSeed) {
  RmatParams Params;
  Params.Scale = 10;
  Params.EdgeFactor = 8;
  CsrGraph A = generateRmat(Params);
  CsrGraph B = generateRmat(Params);
  EXPECT_EQ(A.cols(), B.cols());
  EXPECT_EQ(A.rowOffsets(), B.rowOffsets());
}

TEST(RmatGeneratorTest, SizeMatchesParameters) {
  RmatParams Params;
  Params.Scale = 10;
  Params.EdgeFactor = 8;
  CsrGraph G = generateRmat(Params);
  EXPECT_EQ(G.numVertices(), 1024u);
  // Self loops removed, so slightly under V * EdgeFactor.
  EXPECT_LE(G.numEdges(), 8192u);
  EXPECT_GT(G.numEdges(), 7000u);
}

TEST(RmatGeneratorTest, ProducesSkewedDegrees) {
  RmatParams Params;
  Params.Scale = 12;
  Params.EdgeFactor = 16;
  CsrGraph G = generateRmat(Params);
  // Graph500 parameters concentrate edges heavily.
  EXPECT_GT(G.topDegreeEdgeShare(0.01), 0.1);
}

TEST(PowerLawGeneratorTest, DeterministicForSeed) {
  PowerLawParams Params;
  Params.NumVertices = 2000;
  Params.AverageDegree = 8;
  CsrGraph A = generatePowerLaw(Params);
  CsrGraph B = generatePowerLaw(Params);
  EXPECT_EQ(A.cols(), B.cols());
}

TEST(PowerLawGeneratorTest, HubsAtLowIds) {
  PowerLawParams Params;
  Params.NumVertices = 4096;
  Params.AverageDegree = 16;
  Params.Gamma = 2.0;
  CsrGraph G = generatePowerLaw(Params);
  uint64_t FrontDegrees = 0, BackDegrees = 0;
  for (VertexId V = 0; V < 100; ++V)
    FrontDegrees += G.outDegree(V);
  for (VertexId V = G.numVertices() - 100; V < G.numVertices(); ++V)
    BackDegrees += G.outDegree(V);
  EXPECT_GT(FrontDegrees, 5 * BackDegrees);
}

TEST(PowerLawGeneratorTest, GammaControlsSkew) {
  PowerLawParams Heavy;
  Heavy.NumVertices = 8192;
  Heavy.AverageDegree = 16;
  Heavy.Gamma = 1.9; // Twitter-like.
  PowerLawParams Light = Heavy;
  Light.Gamma = 2.6; // Pokec-like.
  double HeavyShare = generatePowerLaw(Heavy).topDegreeEdgeShare(0.01);
  double LightShare = generatePowerLaw(Light).topDegreeEdgeShare(0.01);
  EXPECT_GT(HeavyShare, LightShare);
}

TEST(DatasetTest, NamesRegistry) {
  EXPECT_EQ(datasetNames().size(), 5u);
  for (const std::string &Name : datasetNames())
    EXPECT_TRUE(isKnownDataset(Name));
  EXPECT_FALSE(isKnownDataset("orkut"));
}

TEST(DatasetTest, ScaledSizesOrdered) {
  // Relative sizes survive scaling: pokec < rmat24 < twitter <= friendster.
  double Scale = 512;
  Dataset Pokec = makeDataset("pokec", Scale);
  Dataset Rmat24 = makeDataset("rmat24", Scale);
  Dataset Twitter = makeDataset("twitter", Scale);
  EXPECT_LT(Pokec.Graph.numEdges(), Rmat24.Graph.numEdges());
  EXPECT_LT(Rmat24.Graph.numEdges(), Twitter.Graph.numEdges());
}

TEST(DatasetTest, DeterministicAcrossCalls) {
  Dataset A = makeDataset("pokec", 512);
  Dataset B = makeDataset("pokec", 512);
  EXPECT_EQ(A.Graph.cols(), B.Graph.cols());
}

TEST(DatasetTest, MinimumVertexFloor) {
  Dataset Tiny = makeDataset("pokec", 1e9);
  EXPECT_GE(Tiny.Graph.numVertices(), 1024u);
}

TEST(EdgeListIOTest, RoundTrip) {
  CsrGraph G = buildCsr(5, {{0, 1}, {1, 2}, {2, 3}, {4, 0}});
  std::string Path = testing::TempDir() + "atmem_edges_test.txt";
  ASSERT_TRUE(writeEdgeList(G, Path));
  auto Loaded = readEdgeList(Path);
  ASSERT_TRUE(Loaded.has_value());
  EXPECT_EQ(Loaded->numVertices(), G.numVertices());
  EXPECT_EQ(Loaded->cols(), G.cols());
  EXPECT_EQ(Loaded->rowOffsets(), G.rowOffsets());
  std::remove(Path.c_str());
}

TEST(EdgeListIOTest, MissingFileFails) {
  EXPECT_FALSE(readEdgeList("/nonexistent/path/graph.txt").has_value());
}

TEST(EdgeListIOTest, CommentsIgnored) {
  std::string Path = testing::TempDir() + "atmem_edges_comments.txt";
  std::FILE *File = std::fopen(Path.c_str(), "w");
  ASSERT_NE(File, nullptr);
  std::fputs("# header comment\n0 1\n\n1 2\n", File);
  std::fclose(File);
  auto Loaded = readEdgeList(Path);
  ASSERT_TRUE(Loaded.has_value());
  EXPECT_EQ(Loaded->numEdges(), 2u);
  std::remove(Path.c_str());
}

TEST(EdgeListIOTest, MalformedLineFails) {
  std::string Path = testing::TempDir() + "atmem_edges_bad.txt";
  std::FILE *File = std::fopen(Path.c_str(), "w");
  ASSERT_NE(File, nullptr);
  std::fputs("0 1\nbogus line\n", File);
  std::fclose(File);
  EXPECT_FALSE(readEdgeList(Path).has_value());
  std::remove(Path.c_str());
}

} // namespace
