//===----------------------------------------------------------------------===//
// Tests for the online placement-health monitor (obs/Health.h): planted
// anomaly streams with exact event sequences for every detector, the
// transition dedup (events only on state changes), warmup gating, the knob
// parser, the JSONL event log with its obs.health_emit fault site, offline
// replay equivalence (replayHealth must agree with the live monitor), the
// Runtime integration (stats-socket health panel + event log), and the
// shipped atmem_doctor / atmem_obs_check binaries over synthetic artifacts.
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "fault/FaultInjection.h"
#include "obs/DecisionLog.h"
#include "obs/Health.h"
#include "obs/Json.h"
#include "obs/StatsSocket.h"
#include "obs/Telemetry.h"
#include "obs/TimeSeries.h"
#include "sim/Machine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <sys/wait.h>
#include <vector>

using namespace atmem;
using namespace atmem::obs;

namespace {

/// Health state is process-wide where it touches the shared logs and the
/// metric registry; every test starts and ends with all of it quiescent.
class HealthTest : public ::testing::Test {
protected:
  void SetUp() override {
    obs::setEnabled(false);
    fault::FaultRegistry::instance().disarmAll();
    HealthLog::instance().close();
    DecisionLog::instance().close();
    setHealthDefaultEnabled(false);
  }
  void TearDown() override {
    obs::setEnabled(false);
    fault::FaultRegistry::instance().disarmAll();
    HealthLog::instance().close();
    DecisionLog::instance().close();
    setHealthDefaultEnabled(false);
  }

  static std::string tempPath(const char *Name) {
    return ::testing::TempDir() + Name;
  }
};

EpochSample quietSample(uint64_t Epoch) {
  EpochSample S;
  S.Epoch = Epoch;
  S.Accesses = 1000;
  S.MissesFast = 10;
  S.MissesSlow = 10;
  S.SlowMissFraction = 0.0;
  return S;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

void writeFile(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out << Text;
}

/// Runs a shipped tool via the shell, captures its exit code (and stdout
/// into \p OutPath when non-empty).
int runTool(const std::string &Command, const std::string &OutPath = "") {
  std::string Full = Command;
  if (!OutPath.empty())
    Full += " > " + OutPath;
  Full += " 2> /dev/null";
  int Status = std::system(Full.c_str());
  EXPECT_TRUE(WIFEXITED(Status)) << Command;
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

/// Asserts one event's identity (epoch, detector, severity).
void expectEvent(const HealthEvent &E, uint64_t Epoch, HealthDetector D,
                 HealthSeverity Severity) {
  EXPECT_EQ(E.Epoch, Epoch);
  EXPECT_EQ(E.Detector, D);
  EXPECT_EQ(E.Severity, Severity);
}

//===----------------------------------------------------------------------===//
// Knob parser and name tables
//===----------------------------------------------------------------------===//

TEST_F(HealthTest, KnobParserAppliesOverridesAndRejectsGarbage) {
  HealthConfig Cfg;
  std::string Error;
  ASSERT_TRUE(parseHealthKnobs(
      "ewma_alpha=0.5,cusum_warn=0.2,warmup_epochs=4,storm_min_ranges=16,"
      "pingpong_window=8,waste_warn_ratio=0.25,overhead_critical=2.0,"
      "stale_slow_miss=0.75",
      Cfg, &Error))
      << Error;
  EXPECT_DOUBLE_EQ(Cfg.EwmaAlpha, 0.5);
  EXPECT_DOUBLE_EQ(Cfg.CusumWarn, 0.2);
  EXPECT_EQ(Cfg.WarmupEpochs, 4u);
  EXPECT_EQ(Cfg.StormMinRanges, 16u);
  EXPECT_EQ(Cfg.PingPongWindowEpochs, 8u);
  EXPECT_DOUBLE_EQ(Cfg.WasteWarnRatio, 0.25);
  EXPECT_DOUBLE_EQ(Cfg.OverheadCriticalFraction, 2.0);
  EXPECT_DOUBLE_EQ(Cfg.StaleSlowMissFraction, 0.75);
  // Untouched knobs keep their defaults.
  EXPECT_DOUBLE_EQ(Cfg.CusumCritical, 0.4);

  // An empty spec is a no-op, not an error.
  HealthConfig Default;
  EXPECT_TRUE(parseHealthKnobs("", Default, &Error));

  // Unknown knobs and malformed values fail without mutating the output.
  HealthConfig Before = Cfg;
  EXPECT_FALSE(parseHealthKnobs("no_such_knob=1", Cfg, &Error));
  EXPECT_NE(Error.find("no_such_knob"), std::string::npos);
  EXPECT_DOUBLE_EQ(Cfg.EwmaAlpha, Before.EwmaAlpha);
  EXPECT_FALSE(parseHealthKnobs("ewma_alpha=abc", Cfg, &Error));
  EXPECT_FALSE(parseHealthKnobs("ewma_alpha", Cfg, &Error));
  EXPECT_DOUBLE_EQ(Cfg.EwmaAlpha, Before.EwmaAlpha);
}

TEST_F(HealthTest, NameTablesRoundTrip) {
  for (uint32_t D = 0; D < NumHealthDetectors; ++D) {
    HealthDetector In = static_cast<HealthDetector>(D);
    HealthDetector Out;
    ASSERT_TRUE(healthDetectorFromName(healthDetectorName(In), Out));
    EXPECT_EQ(Out, In);
  }
  for (HealthSeverity In : {HealthSeverity::Info, HealthSeverity::Warn,
                            HealthSeverity::Critical}) {
    HealthSeverity Out;
    ASSERT_TRUE(healthSeverityFromName(healthSeverityName(In), Out));
    EXPECT_EQ(Out, In);
  }
  HealthDetector D;
  HealthSeverity S;
  EXPECT_FALSE(healthDetectorFromName("bogus", D));
  EXPECT_FALSE(healthSeverityFromName("bogus", S));
}

//===----------------------------------------------------------------------===//
// Planted anomaly streams: exact event sequences per detector
//===----------------------------------------------------------------------===//

TEST_F(HealthTest, WarmupEpochsOnlyFeedBaselines) {
  HealthMonitor Mon;
  // Wild swings inside the warmup window must stay silent.
  EpochSample S = quietSample(1);
  S.SlowMissFraction = 0.0;
  S.MigrationRanges = 100;
  EXPECT_TRUE(Mon.observeEpoch(S).empty());
  S = quietSample(2);
  S.SlowMissFraction = 0.9;
  S.MigrationRanges = 100;
  EXPECT_TRUE(Mon.observeEpoch(S).empty());
  // Epoch 3 is the first judged epoch: the jump over the half-learned
  // baseline fires the regression detector straight to critical.
  S = quietSample(3);
  S.SlowMissFraction = 0.9;
  S.MigrationRanges = 100;
  std::vector<HealthEvent> Events = Mon.observeEpoch(S);
  ASSERT_EQ(Events.size(), 1u);
  expectEvent(Events[0], 3, HealthDetector::SlowMissRegression,
              HealthSeverity::Critical);
}

TEST_F(HealthTest, SlowMissRegressionEscalatesEasesAndRecovers) {
  HealthMonitor Mon;
  std::vector<HealthEvent> All;
  auto Feed = [&](uint64_t Epoch, double Smf) {
    EpochSample S = quietSample(Epoch);
    S.SlowMissFraction = Smf;
    for (HealthEvent &E : Mon.observeEpoch(S))
      All.push_back(std::move(E));
  };
  Feed(1, 0.10); // warmup: baseline learns 0.10
  Feed(2, 0.10);
  Feed(3, 0.40); // cusum 0.25 -> warn
  Feed(4, 0.40); // cusum 0.50 -> critical
  Feed(5, 0.00); // cusum 0.35 -> easing back to warn
  Feed(6, 0.00); // cusum 0.20 -> still yellow, no event (dedup)
  Feed(7, 0.00); // cusum 0.05 -> recovered

  ASSERT_EQ(All.size(), 4u);
  expectEvent(All[0], 3, HealthDetector::SlowMissRegression,
              HealthSeverity::Warn);
  EXPECT_NEAR(All[0].Value, 0.25, 1e-9);
  EXPECT_DOUBLE_EQ(All[0].Threshold, 0.15);
  expectEvent(All[1], 4, HealthDetector::SlowMissRegression,
              HealthSeverity::Critical);
  EXPECT_NEAR(All[1].Value, 0.50, 1e-9);
  EXPECT_DOUBLE_EQ(All[1].Threshold, 0.4);
  expectEvent(All[2], 5, HealthDetector::SlowMissRegression,
              HealthSeverity::Warn);
  EXPECT_EQ(All[2].Detail.rfind("easing: ", 0), 0u) << All[2].Detail;
  expectEvent(All[3], 7, HealthDetector::SlowMissRegression,
              HealthSeverity::Info);
  EXPECT_EQ(All[3].Detail.rfind("recovered", 0), 0u) << All[3].Detail;

  HealthMonitor::Snapshot Snap = Mon.snapshot();
  EXPECT_EQ(Snap.Overall, SloStatus::Green);
  EXPECT_EQ(Snap.WorstOverall, SloStatus::Red);
  EXPECT_EQ(Snap.EventsInfo, 1u);
  EXPECT_EQ(Snap.EventsWarn, 2u);
  EXPECT_EQ(Snap.EventsCritical, 1u);
  const HealthMonitor::DetectorState &D = Snap.Detectors[static_cast<uint32_t>(
      HealthDetector::SlowMissRegression)];
  EXPECT_EQ(D.Status, SloStatus::Green);
  EXPECT_EQ(D.Worst, SloStatus::Red);
  EXPECT_EQ(D.Events, 4u);
  EXPECT_EQ(D.LastEventEpoch, 7u);
  EXPECT_EQ(Snap.LastEpoch, 7u);
}

TEST_F(HealthTest, MigrationStormSpikesOverBaseline) {
  HealthMonitor Mon;
  std::vector<HealthEvent> All;
  auto Feed = [&](uint64_t Epoch, uint64_t Ranges, uint64_t Retries,
                  uint64_t Rollbacks) {
    EpochSample S = quietSample(Epoch);
    S.MigrationRanges = Ranges;
    S.Retries = Retries;
    S.Rollbacks = Rollbacks;
    for (HealthEvent &E : Mon.observeEpoch(S))
      All.push_back(std::move(E));
  };
  Feed(1, 2, 0, 0); // warmup: baseline learns 2
  Feed(2, 2, 0, 0);
  Feed(3, 40, 14, 10); // activity 64 = 32x baseline -> critical
  Feed(4, 2, 0, 0);    // back to baseline -> recovered
  Feed(5, 9, 0, 0);    // 4.5x baseline and >= floor -> warn
  Feed(6, 2, 0, 0);    // recovered again

  ASSERT_EQ(All.size(), 4u);
  expectEvent(All[0], 3, HealthDetector::MigrationStorm,
              HealthSeverity::Critical);
  EXPECT_NEAR(All[0].Value, 32.0, 1e-9);
  EXPECT_DOUBLE_EQ(All[0].Threshold, 8.0);
  EXPECT_NE(All[0].Detail.find("64 migration ranges"), std::string::npos)
      << All[0].Detail;
  expectEvent(All[1], 4, HealthDetector::MigrationStorm, HealthSeverity::Info);
  expectEvent(All[2], 5, HealthDetector::MigrationStorm, HealthSeverity::Warn);
  EXPECT_NEAR(All[2].Value, 4.5, 1e-9);
  expectEvent(All[3], 6, HealthDetector::MigrationStorm, HealthSeverity::Info);
}

TEST_F(HealthTest, MigrationStormRespectsAbsoluteFloor) {
  // A spike below StormMinRanges is never a storm, however large the
  // relative factor (quiet runs would otherwise alarm on their first
  // real migration).
  HealthMonitor Mon;
  std::vector<HealthEvent> All;
  for (uint64_t Epoch = 1; Epoch <= 2; ++Epoch)
    EXPECT_TRUE(Mon.observeEpoch(quietSample(Epoch)).empty());
  EpochSample S = quietSample(3);
  S.MigrationRanges = 7; // 7x a floored baseline of 1, but below the floor
  EXPECT_TRUE(Mon.observeEpoch(S).empty());
}

TEST_F(HealthTest, PingPongCountsDirectionFlipsInWindow) {
  HealthMonitor Mon;
  std::vector<HealthEvent> All;
  auto Observe = [&](uint64_t Epoch) {
    for (HealthEvent &E : Mon.observeEpoch(quietSample(Epoch)))
      All.push_back(std::move(E));
  };
  auto Thrash = [&] {
    Mon.noteMigration(7, 9, 1, /*ToFast=*/true);
    Mon.noteMigration(7, 9, 1, /*ToFast=*/false);
  };
  Thrash();
  Observe(1); // first move sets the direction, second flips: 1 flip
  Thrash();
  Observe(2); // 3 flips in window -> warn
  Thrash();
  Observe(3); // 5 flips in window -> critical
  Observe(4); // window [1,4] still holds 5 flips -> red, no event
  Observe(5); // window [2,5] holds 4 -> easing to warn
  Observe(6); // window [3,6] holds 2 -> recovered

  ASSERT_EQ(All.size(), 4u);
  expectEvent(All[0], 2, HealthDetector::PingPong, HealthSeverity::Warn);
  EXPECT_DOUBLE_EQ(All[0].Value, 3.0);
  expectEvent(All[1], 3, HealthDetector::PingPong, HealthSeverity::Critical);
  EXPECT_DOUBLE_EQ(All[1].Value, 5.0);
  EXPECT_EQ(All[1].Detail,
            "object 7 chunk 9 flipped tiers 5 times in 4 epochs");
  expectEvent(All[2], 5, HealthDetector::PingPong, HealthSeverity::Warn);
  EXPECT_EQ(All[2].Detail.rfind("easing: ", 0), 0u);
  expectEvent(All[3], 6, HealthDetector::PingPong, HealthSeverity::Info);
}

TEST_F(HealthTest, LookaheadWasteJudgesWindowRatio) {
  HealthMonitor Mon;
  std::vector<HealthEvent> All;
  auto Feed = [&](uint64_t Epoch, uint64_t Staged, uint64_t Cancelled) {
    EpochSample S = quietSample(Epoch);
    S.LookaheadStaged = Staged;
    S.LookaheadCancelled = Cancelled;
    for (HealthEvent &E : Mon.observeEpoch(S))
      All.push_back(std::move(E));
  };
  Feed(1, 10, 0);  // ratio 0 -> green
  Feed(2, 10, 16); // 16/20 = 0.8 -> warn
  Feed(3, 0, 20);  // 36/20 = 1.8 -> critical
  Feed(4, 0, 0);   // window still saturated -> red, no event
  Feed(5, 0, 0);
  Feed(6, 0, 0);   // staging fell out of the window -> recovered

  ASSERT_EQ(All.size(), 3u);
  expectEvent(All[0], 2, HealthDetector::LookaheadWaste, HealthSeverity::Warn);
  EXPECT_NEAR(All[0].Value, 0.8, 1e-9);
  expectEvent(All[1], 3, HealthDetector::LookaheadWaste,
              HealthSeverity::Critical);
  EXPECT_NEAR(All[1].Value, 1.8, 1e-9);
  EXPECT_NE(All[1].Detail.find("36 of 20 staged ranges cancelled"),
            std::string::npos)
      << All[1].Detail;
  expectEvent(All[2], 6, HealthDetector::LookaheadWaste, HealthSeverity::Info);
}

TEST_F(HealthTest, OverheadBudgetComparesOptimizeToIterationWall) {
  HealthConfig Cfg;
  Cfg.OverheadCriticalFraction = 0.9; // opt in (default is disabled)
  HealthMonitor Mon(Cfg);
  std::vector<HealthEvent> All;
  auto Feed = [&](uint64_t Epoch, double OptUs, double IterUs) {
    EpochSample S = quietSample(Epoch);
    S.OptimizeWallUs = OptUs;
    S.IterationWallUs = IterUs;
    for (HealthEvent &E : Mon.observeEpoch(S))
      All.push_back(std::move(E));
  };
  Feed(1, 600.0, 1000.0); // 0.6 -> warn (no warmup gate on this detector)
  Feed(2, 950.0, 1000.0); // 0.95 -> critical
  Feed(3, 100.0, 1000.0); // 0.1 -> recovered
  Feed(4, 900.0, 0.0);    // no iteration measurement -> stays green

  ASSERT_EQ(All.size(), 3u);
  expectEvent(All[0], 1, HealthDetector::OverheadBudget, HealthSeverity::Warn);
  EXPECT_NEAR(All[0].Value, 0.6, 1e-9);
  expectEvent(All[1], 2, HealthDetector::OverheadBudget,
              HealthSeverity::Critical);
  EXPECT_NEAR(All[1].Value, 0.95, 1e-9);
  expectEvent(All[2], 3, HealthDetector::OverheadBudget, HealthSeverity::Info);
}

TEST_F(HealthTest, StalePlacementCountsIdleEpochsUnderHighMissRate) {
  HealthMonitor Mon;
  std::vector<HealthEvent> All;
  auto Feed = [&](uint64_t Epoch, uint64_t Ranges, double Smf) {
    EpochSample S = quietSample(Epoch);
    S.MigrationRanges = Ranges;
    S.SlowMissFraction = Smf;
    for (HealthEvent &E : Mon.observeEpoch(S))
      All.push_back(std::move(E));
  };
  for (uint64_t Epoch = 1; Epoch <= 6; ++Epoch)
    Feed(Epoch, 0, 0.6); // streak grows: warn at 3, critical at 6
  Feed(7, 5, 0.6);       // a migration resets the streak -> recovered

  ASSERT_EQ(All.size(), 3u);
  expectEvent(All[0], 3, HealthDetector::StalePlacement, HealthSeverity::Warn);
  EXPECT_DOUBLE_EQ(All[0].Value, 3.0);
  expectEvent(All[1], 6, HealthDetector::StalePlacement,
              HealthSeverity::Critical);
  EXPECT_DOUBLE_EQ(All[1].Value, 6.0);
  EXPECT_NE(All[1].Detail.find("6 epochs without migrations"),
            std::string::npos)
      << All[1].Detail;
  expectEvent(All[2], 7, HealthDetector::StalePlacement, HealthSeverity::Info);
}

//===----------------------------------------------------------------------===//
// Event JSON and the health log
//===----------------------------------------------------------------------===//

TEST_F(HealthTest, EventJsonRoundTripsThroughParser) {
  HealthEvent E;
  E.Epoch = 42;
  E.Detector = HealthDetector::PingPong;
  E.Severity = HealthSeverity::Critical;
  E.Value = 5.0;
  E.Threshold = 5.0;
  E.Detail = "tricky \"quoted\" \\ back\nslash";

  std::string Doc = "{\"schema\":\"atmem-health-v1\"}\n";
  Doc += healthEventJson(E) + "\n";
  std::vector<HealthEvent> Parsed;
  std::string Error;
  ASSERT_TRUE(parseHealthLog(Doc, Parsed, &Error)) << Error;
  ASSERT_EQ(Parsed.size(), 1u);
  EXPECT_EQ(Parsed[0].Epoch, 42u);
  EXPECT_EQ(Parsed[0].Detector, HealthDetector::PingPong);
  EXPECT_EQ(Parsed[0].Severity, HealthSeverity::Critical);
  EXPECT_DOUBLE_EQ(Parsed[0].Value, 5.0);
  EXPECT_EQ(Parsed[0].Detail, E.Detail);

  // Non-finite values serialize as 0 so the log always parses.
  E.Value = std::numeric_limits<double>::quiet_NaN();
  E.Threshold = std::numeric_limits<double>::infinity();
  std::string Line = healthEventJson(E);
  EXPECT_EQ(Line.find("nan"), std::string::npos);
  EXPECT_EQ(Line.find("inf"), std::string::npos);
  EXPECT_NE(Line.find("\"value\":0"), std::string::npos);
}

TEST_F(HealthTest, ParseHealthLogRejectsMalformedDocuments) {
  std::vector<HealthEvent> Out;
  std::string Error;
  EXPECT_FALSE(parseHealthLog("", Out, &Error));
  EXPECT_FALSE(parseHealthLog("{\"epoch\":1}\n", Out, &Error));
  EXPECT_NE(Error.find("schema"), std::string::npos);
  std::string Doc = "{\"schema\":\"atmem-health-v1\"}\n{\"epoch\":1}\n";
  Out.clear();
  EXPECT_FALSE(parseHealthLog(Doc, Out, &Error));
  Doc = "{\"schema\":\"atmem-health-v1\"}\n"
        "{\"epoch\":1,\"detector\":\"martian\",\"severity\":\"warn\","
        "\"value\":1,\"threshold\":1,\"detail\":\"\"}\n";
  Out.clear();
  EXPECT_FALSE(parseHealthLog(Doc, Out, &Error));
  EXPECT_NE(Error.find("martian"), std::string::npos);
}

TEST_F(HealthTest, HealthLogWritesHeaderAndEvents) {
  std::string Path = tempPath("health_basic.jsonl");
  std::string Error;
  ASSERT_TRUE(HealthLog::instance().open(Path, &Error)) << Error;
  EXPECT_TRUE(HealthLog::instance().isOpen());
  EXPECT_EQ(HealthLog::instance().path(), Path);
  // Second open while running is the shared-stream no-op.
  EXPECT_TRUE(HealthLog::instance().open(tempPath("other.jsonl")));
  EXPECT_EQ(HealthLog::instance().path(), Path);

  HealthEvent E;
  E.Epoch = 3;
  E.Detector = HealthDetector::MigrationStorm;
  E.Severity = HealthSeverity::Warn;
  E.Value = 4.5;
  E.Threshold = 4.0;
  E.Detail = "storm";
  HealthLog::instance().append(E);
  EXPECT_EQ(HealthLog::instance().dropped(), 0u);
  ASSERT_TRUE(HealthLog::instance().close(&Error)) << Error;
  EXPECT_FALSE(HealthLog::instance().isOpen());

  std::string Text = readFile(Path);
  EXPECT_EQ(Text.rfind("{\"schema\":\"atmem-health-v1\"}\n", 0), 0u);
  std::vector<HealthEvent> Parsed;
  ASSERT_TRUE(parseHealthLog(Text, Parsed, &Error)) << Error;
  ASSERT_EQ(Parsed.size(), 1u);
  EXPECT_EQ(Parsed[0].Epoch, 3u);
  EXPECT_EQ(Parsed[0].Detector, HealthDetector::MigrationStorm);
}

TEST_F(HealthTest, EmitFaultDropsEventAndLatchesCounter) {
  std::string Path = tempPath("health_fault.jsonl");
  ASSERT_TRUE(HealthLog::instance().open(Path));

  obs::setEnabled(true);
  Registry::instance().resetValues();

  fault::FaultPlan Plan;
  Plan.Mode = fault::Trigger::EveryKth;
  Plan.N = 1;
  fault::FaultRegistry::instance().arm("obs.health_emit", Plan);

  HealthEvent E;
  E.Epoch = 1;
  E.Detector = HealthDetector::StalePlacement;
  E.Severity = HealthSeverity::Warn;
  E.Detail = "dropped";
  HealthLog::instance().append(E);
  EXPECT_EQ(HealthLog::instance().dropped(), 1u);

  // After disarming, the stream keeps working: degradation, not failure.
  fault::FaultRegistry::instance().disarmAll();
  E.Detail = "kept";
  HealthLog::instance().append(E);
  EXPECT_EQ(HealthLog::instance().dropped(), 1u);

  // A fault-injected drop does not taint the close verdict.
  std::string Error;
  EXPECT_TRUE(HealthLog::instance().close(&Error)) << Error;

  std::vector<HealthEvent> Parsed;
  ASSERT_TRUE(parseHealthLog(readFile(Path), Parsed, &Error)) << Error;
  ASSERT_EQ(Parsed.size(), 1u);
  EXPECT_EQ(Parsed[0].Detail, "kept");

  TelemetrySnapshot Snap = Registry::instance().snapshot();
  const uint64_t *Failed = Snap.counter("health.emit_failed");
  ASSERT_NE(Failed, nullptr);
  EXPECT_EQ(*Failed, 1u);
}

//===----------------------------------------------------------------------===//
// Offline replay (the atmem_doctor engine)
//===----------------------------------------------------------------------===//

TEST_F(HealthTest, ReplayAgreesWithOnlineMonitor) {
  std::vector<EpochSample> Samples;
  for (uint64_t Epoch = 1; Epoch <= 6; ++Epoch) {
    EpochSample S = quietSample(Epoch);
    S.SlowMissFraction = Epoch >= 3 ? 0.45 : 0.10;
    S.MigrationRanges = Epoch == 3 ? 64 : 2;
    Samples.push_back(S);
  }

  HealthConfig Cfg;
  HealthMonitor Mon(Cfg);
  std::vector<HealthEvent> Online;
  for (const EpochSample &S : Samples)
    for (HealthEvent &E : Mon.observeEpoch(S))
      Online.push_back(std::move(E));

  HealthReport Report = replayHealth(Cfg, Samples);
  EXPECT_EQ(Report.Epochs, Samples.size());
  ASSERT_EQ(Report.Events.size(), Online.size());
  for (size_t I = 0; I < Online.size(); ++I) {
    EXPECT_EQ(Report.Events[I].Epoch, Online[I].Epoch);
    EXPECT_EQ(Report.Events[I].Detector, Online[I].Detector);
    EXPECT_EQ(Report.Events[I].Severity, Online[I].Severity);
    EXPECT_DOUBLE_EQ(Report.Events[I].Value, Online[I].Value);
    EXPECT_EQ(Report.Events[I].Detail, Online[I].Detail);
  }
  HealthMonitor::Snapshot Snap = Mon.snapshot();
  EXPECT_EQ(Report.Overall, Snap.WorstOverall);
  EXPECT_EQ(Report.Worst[static_cast<uint32_t>(
                HealthDetector::MigrationStorm)],
            SloStatus::Red);
}

TEST_F(HealthTest, ReplayFeedsPingPongFromDecisionArtifact) {
  // Fabricate an atdl artifact whose committed migrations thrash one chunk.
  std::string Path = tempPath("pingpong.atdl");
  DecisionLog &Log = DecisionLog::instance();
  ASSERT_TRUE(Log.open(Path));
  uint32_t Name = Log.nameId("arr");
  std::vector<uint64_t> Epochs;
  for (int Round = 0; Round < 3; ++Round) {
    Epochs.push_back(Log.beginEpoch());
    ObjectEpochRecord Obj;
    Obj.Object = 7;
    Obj.NameId = Name;
    Obj.NumChunks = 16;
    Log.recordObject(Obj);
    for (int Dir = 0; Dir < 2; ++Dir) {
      MigrationEventRecord M;
      M.Object = 7;
      M.FirstChunk = 9;
      M.NumChunks = 1;
      M.TargetFast = Dir == 0 ? 1 : 0;
      M.Phase = DecisionPhase::Committed;
      Log.recordMigration(M);
    }
  }
  ASSERT_TRUE(Log.close());

  DecisionArtifact Artifact;
  std::string Error;
  ASSERT_TRUE(readDecisionLog(Path, Artifact, &Error)) << Error;

  std::vector<EpochSample> Samples;
  for (uint64_t E : Epochs)
    Samples.push_back(quietSample(E));

  HealthReport Report = replayHealth(HealthConfig(), Samples, &Artifact, 0);
  std::vector<HealthEvent> PingPong;
  for (const HealthEvent &E : Report.Events)
    if (E.Detector == HealthDetector::PingPong)
      PingPong.push_back(E);
  ASSERT_EQ(PingPong.size(), 2u);
  expectEvent(PingPong[0], Epochs[1], HealthDetector::PingPong,
              HealthSeverity::Warn);
  expectEvent(PingPong[1], Epochs[2], HealthDetector::PingPong,
              HealthSeverity::Critical);
  EXPECT_EQ(Report.Worst[static_cast<uint32_t>(HealthDetector::PingPong)],
            SloStatus::Red);

  // Without the artifact the ping-pong detector has no input.
  HealthReport Bare = replayHealth(HealthConfig(), Samples);
  EXPECT_EQ(Bare.Worst[static_cast<uint32_t>(HealthDetector::PingPong)],
            SloStatus::Green);
}

//===----------------------------------------------------------------------===//
// Runtime integration: live monitor, stats-socket panel, event log
//===----------------------------------------------------------------------===//

TEST_F(HealthTest, RuntimeServesHealthPanelAndWritesEventLog) {
  std::string Socket = tempPath("health_live.sock");
  std::string LogPath = tempPath("health_live.jsonl");

  core::RuntimeConfig Config;
  Config.Machine = sim::nvmDramTestbed(1.0 / 1024);
  Config.Telemetry.StatsSocketPath = Socket;
  Config.Telemetry.HealthEnabled = true;
  Config.Telemetry.HealthLogPath = LogPath;
  // An impossible overhead budget makes the detector fire deterministically
  // on the first epoch that carries an iteration wall measurement.
  std::string Error;
  ASSERT_TRUE(
      parseHealthKnobs("overhead_warn=0.0", Config.Telemetry.Health, &Error))
      << Error;

  {
    core::Runtime Rt(Config);
    core::TrackedArray<uint64_t> Hot = Rt.allocate<uint64_t>("hot", 1 << 16);
    for (int Epoch = 0; Epoch < 2; ++Epoch) {
      Rt.profilingStart();
      Rt.beginIteration();
      uint64_t State = 9001;
      for (int I = 0; I < 50000; ++I) {
        State = State * 6364136223846793005ull + 1442695040888963407ull;
        Hot[(State >> 33) & ((1 << 16) - 1)] += 1;
      }
      Rt.endIteration();
      Rt.profilingStop();
      Rt.optimize();
    }

    std::string Body;
    ASSERT_TRUE(statsSocketFetch(Socket, Body, &Error)) << Error;
    JsonValue Doc;
    ASSERT_TRUE(parseJson(Body, Doc, &Error)) << Error;
    const JsonValue *Health = Doc.find("health");
    ASSERT_NE(Health, nullptr);
    const JsonValue *Overall = Health->findString("overall");
    ASSERT_NE(Overall, nullptr);
    EXPECT_EQ(Overall->StringVal, "yellow");
    const JsonValue *Events = Health->find("events");
    ASSERT_NE(Events, nullptr);
    const JsonValue *Warn = Events->findNumber("warn");
    ASSERT_NE(Warn, nullptr);
    EXPECT_GE(Warn->NumberVal, 1.0);
    const JsonValue *Detectors = Health->find("detectors");
    ASSERT_NE(Detectors, nullptr);
    ASSERT_TRUE(Detectors->isArray());
    ASSERT_EQ(Detectors->Array.size(), NumHealthDetectors);
    bool SawOverhead = false;
    for (const JsonValue &Det : Detectors->Array) {
      const JsonValue *Name = Det.findString("name");
      ASSERT_NE(Name, nullptr);
      if (Name->StringVal != "overhead_budget")
        continue;
      SawOverhead = true;
      const JsonValue *Status = Det.findString("status");
      ASSERT_NE(Status, nullptr);
      EXPECT_EQ(Status->StringVal, "yellow");
      const JsonValue *Evs = Det.findNumber("events");
      ASSERT_NE(Evs, nullptr);
      EXPECT_EQ(Evs->NumberVal, 1.0);
      const JsonValue *Detail = Det.findString("detail");
      ASSERT_NE(Detail, nullptr);
      EXPECT_NE(Detail->StringVal.find("optimize"), std::string::npos);
    }
    EXPECT_TRUE(SawOverhead);
  }

  // The log is process-wide; finalize it the way exportIfConfigured does
  // and check the live events landed.
  ASSERT_TRUE(HealthLog::instance().close(&Error)) << Error;
  std::vector<HealthEvent> Parsed;
  ASSERT_TRUE(parseHealthLog(readFile(LogPath), Parsed, &Error)) << Error;
  bool SawOverheadWarn = false;
  for (const HealthEvent &E : Parsed)
    if (E.Detector == HealthDetector::OverheadBudget &&
        E.Severity == HealthSeverity::Warn)
      SawOverheadWarn = true;
  EXPECT_TRUE(SawOverheadWarn);
}

TEST_F(HealthTest, RuntimeWithoutHealthServesNoHealthSection) {
  std::string Socket = tempPath("health_off.sock");
  core::RuntimeConfig Config;
  Config.Machine = sim::nvmDramTestbed(1.0 / 1024);
  Config.Telemetry.StatsSocketPath = Socket;
  core::Runtime Rt(Config);
  core::TrackedArray<uint64_t> Arr = Rt.allocate<uint64_t>("v", 1 << 14);
  Rt.profilingStart();
  Rt.beginIteration();
  for (size_t I = 0; I < Arr.size(); ++I)
    Arr[I] = I;
  Rt.endIteration();
  Rt.profilingStop();
  Rt.optimize();

  std::string Body, Error;
  ASSERT_TRUE(statsSocketFetch(Socket, Body, &Error)) << Error;
  JsonValue Doc;
  ASSERT_TRUE(parseJson(Body, Doc, &Error)) << Error;
  EXPECT_EQ(Doc.find("health"), nullptr);
}

//===----------------------------------------------------------------------===//
// atmem_doctor: end-to-end triage over synthetic artifacts
//===----------------------------------------------------------------------===//

#ifdef ATMEM_DOCTOR_PATH

/// The acceptance scenario: a planted epoch-3 migration storm plus a
/// sustained slow-miss regression, with a decision log supplying the
/// why-chains. The doctor must report both findings at the right epochs
/// with the right severities and exit 5.
TEST_F(HealthTest, DoctorFlagsPlantedStormAndRegression) {
  std::string TsPath = tempPath("doctor_planted.timeseries.jsonl");
  std::string LogPath = tempPath("doctor_planted.atdl");
  std::string OutPath = tempPath("doctor_planted.json");

  // Decision log: object "arr" active every epoch; epoch 3 commits a
  // 64-range storm, the other epochs commit a quiet 2.
  DecisionLog &Log = DecisionLog::instance();
  ASSERT_TRUE(Log.open(LogPath));
  uint32_t Name = Log.nameId("arr");
  for (uint64_t Epoch = 1; Epoch <= 4; ++Epoch) {
    ASSERT_EQ(Log.beginEpoch(), Epoch);
    ObjectEpochRecord Obj;
    Obj.Object = 1;
    Obj.NameId = Name;
    Obj.NumChunks = 128;
    Log.recordObject(Obj);
    uint64_t Ranges = Epoch == 3 ? 64 : 2;
    for (uint64_t R = 0; R < Ranges; ++R) {
      MigrationEventRecord M;
      M.Object = 1;
      M.FirstChunk = static_cast<uint32_t>(R);
      M.NumChunks = 1;
      M.TargetFast = 1;
      M.Phase = DecisionPhase::Committed;
      Log.recordMigration(M);
    }
  }
  ASSERT_TRUE(Log.close());

  // Matching time series: quiet warmup, then the storm epoch also begins
  // a sustained slow-miss regression (warn at 3, critical at 4).
  std::vector<EpochSample> Samples;
  for (uint64_t Epoch = 1; Epoch <= 4; ++Epoch) {
    EpochSample S = quietSample(Epoch);
    S.SlowMissFraction = Epoch >= 3 ? 0.45 : 0.10;
    S.MigrationRanges = Epoch == 3 ? 64 : 2;
    Samples.push_back(S);
  }
  writeFile(TsPath, timeSeriesJsonl(Samples));

  int Exit = runTool(std::string(ATMEM_DOCTOR_PATH) + " --timeseries " +
                         TsPath + " --decision-log " + LogPath + " --json",
                     OutPath);
  EXPECT_EQ(Exit, 5);

  JsonValue Doc;
  std::string Error;
  ASSERT_TRUE(parseJson(readFile(OutPath), Doc, &Error)) << Error;
  const JsonValue *Schema = Doc.findString("schema");
  ASSERT_NE(Schema, nullptr);
  EXPECT_EQ(Schema->StringVal, "atmem-doctor-v1");
  ASSERT_NE(Doc.findString("overall"), nullptr);
  EXPECT_EQ(Doc.findString("overall")->StringVal, "red");
  const JsonValue *Slo = Doc.find("slo");
  ASSERT_NE(Slo, nullptr);
  ASSERT_NE(Slo->findString("migration_storm"), nullptr);
  EXPECT_EQ(Slo->findString("migration_storm")->StringVal, "red");
  ASSERT_NE(Slo->findString("slow_miss_regression"), nullptr);
  EXPECT_EQ(Slo->findString("slow_miss_regression")->StringVal, "red");

  const JsonValue *Findings = Doc.find("findings");
  ASSERT_NE(Findings, nullptr);
  ASSERT_TRUE(Findings->isArray());
  bool StormAt3 = false, RegressionAt4 = false;
  for (const JsonValue &F : Findings->Array) {
    const JsonValue *Detector = F.findString("detector");
    const JsonValue *Severity = F.findString("severity");
    const JsonValue *Epoch = F.findNumber("epoch");
    const JsonValue *Why = F.findString("why");
    ASSERT_NE(Detector, nullptr);
    ASSERT_NE(Severity, nullptr);
    ASSERT_NE(Epoch, nullptr);
    if (Detector->StringVal == "migration_storm" &&
        Severity->StringVal == "critical" && Epoch->NumberVal == 3.0) {
      StormAt3 = true;
      // The storm finding is cross-linked to a committed chunk's
      // decision-log why-chain.
      ASSERT_NE(Why, nullptr);
      EXPECT_NE(Why->StringVal.find("object 'arr'"), std::string::npos)
          << Why->StringVal;
      EXPECT_NE(Why->StringVal.find("committed"), std::string::npos);
    }
    if (Detector->StringVal == "slow_miss_regression" &&
        Severity->StringVal == "critical" && Epoch->NumberVal == 4.0)
      RegressionAt4 = true;
  }
  EXPECT_TRUE(StormAt3);
  EXPECT_TRUE(RegressionAt4);
}

TEST_F(HealthTest, DoctorReportsHealthyStreamAsExitZero) {
  std::string TsPath = tempPath("doctor_healthy.timeseries.jsonl");
  std::vector<EpochSample> Samples;
  for (uint64_t Epoch = 1; Epoch <= 8; ++Epoch) {
    EpochSample S = quietSample(Epoch);
    S.SlowMissFraction = 0.10;
    S.MigrationRanges = 2;
    Samples.push_back(S);
  }
  writeFile(TsPath, timeSeriesJsonl(Samples));
  EXPECT_EQ(runTool(std::string(ATMEM_DOCTOR_PATH) + " --timeseries " +
                    TsPath),
            0);
  // Custom knobs ride through --health-knobs: an absurdly low storm floor
  // plus warn factor turns the same quiet stream into a warning.
  EXPECT_EQ(runTool(std::string(ATMEM_DOCTOR_PATH) + " --timeseries " +
                    TsPath +
                    " --health-knobs storm_min_ranges=1,storm_warn_factor="
                    "0.5,warmup_epochs=1"),
            4);
  // Unknown knobs are a usage error.
  EXPECT_EQ(runTool(std::string(ATMEM_DOCTOR_PATH) + " --timeseries " +
                    TsPath + " --health-knobs no_such=1"),
            2);
}

#endif // ATMEM_DOCTOR_PATH

//===----------------------------------------------------------------------===//
// atmem_obs_check: the new artifact validators
//===----------------------------------------------------------------------===//

#ifdef ATMEM_OBS_CHECK_PATH

TEST_F(HealthTest, ObsCheckValidatesTimeSeries) {
  std::string Good = tempPath("check_good.timeseries.jsonl");
  std::vector<EpochSample> Samples;
  for (uint64_t Epoch = 1; Epoch <= 3; ++Epoch)
    Samples.push_back(quietSample(Epoch));
  // A second run segment restarting at 1 is legal (bench batches share
  // one file).
  Samples.push_back(quietSample(1));
  Samples.push_back(quietSample(2));
  writeFile(Good, timeSeriesJsonl(Samples));
  EXPECT_EQ(runTool(std::string(ATMEM_OBS_CHECK_PATH) + " --timeseries " +
                    Good),
            0);

  // An epoch gap inside a segment is invalid.
  std::string Gap = tempPath("check_gap.timeseries.jsonl");
  std::vector<EpochSample> Gapped = {quietSample(1), quietSample(3)};
  writeFile(Gap, timeSeriesJsonl(Gapped));
  EXPECT_EQ(runTool(std::string(ATMEM_OBS_CHECK_PATH) + " --timeseries " +
                    Gap),
            1);

  // A ratio outside [0,1] is invalid.
  std::string Range = tempPath("check_range.timeseries.jsonl");
  std::vector<EpochSample> Bad = {quietSample(1)};
  Bad[0].SlowMissFraction = 1.5;
  writeFile(Range, timeSeriesJsonl(Bad));
  EXPECT_EQ(runTool(std::string(ATMEM_OBS_CHECK_PATH) + " --timeseries " +
                    Range),
            1);
}

TEST_F(HealthTest, ObsCheckValidatesOpenMetrics) {
  std::string Good = tempPath("check_good.om");
  std::vector<EpochSample> Samples = {quietSample(1), quietSample(2)};
  writeFile(Good, timeSeriesOpenMetrics(Samples));
  EXPECT_EQ(runTool(std::string(ATMEM_OBS_CHECK_PATH) + " --openmetrics " +
                    Good),
            0);

  // Truncation loses the mandatory "# EOF" terminator.
  std::string Truncated = tempPath("check_truncated.om");
  std::string Text = timeSeriesOpenMetrics(Samples);
  writeFile(Truncated, Text.substr(0, Text.size() / 2));
  EXPECT_EQ(runTool(std::string(ATMEM_OBS_CHECK_PATH) + " --openmetrics " +
                    Truncated),
            1);
}

TEST_F(HealthTest, ObsCheckTriagesHealthLog) {
  // A header-only log is a healthy run.
  std::string Clean = tempPath("check_clean.health.jsonl");
  writeFile(Clean, "{\"schema\":\"atmem-health-v1\"}\n");
  EXPECT_EQ(runTool(std::string(ATMEM_OBS_CHECK_PATH) + " --health-log " +
                    Clean),
            0);

  // Events parse and count.
  HealthEvent E;
  E.Epoch = 3;
  E.Detector = HealthDetector::MigrationStorm;
  E.Severity = HealthSeverity::Critical;
  E.Detail = "storm";
  std::string WithEvents = tempPath("check_events.health.jsonl");
  writeFile(WithEvents,
            "{\"schema\":\"atmem-health-v1\"}\n" + healthEventJson(E) + "\n");
  EXPECT_EQ(runTool(std::string(ATMEM_OBS_CHECK_PATH) + " --health-log " +
                    WithEvents),
            0);

  // Missing schema header maps to the headerless triage class.
  std::string NoHeader = tempPath("check_noheader.health.jsonl");
  writeFile(NoHeader, healthEventJson(E) + "\n");
  EXPECT_EQ(runTool(std::string(ATMEM_OBS_CHECK_PATH) + " --health-log " +
                    NoHeader),
            4);

  // A malformed event line maps to the corrupt class.
  std::string Corrupt = tempPath("check_corrupt.health.jsonl");
  writeFile(Corrupt,
            "{\"schema\":\"atmem-health-v1\"}\n{\"epoch\":1}\n");
  EXPECT_EQ(runTool(std::string(ATMEM_OBS_CHECK_PATH) + " --health-log " +
                    Corrupt),
            6);

  // An unreadable path maps to the unreadable class.
  EXPECT_EQ(runTool(std::string(ATMEM_OBS_CHECK_PATH) + " --health-log " +
                    tempPath("does_not_exist.health.jsonl")),
            7);
}

#endif // ATMEM_OBS_CHECK_PATH

} // namespace
