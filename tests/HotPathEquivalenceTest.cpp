//===----------------------------------------------------------------------===//
// Equivalence suite for the batched hot-path pipeline (PR 4). Every
// optimized path — arithmetic sample selection, indexed attribution, bulk
// trace append, translation-cached TLB replay, split-probe cache/TLB
// victim scans — is pinned bit-for-bit against the reference per-event
// implementation it replaced. These tests are the contract that lets the
// perf work evolve without moving any observable result.
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "mem/DataObjectRegistry.h"
#include "profiler/SamplingProfiler.h"
#include "profiler/TraceFile.h"
#include "sim/CacheSim.h"
#include "sim/Machine.h"
#include "sim/SimdProbe.h"
#include "sim/Tlb.h"
#include "sim/TranslationCache.h"
#include "support/Prng.h"
#include "support/Topology.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace atmem;

namespace {

/// Machine small enough that random walks over a few MiB mostly miss.
sim::MachineConfig smallCacheTestbed() {
  sim::MachineConfig Config = sim::nvmDramTestbed(1.0 / 64);
  Config.Cache.SizeBytes = 1 << 16;
  Config.Cache.Ways = 4;
  return Config;
}

/// Profiler tuned so a modest miss stream crosses the sample budget
/// several times (mid-batch period doubling is the hard case).
prof::ProfilerConfig fastAdaptConfig() {
  prof::ProfilerConfig Config;
  Config.InitialPeriod = 4;
  Config.MinSampleBudget = 256;
  Config.SamplesPerChunk = 1.0;
  return Config;
}

std::vector<char> readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(In)),
                           std::istreambuf_iterator<char>());
}

std::string tmpTracePath(const char *Tag) {
  return ::testing::TempDir() + "hotpath_" + Tag + ".mtrace";
}

/// A synthetic miss stream over two objects plus deliberate strays into
/// the unmapped guard gaps between allocations.
std::vector<uint64_t> makeMissStream(mem::DataObjectRegistry &Reg,
                                     mem::ObjectId A, mem::ObjectId B,
                                     size_t N, uint64_t Seed) {
  Xoshiro256 Rng(Seed);
  const mem::DataObject &ObjA = Reg.object(A);
  const mem::DataObject &ObjB = Reg.object(B);
  std::vector<uint64_t> Stream;
  Stream.reserve(N);
  for (size_t I = 0; I < N; ++I) {
    uint64_t Roll = Rng.nextBounded(100);
    if (Roll < 55)
      Stream.push_back(ObjA.va() + Rng.nextBounded(ObjA.sizeBytes()));
    else if (Roll < 95)
      Stream.push_back(ObjB.va() + Rng.nextBounded(ObjB.sizeBytes()));
    else // Guard-gap stray: attributable to no object.
      Stream.push_back(ObjA.va() + ObjA.mappedBytes() + 64 +
                       Rng.nextBounded(1024));
  }
  return Stream;
}

void expectProfilesEqual(const prof::ObjectProfile &Ref,
                         const prof::ObjectProfile &Got) {
  ASSERT_EQ(Ref.Samples.size(), Got.Samples.size());
  for (size_t C = 0; C < Ref.Samples.size(); ++C) {
    EXPECT_EQ(Ref.Samples[C], Got.Samples[C]) << "chunk " << C;
    // Bit-identical, not approximately equal: commit order preserves the
    // reference drain's floating-point accumulation order.
    EXPECT_EQ(Ref.EstimatedMisses[C], Got.EstimatedMisses[C]) << "chunk " << C;
  }
}

//===----------------------------------------------------------------------===//
// Profiler: batched selection vs the per-miss reference countdown.
//===----------------------------------------------------------------------===//

TEST(HotPathProfilerTest, BatchMatchesPerMissAcrossPeriodDoubling) {
  sim::Machine M(smallCacheTestbed());
  mem::DataObjectRegistry Reg(M);
  mem::ObjectId A =
      Reg.create("a", 2u << 20, mem::InitialPlacement::Slow).id();
  mem::ObjectId B =
      Reg.create("b", 1u << 20, mem::InitialPlacement::Slow).id();

  prof::SamplingProfiler Ref(Reg, fastAdaptConfig());
  prof::SamplingProfiler Batched(Reg, fastAdaptConfig());
  Ref.start(1);
  Batched.start(1);
  ASSERT_EQ(Ref.period(), 4u);

  // Enough misses for several budget crossings: 256 samples at period 4
  // is only 1024 misses, so a 200k stream doubles the period repeatedly,
  // including in the middle of batches.
  std::vector<uint64_t> Stream = makeMissStream(Reg, A, B, 200000, 42);
  for (uint64_t Va : Stream)
    Ref.notifyMissReference(Va);

  // Feed the same stream in randomly sized batches (including size 0 and
  // sizes far larger than the period) so stride arithmetic is exercised
  // across every batch-boundary phase.
  Xoshiro256 Rng(7);
  size_t Pos = 0;
  while (Pos < Stream.size()) {
    size_t N = Rng.nextBounded(4096);
    N = std::min(N, Stream.size() - Pos);
    Batched.notifyMissBatch(Stream.data() + Pos, N);
    Pos += N;
  }

  EXPECT_EQ(Ref.missesSeen(), Batched.missesSeen());
  EXPECT_EQ(Ref.sampleCount(), Batched.sampleCount());
  EXPECT_EQ(Ref.period(), Batched.period());
  EXPECT_GT(Ref.period(), Ref.initialPeriod()) << "test never adapted";
  expectProfilesEqual(Ref.profileFor(A), Batched.profileFor(A));
  expectProfilesEqual(Ref.profileFor(B), Batched.profileFor(B));
}

TEST(HotPathProfilerTest, InlineNotifyMissMatchesReference) {
  sim::Machine M(smallCacheTestbed());
  mem::DataObjectRegistry Reg(M);
  mem::ObjectId A =
      Reg.create("a", 1u << 20, mem::InitialPlacement::Slow).id();
  mem::ObjectId B =
      Reg.create("b", 1u << 20, mem::InitialPlacement::Slow).id();

  prof::SamplingProfiler Ref(Reg, fastAdaptConfig());
  prof::SamplingProfiler Inline(Reg, fastAdaptConfig());
  Ref.start(2);
  Inline.start(2);

  std::vector<uint64_t> Stream = makeMissStream(Reg, A, B, 50000, 9);
  for (uint64_t Va : Stream) {
    Ref.notifyMissReference(Va);
    Inline.notifyMiss(Va);
  }

  EXPECT_EQ(Ref.missesSeen(), Inline.missesSeen());
  EXPECT_EQ(Ref.sampleCount(), Inline.sampleCount());
  EXPECT_EQ(Ref.period(), Inline.period());
  expectProfilesEqual(Ref.profileFor(A), Inline.profileFor(A));
  expectProfilesEqual(Ref.profileFor(B), Inline.profileFor(B));
}

//===----------------------------------------------------------------------===//
// Registry: indexed attribution vs the linear reference walk.
//===----------------------------------------------------------------------===//

TEST(HotPathAttributionTest, IndexedMatchesLinearIncludingAfterDestroy) {
  sim::Machine M(smallCacheTestbed());
  mem::DataObjectRegistry Reg(M);
  std::vector<mem::ObjectId> Ids;
  for (int I = 0; I < 5; ++I)
    Ids.push_back(Reg.create("obj" + std::to_string(I), (I + 1) * 256 * 1024,
                             mem::InitialPlacement::Slow)
                      .id());

  uint64_t Lo = Reg.object(Ids.front()).va() - 8192;
  uint64_t Hi = Reg.object(Ids.back()).va() +
                Reg.object(Ids.back()).mappedBytes() + 8192;
  auto CheckSweep = [&](uint64_t Seed) {
    Xoshiro256 Rng(Seed);
    mem::AttributionHint Hint;
    for (int I = 0; I < 20000; ++I) {
      uint64_t Va = Lo + Rng.nextBounded(Hi - Lo);
      mem::Attribution Linear, Indexed;
      bool LinearOk = Reg.attribute(Va, Linear);
      bool IndexedOk = Reg.attributeIndexed(Va, Indexed, Hint);
      ASSERT_EQ(LinearOk, IndexedOk) << "va " << std::hex << Va;
      if (LinearOk) {
        EXPECT_EQ(Linear.Object, Indexed.Object);
        EXPECT_EQ(Linear.Chunk, Indexed.Chunk);
      }
    }
  };

  CheckSweep(1);
  // Destroying a middle object punches a hole in the index; the hole must
  // attribute to nothing and its neighbours must keep resolving.
  Reg.destroy(Ids[2]);
  CheckSweep(2);
  // A stale hint pointing at the rebuilt index must still be safe.
  Reg.destroy(Ids[0]);
  CheckSweep(3);
}

//===----------------------------------------------------------------------===//
// Trace writer: batch append produces byte-identical files.
//===----------------------------------------------------------------------===//

TEST(HotPathTraceTest, RecordBatchBytesIdenticalToPerEvent) {
  Xoshiro256 Rng(13);
  // Cross the writer's 64k-event flush threshold so batching interacts
  // with mid-stream flushes, not just the final one.
  std::vector<uint64_t> Events(100000);
  for (uint64_t &E : Events)
    E = Rng.next();

  std::string RefPath = tmpTracePath("ref");
  std::string BatchPath = tmpTracePath("batch");
  {
    prof::TraceWriter Ref;
    ASSERT_TRUE(Ref.open(RefPath));
    for (uint64_t E : Events)
      Ref.record(E);
    ASSERT_TRUE(Ref.finish());
  }
  {
    prof::TraceWriter Batch;
    ASSERT_TRUE(Batch.open(BatchPath));
    size_t Pos = 0;
    while (Pos < Events.size()) {
      size_t N = std::min<size_t>(Rng.nextBounded(30000), Events.size() - Pos);
      Batch.recordBatch(Events.data() + Pos, N);
      Pos += N;
    }
    ASSERT_TRUE(Batch.finish());
  }

  std::vector<char> RefBytes = readFileBytes(RefPath);
  std::vector<char> BatchBytes = readFileBytes(BatchPath);
  ASSERT_FALSE(RefBytes.empty());
  EXPECT_EQ(RefBytes, BatchBytes);
  std::remove(RefPath.c_str());
  std::remove(BatchPath.c_str());
}

//===----------------------------------------------------------------------===//
// Translation cache: transparent across page-table mutations.
//===----------------------------------------------------------------------===//

TEST(HotPathTranslationCacheTest, TransparentAcrossMutations) {
  sim::Machine M(smallCacheTestbed());
  mem::DataObjectRegistry Reg(M);
  mem::DataObject &Obj =
      Reg.create("graph", 8u << 20, mem::InitialPlacement::Slow);
  sim::PageTable &PT = M.pageTable();
  sim::TranslationCache Cache(PT);

  auto CheckSweep = [&](uint64_t Seed) {
    Xoshiro256 Rng(Seed);
    for (int I = 0; I < 5000; ++I) {
      // Revisit a small set of pages so the cache actually serves hits,
      // plus strays past the mapping for negative lookups.
      uint64_t Va = Obj.va() + Rng.nextBounded(Obj.mappedBytes() + 16384);
      sim::Translation Cached, Direct;
      bool CachedOk = Cache.translate(Va, Cached);
      bool DirectOk = PT.translate(Va, Direct);
      ASSERT_EQ(CachedOk, DirectOk) << "va " << std::hex << Va;
      if (CachedOk) {
        EXPECT_EQ(Cached.PageVa, Direct.PageVa);
        EXPECT_EQ(Cached.PageBytes, Direct.PageBytes);
        EXPECT_EQ(Cached.FrameBase, Direct.FrameBase);
        EXPECT_EQ(Cached.Tier, Direct.Tier);
      }
    }
  };

  CheckSweep(1);
  EXPECT_GT(Cache.hits(), 0u);

  // mbind-style single-page moves (these split huge pages) interleaved
  // with full-range ATMem remaps; every mutation bumps the epoch and the
  // next cached lookup must reflect the new table.
  Xoshiro256 Rng(99);
  for (int Round = 0; Round < 4; ++Round) {
    for (int I = 0; I < 8; ++I) {
      uint64_t PageVa =
          Obj.va() + (Rng.nextBounded(Obj.mappedBytes()) & ~uint64_t{4095});
      PT.movePage(PageVa, Round % 2 ? sim::TierId::Slow : sim::TierId::Fast);
    }
    CheckSweep(100 + Round);
    ASSERT_TRUE(PT.remapRange(Obj.va(), Obj.mappedBytes(),
                              Round % 2 ? sim::TierId::Fast : sim::TierId::Slow,
                              /*PreferHuge=*/true));
    CheckSweep(200 + Round);
  }
}

//===----------------------------------------------------------------------===//
// CacheSim / TLB: split probe+victim scans vs the fused reference loops.
//===----------------------------------------------------------------------===//

/// The pre-PR fused LLC loop, kept as an executable specification: walk
/// the set once, noting a hit or accumulating the victim (invalid way
/// preferred — last invalid wins via VictimStamp 0 — else strictly
/// minimal stamp, first occurrence).
class ReferenceLru {
public:
  ReferenceLru(const sim::CacheConfig &Config)
      : LineBytes(Config.LineBytes), Ways(Config.Ways),
        Sets(std::max<uint32_t>(
            1, static_cast<uint32_t>(Config.SizeBytes /
                                     (uint64_t{Config.Ways} *
                                      Config.LineBytes)))),
        Tags(uint64_t{Sets} * Ways, ~0ull),
        Stamps(uint64_t{Sets} * Ways, 0), Valid(uint64_t{Sets} * Ways, 0) {}

  bool access(uint64_t Va) {
    uint64_t Line = Va / LineBytes;
    uint64_t Base = uint64_t{static_cast<uint32_t>(Line % Sets)} * Ways;
    ++Clock;
    uint32_t VictimIdx = 0;
    uint64_t VictimStamp = ~0ull;
    for (uint32_t W = 0; W < Ways; ++W) {
      uint64_t I = Base + W;
      if (Valid[I] && Tags[I] == Line) {
        Stamps[I] = Clock;
        return true;
      }
      if (!Valid[I]) {
        VictimIdx = W;
        VictimStamp = 0;
      } else if (Stamps[I] < VictimStamp) {
        VictimIdx = W;
        VictimStamp = Stamps[I];
      }
    }
    uint64_t I = Base + VictimIdx;
    Tags[I] = Line;
    Stamps[I] = Clock;
    Valid[I] = 1;
    return false;
  }

private:
  uint32_t LineBytes, Ways, Sets;
  uint64_t Clock = 0;
  std::vector<uint64_t> Tags, Stamps;
  std::vector<uint8_t> Valid;
};

TEST(HotPathCacheSimTest, SplitProbeMatchesFusedReference) {
  sim::CacheConfig Config;
  Config.SizeBytes = 1 << 14; // 64 sets x 4 ways: heavy conflict traffic.
  Config.Ways = 4;
  Config.LineBytes = 64;
  sim::CacheSim Cache(Config);
  ReferenceLru Ref(Config);

  Xoshiro256 Rng(5);
  for (int I = 0; I < 200000; ++I) {
    // Mix of a hot window (hits + LRU churn) and cold strides (victim
    // selection among invalid and valid ways).
    uint64_t Va = Rng.nextBounded(2) ? Rng.nextBounded(1 << 15)
                                     : Rng.nextBounded(1ull << 26);
    ASSERT_EQ(Ref.access(Va), Cache.access(Va)) << "access " << I;
  }
  EXPECT_GT(Cache.hits(), 0u);
  EXPECT_GT(Cache.misses(), 0u);
}

/// The pre-PR fused TLB set walk: hit updates the stamp; otherwise the
/// victim is the last invalid way, else the lowest-stamp valid way
/// (stamps compared only while the victim is still valid).
class ReferenceTlbArray {
public:
  ReferenceTlbArray(uint32_t Entries, uint32_t Ways, uint64_t PageBytes)
      : Ways(Ways), Sets(std::max<uint32_t>(1, Entries / Ways)),
        PageBytes(PageBytes), Slots(uint64_t{Sets} * Ways) {}

  bool access(uint64_t Va) {
    uint64_t Vpn = Va / PageBytes;
    uint64_t Base = uint64_t{static_cast<uint32_t>(Vpn % Sets)} * Ways;
    ++Clock;
    Way *Victim = &Slots[Base];
    for (uint32_t W = 0; W < Ways; ++W) {
      Way &Entry = Slots[Base + W];
      if (Entry.Valid && Entry.Vpn == Vpn) {
        Entry.Stamp = Clock;
        return true;
      }
      if (!Entry.Valid)
        Victim = &Entry;
      else if (Victim->Valid && Entry.Stamp < Victim->Stamp)
        Victim = &Entry;
    }
    Victim->Vpn = Vpn;
    Victim->Stamp = Clock;
    Victim->Valid = true;
    return false;
  }

private:
  struct Way {
    uint64_t Vpn = ~0ull;
    uint64_t Stamp = 0;
    bool Valid = false;
  };
  uint32_t Ways, Sets;
  uint64_t PageBytes;
  uint64_t Clock = 0;
  std::vector<Way> Slots;
};

TEST(HotPathTlbTest, SplitProbeMatchesFusedReference) {
  sim::TlbConfig Config; // 64x4 small, 32x4 huge: the default geometry.
  sim::Tlb Tlb(Config);
  ReferenceTlbArray RefSmall(Config.SmallEntries, Config.SmallWays, 4096);
  ReferenceTlbArray RefHuge(Config.HugeEntries, Config.HugeWays, 2u << 20);

  Xoshiro256 Rng(17);
  for (int I = 0; I < 200000; ++I) {
    bool Huge = Rng.nextBounded(4) == 0;
    uint64_t Va = Rng.nextBounded(2) ? Rng.nextBounded(1u << 20)
                                     : Rng.nextBounded(1ull << 32);
    bool RefHit = Huge ? RefHuge.access(Va) : RefSmall.access(Va);
    ASSERT_EQ(RefHit, Tlb.access(Va, Huge ? 2u << 20 : 4096)) << "access " << I;
  }
  EXPECT_GT(Tlb.hits(), 0u);
  EXPECT_GT(Tlb.misses(), 0u);
}

//===----------------------------------------------------------------------===//
// SimContext: recycled miss buffers keep their high-water capacity.
//===----------------------------------------------------------------------===//

TEST(HotPathContextTest, MissBufferRecycleKeepsHighWaterCapacity) {
  sim::CacheConfig Shard;
  Shard.SizeBytes = 1 << 12;
  Shard.Ways = 4;
  core::SimContext Ctx(Shard);
  Ctx.setBufferMisses(true);

  Ctx.beginIteration();
  for (uint64_t I = 0; I < 10000; ++I)
    Ctx.missBuffer().push_back(I);
  Ctx.recycleMissBuffer();
  EXPECT_TRUE(Ctx.missBuffer().empty());

  Ctx.beginIteration();
  EXPECT_GE(Ctx.missBuffer().capacity(), 10000u)
      << "beginIteration must pre-reserve the previous drain volume";
}

//===----------------------------------------------------------------------===//
// End to end: the batched drain vs the reference drain on the same
// buffered miss stream.
//===----------------------------------------------------------------------===//

/// Config for a SimThreads=2 runtime whose shards miss heavily and whose
/// profiler doubles its period inside the profiled iterations.
core::RuntimeConfig drainTestConfig(bool Batched) {
  core::RuntimeConfig Config;
  Config.Machine = smallCacheTestbed();
  Config.Profiler = fastAdaptConfig();
  Config.SimThreads = 2;
  Config.BatchedDrain = Batched;
  return Config;
}

/// Runs the drain-equivalence scenario. SimThreads>1 miss streams are not
/// run-to-run deterministic (dynamic chunk scheduling), so two
/// independent executions cannot be compared; instead the kernel runs
/// once on the batched runtime and its buffered shard state is injected
/// verbatim into the reference runtime before both drain.
TEST(HotPathDrainTest, BatchedDrainMatchesReferenceDrain) {
  core::Runtime Rt1(drainTestConfig(/*Batched=*/true));
  core::Runtime Rt2(drainTestConfig(/*Batched=*/false));

  // Identical allocation sequences produce identical VAs (the address
  // space is a deterministic bump allocator), so buffers carry over.
  core::TrackedArray<uint64_t> Arr1 = Rt1.allocate<uint64_t>("x", 1u << 19);
  core::TrackedArray<uint64_t> Arr2 = Rt2.allocate<uint64_t>("x", 1u << 19);
  ASSERT_EQ(Arr1.va(), Arr2.va());
  core::TrackedArray<uint32_t> Aux1 = Rt1.allocate<uint32_t>("y", 1u << 18);
  core::TrackedArray<uint32_t> Aux2 = Rt2.allocate<uint32_t>("y", 1u << 18);
  ASSERT_EQ(Aux1.va(), Aux2.va());

  sim::Tlb Tlb1 = Rt1.machine().makeTlb();
  sim::Tlb Tlb2 = Rt2.machine().makeTlb();
  Rt1.setReplayTlb(&Tlb1);
  Rt2.setReplayTlb(&Tlb2);

  std::string Path1 = tmpTracePath("drain1");
  std::string Path2 = tmpTracePath("drain2");
  prof::TraceWriter Trace1, Trace2;
  ASSERT_TRUE(Trace1.open(Path1));
  ASSERT_TRUE(Trace2.open(Path2));
  Rt1.setMissTrace(&Trace1);
  Rt2.setMissTrace(&Trace2);

  Rt1.profilingStart();
  Rt2.profilingStart();

  for (int Iter = 0; Iter < 3; ++Iter) {
    Rt1.beginIteration();
    Rt2.beginIteration();

    // Pseudo-random gather over both arrays; enough misses per iteration
    // (~hundreds of thousands) to push sample counts past the budget and
    // exercise the parallel-attribution threshold.
    Rt1.parallelTracked(0, 1u << 18, [&](uint32_t, uint64_t B, uint64_t E) {
      uint64_t State = 0x9e3779b97f4a7c15ull + Iter;
      for (uint64_t I = B; I < E; ++I) {
        State = State * 6364136223846793005ull + 1442695040888963407ull;
        uint64_t V = Arr1[(State >> 11) & ((1u << 19) - 1)];
        // Odd-multiplier index: a bijection of I over the 2^18 range, so
        // the scattered writes stay race-free across pool workers while
        // still walking Aux pseudo-randomly; V feeds the value so the
        // gather load cannot be optimized away.
        Aux1[(I * 6364136223846793005ull) & ((1u << 18) - 1)] =
            static_cast<uint32_t>(V ^ I);
      }
    });

    for (uint32_t T = 0; T < Rt1.simThreads(); ++T) {
      ASSERT_FALSE(Rt1.simContext(T).missBuffer().empty());
      Rt2.simContext(T).missBuffer() = Rt1.simContext(T).missBuffer();
      Rt2.simContext(T).stats() = Rt1.simContext(T).stats();
    }

    double Sec1 = Rt1.endIteration();
    double Sec2 = Rt2.endIteration();
    EXPECT_EQ(Sec1, Sec2) << "iteration " << Iter;

    const sim::AccessStats &S1 = Rt1.iterationStats();
    const sim::AccessStats &S2 = Rt2.iterationStats();
    EXPECT_EQ(S1.Accesses, S2.Accesses);
    EXPECT_EQ(S1.LlcHits, S2.LlcHits);
    EXPECT_EQ(S1.TierMisses[0], S2.TierMisses[0]);
    EXPECT_EQ(S1.TierMisses[1], S2.TierMisses[1]);
    EXPECT_EQ(Tlb1.hits(), Tlb2.hits()) << "iteration " << Iter;
    EXPECT_EQ(Tlb1.misses(), Tlb2.misses()) << "iteration " << Iter;
  }

  Rt1.profilingStop();
  Rt2.profilingStop();

  prof::SamplingProfiler &P1 = Rt1.profiler();
  prof::SamplingProfiler &P2 = Rt2.profiler();
  EXPECT_EQ(P1.missesSeen(), P2.missesSeen());
  EXPECT_GT(P1.missesSeen(), 0u);
  EXPECT_EQ(P1.sampleCount(), P2.sampleCount());
  EXPECT_EQ(P1.period(), P2.period());
  EXPECT_GT(P1.period(), P1.initialPeriod())
      << "workload never crossed the sample budget";
  expectProfilesEqual(P2.profileFor(Arr2.objectId()),
                      P1.profileFor(Arr1.objectId()));
  expectProfilesEqual(P2.profileFor(Aux2.objectId()),
                      P1.profileFor(Aux1.objectId()));

  ASSERT_TRUE(Trace1.finish());
  ASSERT_TRUE(Trace2.finish());
  std::vector<char> Bytes1 = readFileBytes(Path1);
  std::vector<char> Bytes2 = readFileBytes(Path2);
  ASSERT_FALSE(Bytes1.empty());
  EXPECT_EQ(Bytes1, Bytes2) << "miss-trace bytes diverged";
  std::remove(Path1.c_str());
  std::remove(Path2.c_str());
}

/// Same injection scheme, but the receiving runtime is also the batched
/// pipeline with migrations between iterations, checking the cached TLB
/// replay against the uncached reference when the page table mutates
/// mid-window (the epoch-invalidation path end to end).
TEST(HotPathDrainTest, CachedTlbReplayTracksPageTableMutations) {
  core::Runtime Rt1(drainTestConfig(/*Batched=*/true));
  core::Runtime Rt2(drainTestConfig(/*Batched=*/false));
  core::TrackedArray<uint64_t> Arr1 = Rt1.allocate<uint64_t>("x", 1u << 19);
  core::TrackedArray<uint64_t> Arr2 = Rt2.allocate<uint64_t>("x", 1u << 19);
  ASSERT_EQ(Arr1.va(), Arr2.va());

  sim::Tlb Tlb1 = Rt1.machine().makeTlb();
  sim::Tlb Tlb2 = Rt2.machine().makeTlb();
  Rt1.setReplayTlb(&Tlb1);
  Rt2.setReplayTlb(&Tlb2);

  for (int Iter = 0; Iter < 3; ++Iter) {
    Rt1.beginIteration();
    Rt2.beginIteration();
    Rt1.parallelTracked(0, 1u << 17, [&](uint32_t, uint64_t B, uint64_t E) {
      // Every chunk seeds the same LCG, so two chunks hit the same index
      // sequence: reads only, to keep cross-worker accesses race-free
      // (the misses driving the replay don't care about stores).
      uint64_t State = 0xdeadbeef + Iter;
      uint64_t Sink = 0;
      for (uint64_t I = B; I < E; ++I) {
        State = State * 6364136223846793005ull + 1442695040888963407ull;
        Sink ^= Arr1[(State >> 13) & ((1u << 19) - 1)];
      }
      if (Sink == 0x5ca1ab1e)
        std::fprintf(stderr, "sink\n");
    });
    for (uint32_t T = 0; T < Rt1.simThreads(); ++T) {
      Rt2.simContext(T).missBuffer() = Rt1.simContext(T).missBuffer();
      Rt2.simContext(T).stats() = Rt1.simContext(T).stats();
    }
    Rt1.endIteration();
    Rt2.endIteration();
    ASSERT_EQ(Tlb1.hits(), Tlb2.hits()) << "iteration " << Iter;
    ASSERT_EQ(Tlb1.misses(), Tlb2.misses()) << "iteration " << Iter;

    // Mutate both page tables identically between iterations: the cached
    // replay must observe the new mappings, not yesterday's.
    uint64_t Quarter = (Rt1.registry().object(Arr1.objectId()).mappedBytes() /
                        4) & ~uint64_t{2097151};
    if (Quarter != 0) {
      sim::TierId To = Iter % 2 ? sim::TierId::Slow : sim::TierId::Fast;
      ASSERT_TRUE(Rt1.machine().pageTable().remapRange(Arr1.va(), Quarter, To,
                                                       /*PreferHuge=*/true));
      ASSERT_TRUE(Rt2.machine().pageTable().remapRange(Arr2.va(), Quarter, To,
                                                       /*PreferHuge=*/true));
    }
  }
}

//===----------------------------------------------------------------------===//
// SIMD probe and huge-page translation primitives: the vectorized 4-way
// tag compare and the replay loop's one-load huge-map probe, each pinned
// against the scalar semantics it shortcuts.
//===----------------------------------------------------------------------===//

TEST(HotPathSimdProbeTest, ProbeWay4MatchesScalarFirstMatchScan) {
  // Half-match adversaries for the SSE2 32-bit emulation: lanes agreeing
  // in exactly one 32-bit half must not report equality.
  const uint64_t Lo = 0x00000001'00000002ull;
  {
    uint64_t Row[4] = {Lo, 0x00000009'00000002ull, 0x00000001'00000003ull,
                       ~0ull};
    EXPECT_EQ(sim::probeWay4(Row, Lo), 0);
    EXPECT_EQ(sim::probeWay4(Row, 0x00000009'00000003ull), -1);
  }
  // Duplicate keys: the contract is the LOWEST matching way, same as a
  // first-match scalar scan.
  {
    uint64_t Row[4] = {7, 9, 9, 9};
    EXPECT_EQ(sim::probeWay4(Row, 9), 1);
  }

  Xoshiro256 Rng(23);
  for (int I = 0; I < 200000; ++I) {
    uint64_t Row[4];
    // A small key universe forces frequent matches in every way position
    // (and occasional duplicates); ~0 mimics invalid-slot sentinels.
    for (uint64_t &Slot : Row)
      Slot = Rng.nextBounded(8) == 0 ? ~0ull : Rng.nextBounded(12);
    uint64_t Key = Rng.nextBounded(16) == 0 ? ~0ull : Rng.nextBounded(12);
    int Ref = -1;
    for (int W = 0; W < 4 && Ref < 0; ++W)
      if (Row[W] == Key)
        Ref = W;
    ASSERT_EQ(sim::probeWay4(Row, Key), Ref)
        << Row[0] << "," << Row[1] << "," << Row[2] << "," << Row[3]
        << " key " << Key;
  }
}

TEST(HotPathTlbTest, DirectArrayAccessVpnMatchesDispatchedAccess) {
  // The batched drain resolves the page size once per translation run and
  // feeds the run's misses straight to the owning array via accessVpn();
  // verdicts and counters must be exactly those of the dispatched
  // per-access path.
  sim::TlbConfig Config;
  sim::Tlb Dispatched(Config);
  sim::Tlb Direct(Config);

  Xoshiro256 Rng(31);
  for (int I = 0; I < 200000; ++I) {
    bool Huge = Rng.nextBounded(4) == 0;
    uint64_t PageBytes = Huge ? 2u << 20 : 4096;
    uint64_t Va = Rng.nextBounded(2) ? Rng.nextBounded(1u << 20)
                                     : Rng.nextBounded(1ull << 32);
    bool RefHit = Dispatched.access(Va, PageBytes);
    bool GotHit = Huge ? Direct.hugeArray().accessVpn(Va >> 21)
                       : Direct.smallArray().accessVpn(Va >> 12);
    ASSERT_EQ(RefHit, GotHit) << "access " << I;
  }
  EXPECT_EQ(Dispatched.hits(), Direct.hits());
  EXPECT_EQ(Dispatched.misses(), Direct.misses());
  EXPECT_GT(Direct.hits(), 0u);
  EXPECT_GT(Direct.misses(), 0u);
}

TEST(HotPathTranslationCacheTest, IsCachedHugeAgreesWithPageTable) {
  sim::Machine M(smallCacheTestbed());
  mem::DataObjectRegistry Reg(M);
  mem::DataObject &Obj =
      Reg.create("graph", 8u << 20, mem::InitialPlacement::Slow);
  sim::PageTable &PT = M.pageTable();
  sim::TranslationCache Cache(PT);

  // Warm-then-probe sweep: after translate(Va) filled the slot for a
  // live mapping, isCachedHuge must say "huge" exactly when the page
  // table maps the address with a 2 MiB page.
  auto CheckSweep = [&](uint64_t Seed) {
    Xoshiro256 Rng(Seed);
    for (int I = 0; I < 3000; ++I) {
      uint64_t Va = Obj.va() + Rng.nextBounded(Obj.mappedBytes());
      sim::Translation Direct;
      ASSERT_TRUE(PT.translate(Va, Direct));
      sim::Translation Cached;
      ASSERT_TRUE(Cache.translate(Va, Cached));
      EXPECT_EQ(Cache.isCachedHuge(Va >> 21), Direct.PageBytes == (2u << 20))
          << "va " << std::hex << Va;
    }
  };

  CheckSweep(3);
  // The batched replay derives its huge-hint vector with probeHugeBatch;
  // every lane must agree with a scalar isCachedHuge probe of the same
  // VPN, including strays far past the mapping (cold slots).
  {
    Xoshiro256 BatchRng(55);
    std::vector<uint64_t> Vpns;
    for (int I = 0; I < 4096; ++I) {
      uint64_t Va = Obj.va() + BatchRng.nextBounded(Obj.mappedBytes() * 2);
      Vpns.push_back(Va >> 21);
    }
    std::vector<uint8_t> Hits(Vpns.size());
    Cache.probeHugeBatch(Vpns.data(), Vpns.size(), Hits.data());
    for (size_t I = 0; I < Vpns.size(); ++I)
      ASSERT_EQ(Hits[I] != 0, Cache.isCachedHuge(Vpns[I])) << "lane " << I;
  }
  // Split pages out of the huge mapping (mbind-style single-page moves),
  // then rebuild huge pages with a full-range remap; every mutation bumps
  // the epoch, and translate()'s revalidation must keep the one-load
  // probe truthful — a stale huge tag after a split would misroute the
  // whole 512-page region in the replay loop.
  Xoshiro256 Rng(77);
  for (int Round = 0; Round < 3; ++Round) {
    for (int I = 0; I < 8; ++I) {
      uint64_t PageVa =
          Obj.va() + (Rng.nextBounded(Obj.mappedBytes()) & ~uint64_t{4095});
      PT.movePage(PageVa, Round % 2 ? sim::TierId::Fast : sim::TierId::Slow);
    }
    Cache.revalidate();
    CheckSweep(100 + Round);
    ASSERT_TRUE(PT.remapRange(Obj.va(), Obj.mappedBytes(),
                              Round % 2 ? sim::TierId::Slow : sim::TierId::Fast,
                              /*PreferHuge=*/true));
    Cache.revalidate();
    CheckSweep(200 + Round);
  }
}

//===----------------------------------------------------------------------===//
// Sharded stage 1: the arithmetic countdown advance vs the scanning
// selection it lets the drain parallelize.
//===----------------------------------------------------------------------===//

/// advanceSelection(S, N) must land on exactly the state that scanning N
/// misses leaves behind, and per-chunk scans started from advanced states
/// must splice into the one-pass selection — this is the whole
/// correctness argument for the parallel per-shard pre-scan.
TEST(HotPathProfilerTest, AdvanceSelectionMatchesScanAcrossRandomSplits) {
  sim::Machine M(smallCacheTestbed());
  mem::DataObjectRegistry Reg(M);
  mem::ObjectId A =
      Reg.create("a", 2u << 20, mem::InitialPlacement::Slow).id();
  mem::ObjectId B =
      Reg.create("b", 1u << 20, mem::InitialPlacement::Slow).id();
  prof::SamplingProfiler P(Reg, fastAdaptConfig());
  P.start(1);

  std::vector<uint64_t> Stream = makeMissStream(Reg, A, B, 120000, 61);
  Xoshiro256 Rng(67);
  for (int Trial = 0; Trial < 40; ++Trial) {
    size_t Len = 1 + Rng.nextBounded(Stream.size());

    prof::SelectionState Full = P.selectionState();
    std::vector<prof::PendingSample> FullOut;
    P.selectSamplesFrom(Full, Stream.data(), Len, FullOut);

    prof::SelectionState Adv = P.selectionState();
    std::vector<prof::PendingSample> Spliced;
    size_t Pos = 0;
    while (Pos < Len) {
      // Chunk sizes from 0 (empty shard) to far beyond the period.
      size_t N = std::min(Len - Pos, size_t{Rng.nextBounded(9000)});
      prof::SelectionState Scanned = Adv;
      P.selectSamplesFrom(Scanned, Stream.data() + Pos, N, Spliced);
      P.advanceSelection(Adv, N);
      ASSERT_EQ(Adv == Scanned, true)
          << "trial " << Trial << " pos " << Pos << " n " << N;
      Pos += N;
    }
    ASSERT_EQ(Adv == Full, true) << "trial " << Trial;
    ASSERT_EQ(Spliced.size(), FullOut.size()) << "trial " << Trial;
    for (size_t I = 0; I < FullOut.size(); ++I) {
      EXPECT_EQ(Spliced[I].Va, FullOut[I].Va) << "sample " << I;
      EXPECT_EQ(Spliced[I].PeriodInForce, FullOut[I].PeriodInForce)
          << "sample " << I;
    }
  }
}

//===----------------------------------------------------------------------===//
// Batched SIMD primitives vs their scalar oracles.
//===----------------------------------------------------------------------===//

TEST(HotPathSimdProbeTest, BatchShiftRightMatchesScalar) {
  Xoshiro256 Rng(41);
  for (int Trial = 0; Trial < 500; ++Trial) {
    size_t N = Rng.nextBounded(260); // covers 0, tails, and full vectors
    uint32_t Shift =
        Trial % 3 == 0 ? 21 : (Trial % 3 == 1 ? 12 : 1 + Rng.nextBounded(63));
    std::vector<uint64_t> Vas(N);
    for (uint64_t &V : Vas)
      V = Rng.next();
    std::vector<uint64_t> Ref(N, ~0ull), Got(N, 0);
    sim::batchShiftRightScalar(Vas.data(), N, Shift, Ref.data());
    sim::batchShiftRight(Vas.data(), N, Shift, Got.data());
    ASSERT_EQ(Ref, Got) << "trial " << Trial << " shift " << Shift;
  }
}

TEST(HotPathSimdProbeTest, GatherProbeTagsMatchesScalar) {
  Xoshiro256 Rng(43);
  for (int Trial = 0; Trial < 300; ++Trial) {
    // Direct-mapped {Tag, Payload} slot arrays from 2 to 512 entries.
    size_t Slots = size_t{1} << (1 + Rng.nextBounded(9));
    uint64_t Mask = Slots - 1;
    std::vector<uint64_t> Pairs(Slots * 2);
    for (size_t S = 0; S < Slots; ++S) {
      // Tags stored at their own index (as translate() maintains), with
      // ~0 empty-slot sentinels; payloads are noise the probe must skip.
      Pairs[2 * S] = Rng.nextBounded(4) == 0
                         ? ~0ull
                         : S + Slots * Rng.nextBounded(1u << 20);
      Pairs[2 * S + 1] = Rng.next();
    }
    size_t N = Rng.nextBounded(130);
    std::vector<uint64_t> Keys(N);
    for (uint64_t &K : Keys)
      K = Rng.nextBounded(2) ? Pairs[2 * Rng.nextBounded(Slots)] // planted
                             : Rng.nextBounded(Slots << 20);     // random
    std::vector<uint8_t> Ref(N, 2), Got(N, 3);
    sim::gatherProbeTagsScalar(Pairs.data(), Mask, Keys.data(), N, Ref.data());
    sim::gatherProbeTags(Pairs.data(), Mask, Keys.data(), N, Got.data());
    ASSERT_EQ(Ref, Got) << "trial " << Trial << " slots " << Slots;
  }
}

//===----------------------------------------------------------------------===//
// Sharded drain matrix: the topology-sharded batched pipeline vs the
// reference drain across shard counts, host widths, and (mocked) NUMA
// layouts — identical injected miss streams, bit-identical everything.
//===----------------------------------------------------------------------===//

/// Drains \p Iterations injected per-shard miss streams through a batched
/// runtime configured with \p Topo / \p HostThreads (thresholds forced to
/// 1 so every parallel and overlapped path runs even for small batches)
/// and through the reference per-miss runtime, then asserts bit-identical
/// iteration stats, TLB counters, profiles, and miss-trace bytes.
void runShardedDrainCase(uint32_t SimThreads,
                         std::shared_ptr<const support::Topology> Topo,
                         uint32_t HostThreads, const std::string &Tag,
                         uint64_t GatherMinBytes = 0) {
  SCOPED_TRACE(Tag);
  core::RuntimeConfig RefCfg;
  RefCfg.Machine = smallCacheTestbed();
  RefCfg.Profiler = fastAdaptConfig();
  RefCfg.SimThreads = SimThreads;
  RefCfg.BatchedDrain = false;

  core::RuntimeConfig OptCfg = RefCfg;
  OptCfg.BatchedDrain = true;
  OptCfg.TopologyOverride = std::move(Topo);
  OptCfg.HostThreadsOverride = HostThreads;
  OptCfg.ParallelSelectionThreshold = 1;
  OptCfg.ParallelAttributionThreshold = 1;
  // 0 forces the gather-pipelined stage-4 replay even for these small
  // mapped sets; the matrix also pins ~0 (scalar run-skip loop) so both
  // sides of the adaptive gate face the reference oracle.
  OptCfg.GatherReplayMinMappedBytes = GatherMinBytes;

  core::Runtime Ref(RefCfg);
  core::Runtime Opt(OptCfg);
  core::TrackedArray<uint64_t> ArrR = Ref.allocate<uint64_t>("x", 1u << 18);
  core::TrackedArray<uint64_t> ArrO = Opt.allocate<uint64_t>("x", 1u << 18);
  ASSERT_EQ(ArrR.va(), ArrO.va());
  core::TrackedArray<uint32_t> AuxR = Ref.allocate<uint32_t>("y", 1u << 17);
  core::TrackedArray<uint32_t> AuxO = Opt.allocate<uint32_t>("y", 1u << 17);
  ASSERT_EQ(AuxR.va(), AuxO.va());

  sim::Tlb TlbR = Ref.machine().makeTlb();
  sim::Tlb TlbO = Opt.machine().makeTlb();
  Ref.setReplayTlb(&TlbR);
  Opt.setReplayTlb(&TlbO);

  std::string PathR = tmpTracePath(("shard_ref_" + Tag).c_str());
  std::string PathO = tmpTracePath(("shard_opt_" + Tag).c_str());
  prof::TraceWriter TraceR, TraceO;
  ASSERT_TRUE(TraceR.open(PathR));
  ASSERT_TRUE(TraceO.open(PathO));
  Ref.setMissTrace(&TraceR);
  Opt.setMissTrace(&TraceO);

  Ref.profilingStart();
  Opt.profilingStart();

  for (int Iter = 0; Iter < 2; ++Iter) {
    Ref.beginIteration();
    Opt.beginIteration();
    if (SimThreads == 1) {
      // The serial engine has no shard buffers to inject into — misses
      // reach the profiler inline — so drive both runtimes with the same
      // deterministic gather instead.
      Xoshiro256 Rng(500 + Iter);
      for (int I = 0; I < 60000; ++I) {
        uint64_t Idx = Rng.nextBounded(1u << 18);
        volatile uint64_t SinkR = ArrR[Idx];
        volatile uint64_t SinkO = ArrO[Idx];
        (void)SinkR;
        (void)SinkO;
      }
    } else {
      for (uint32_t T = 0; T < SimThreads; ++T) {
        std::vector<uint64_t> Stream =
            makeMissStream(Opt.registry(), ArrO.objectId(), AuxO.objectId(),
                           30000, 1000 + Iter * 64 + T);
        Ref.simContext(T).missBuffer() = Stream;
        Opt.simContext(T).missBuffer() = std::move(Stream);
      }
    }
    Ref.endIteration();
    Opt.endIteration();
    ASSERT_EQ(TlbR.hits(), TlbO.hits()) << "iteration " << Iter;
    ASSERT_EQ(TlbR.misses(), TlbO.misses()) << "iteration " << Iter;
    const sim::AccessStats &SR = Ref.iterationStats();
    const sim::AccessStats &SO = Opt.iterationStats();
    EXPECT_EQ(SR.Accesses, SO.Accesses);
    EXPECT_EQ(SR.LlcHits, SO.LlcHits);
  }

  Ref.profilingStop();
  Opt.profilingStop();

  prof::SamplingProfiler &PR = Ref.profiler();
  prof::SamplingProfiler &PO = Opt.profiler();
  EXPECT_EQ(PR.missesSeen(), PO.missesSeen());
  EXPECT_GT(PR.missesSeen(), 0u);
  EXPECT_EQ(PR.sampleCount(), PO.sampleCount());
  EXPECT_EQ(PR.period(), PO.period());
  EXPECT_GT(PR.period(), PR.initialPeriod())
      << "stream never crossed the sample budget";
  expectProfilesEqual(PR.profileFor(ArrR.objectId()),
                      PO.profileFor(ArrO.objectId()));
  expectProfilesEqual(PR.profileFor(AuxR.objectId()),
                      PO.profileFor(AuxO.objectId()));

  ASSERT_TRUE(TraceR.finish());
  ASSERT_TRUE(TraceO.finish());
  std::vector<char> BytesR = readFileBytes(PathR);
  std::vector<char> BytesO = readFileBytes(PathO);
  ASSERT_FALSE(BytesR.empty());
  EXPECT_EQ(BytesR, BytesO) << "miss-trace bytes diverged";
  std::remove(PathR.c_str());
  std::remove(PathO.c_str());
}

TEST(HotPathShardedDrainTest, MatrixMatchesReferenceDrain) {
  auto Single = std::make_shared<support::Topology>(
      support::Topology::singleNode(4));
  auto Multi = std::make_shared<support::Topology>(
      support::Topology::fromNodeCpus({{0, 1}, {2, 3}}));
  // Asymmetric layout: node 0 narrower than node 1, cpu ids with a hole —
  // shard→node block distribution must still be total and stable.
  auto Asym = std::make_shared<support::Topology>(
      support::Topology::fromNodeCpus({{0}, {2, 3}}));
  for (uint32_t SimThreads : {1u, 2u, 4u, 8u}) {
    std::string S = std::to_string(SimThreads);
    runShardedDrainCase(SimThreads, Single, 4, "t" + S + "_single4");
    runShardedDrainCase(SimThreads, Multi, 4, "t" + S + "_multi4");
    runShardedDrainCase(SimThreads, Asym, 4, "t" + S + "_asym4");
    // Single-core host: every parallel gate stays off; the sharded
    // runtime must degrade to exactly the serial batched pipeline.
    runShardedDrainCase(SimThreads, Single, 1, "t" + S + "_host1");
    // Small-working-set side of the adaptive stage-4 gate: the scalar
    // run-skip replay loop, still against the same reference oracle.
    runShardedDrainCase(SimThreads, Multi, 4, "t" + S + "_scalar_replay",
                        ~0ull);
  }
}

} // namespace
