//===----------------------------------------------------------------------===//
// Fuzz-style robustness tests for the telemetry JSON parser: malformed,
// truncated, deeply nested, and randomly generated inputs must produce a
// clean error result — never a crash, an abort, or unbounded recursion.
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

#include <iterator>
#include <string>

using namespace atmem;
using namespace atmem::obs;

namespace {

/// Parses \p Text expecting a clean failure with a diagnostic.
void expectParseError(const std::string &Text) {
  JsonValue Doc;
  std::string Error;
  EXPECT_FALSE(parseJson(Text, Doc, &Error)) << Text;
  EXPECT_FALSE(Error.empty()) << Text;
}

TEST(JsonFuzzTest, ValidDocumentsParse) {
  const char *Good[] = {
      "null",
      "true",
      "false",
      "0",
      "-12.5e3",
      "\"text with \\\" escape\"",
      "[]",
      "{}",
      "[1, 2, [3, {\"k\": null}]]",
      "{\"a\": {\"b\": [true, 1e-9, \"\\u0041\"]}}",
  };
  for (const char *Text : Good) {
    JsonValue Doc;
    std::string Error;
    EXPECT_TRUE(parseJson(Text, Doc, &Error)) << Text << ": " << Error;
  }
}

TEST(JsonFuzzTest, MalformedCorpusErrorsCleanly) {
  const char *Bad[] = {
      "",
      "   ",
      "nul",
      "truth",
      "+1",
      "01",
      "1.",
      "1e",
      "1e+",
      "-",
      "\"unterminated",
      "\"bad \\q escape\"",
      "\"trunc \\u00",
      "[1, 2",
      "[1 2]",
      "[,]",
      "{\"a\"}",
      "{\"a\":}",
      "{\"a\": 1,}",
      "{a: 1}",
      "{\"a\": 1 \"b\": 2}",
      "[]]",
      "{}{}",
      "42 trailing",
      "\x01\x02\x03",
  };
  for (const char *Text : Bad)
    expectParseError(Text);
}

TEST(JsonFuzzTest, EveryTruncationErrorsCleanly) {
  // The document starts with '{', so every strict prefix is invalid; each
  // must fail with a diagnostic and without crashing.
  std::string Doc = "{\"metrics\": [{\"name\": \"migration.retries\", "
                    "\"value\": 12}, {\"name\": \"llc.hits\", \"value\": "
                    "-3.5e2}], \"ok\": true, \"note\": \"a\\nb\\u0041\"}";
  JsonValue Parsed;
  std::string Error;
  ASSERT_TRUE(parseJson(Doc, Parsed, &Error)) << Error;
  for (size_t Len = 0; Len < Doc.size(); ++Len)
    expectParseError(Doc.substr(0, Len));
}

TEST(JsonFuzzTest, NestingDepthLimitIsExact) {
  auto Nested = [](size_t Depth) {
    return std::string(Depth, '[') + std::string(Depth, ']');
  };
  JsonValue Doc;
  std::string Error;
  EXPECT_TRUE(parseJson(Nested(256), Doc, &Error)) << Error;
  EXPECT_FALSE(parseJson(Nested(257), Doc, &Error));
  EXPECT_NE(Error.find("nesting too deep"), std::string::npos) << Error;
}

TEST(JsonFuzzTest, PathologicalNestingNeverOverflowsTheStack) {
  // Without the depth limit each of these would recurse ~100k frames.
  JsonValue Doc;
  std::string Error;
  EXPECT_FALSE(parseJson(std::string(100000, '['), Doc, &Error));
  EXPECT_NE(Error.find("nesting too deep"), std::string::npos);

  std::string Objects;
  for (int I = 0; I < 100000; ++I)
    Objects += "{\"k\":";
  EXPECT_FALSE(parseJson(Objects, Doc, &Error));
  EXPECT_NE(Error.find("nesting too deep"), std::string::npos);

  // Sibling containers do not accumulate depth: a wide-but-shallow
  // document parses fine.
  std::string Wide = "[";
  for (int I = 0; I < 1000; ++I)
    Wide += "[1],";
  Wide += "[2]]";
  EXPECT_TRUE(parseJson(Wide, Doc, &Error)) << Error;
}

TEST(JsonFuzzTest, RandomTokenSoupNeverCrashes) {
  const char *Tokens[] = {"{", "}",     "[",     "]",    ",",    ":",
                          "\"", "true", "false", "null", "0",    "-1",
                          "2.5", "1e9", "\\",    " ",    "\"k\"", "\n"};
  Xoshiro256 Rng(97);
  for (int Iter = 0; Iter < 500; ++Iter) {
    std::string Text;
    uint64_t Parts = Rng.nextBounded(24);
    for (uint64_t P = 0; P < Parts; ++P)
      Text += Tokens[Rng.nextBounded(std::size(Tokens))];
    JsonValue Doc;
    std::string Error;
    if (!parseJson(Text, Doc, &Error)) {
      EXPECT_FALSE(Error.empty()) << Text;
    }
  }
}

TEST(JsonFuzzTest, RandomBytesNeverCrash) {
  Xoshiro256 Rng(1009);
  for (int Iter = 0; Iter < 500; ++Iter) {
    std::string Text;
    uint64_t Len = Rng.nextBounded(64);
    for (uint64_t I = 0; I < Len; ++I)
      Text += static_cast<char>(Rng.nextBounded(256));
    JsonValue Doc;
    std::string Error;
    if (!parseJson(Text, Doc, &Error)) {
      EXPECT_FALSE(Error.empty()) << "len " << Len;
    }
  }
}

TEST(JsonFuzzTest, ErrorsReportByteOffsets) {
  JsonValue Doc;
  std::string Error;
  EXPECT_FALSE(parseJson("[1, 2, x]", Doc, &Error));
  EXPECT_NE(Error.find("at byte 7"), std::string::npos) << Error;
}

TEST(JsonFuzzTest, MissingFileIsAnError) {
  JsonValue Doc;
  std::string Error;
  EXPECT_FALSE(
      parseJsonFile("/nonexistent/atmem-json-fuzz.json", Doc, &Error));
  EXPECT_FALSE(Error.empty());
}

} // namespace
