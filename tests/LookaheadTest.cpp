//===----------------------------------------------------------------------===//
// Lookahead migration scheduling: planner trend prediction, the advisory
// staged-ahead pipeline's placement-identity guarantee (with and without
// injected staging faults mid-prefetch), and the adaptive epoch back-off
// with drift re-arming. The contract under test is the one LookaheadPlanner.h
// states: predictions are advisory — a wrong, faulted, or cancelled one
// costs a staging buffer, never a placement different from what a run
// without lookahead produces.
//===----------------------------------------------------------------------===//

#include "analyzer/LookaheadPlanner.h"
#include "core/Runtime.h"
#include "fault/FaultInjection.h"
#include "sim/MachineConfig.h"

#include <gtest/gtest.h>

#include <vector>

using namespace atmem;

namespace {

//===----------------------------------------------------------------------===//
// Planner: synthetic classification streams.
//===----------------------------------------------------------------------===//

/// One object's classification with uniform zero promotion: Priority and
/// Critical as given, Theta fixed, Weight for the Eq. 4 ranking.
analyzer::ObjectClassification makeClass(mem::ObjectId Id,
                                         std::vector<double> Priority,
                                         std::vector<uint8_t> Critical,
                                         double Theta, double Weight) {
  analyzer::ObjectClassification Cls;
  Cls.Object = Id;
  Cls.ChunkBytes = 1 << 20;
  Cls.MappedBytes = Priority.size() << 20;
  Cls.Local.Priority = std::move(Priority);
  Cls.Local.Critical = std::move(Critical);
  Cls.Local.Theta = Theta;
  Cls.Promotion.Promoted.assign(Cls.Local.Critical.size(), 0);
  Cls.Promotion.Weight = Weight;
  return Cls;
}

class LookaheadPlannerTest : public ::testing::Test {
protected:
  void observe(analyzer::LookaheadPlanner &P,
               std::vector<analyzer::ObjectClassification> Classes,
               uint64_t Renominated = 0, uint64_t RolledBack = 0,
               uint64_t Skipped = 0) {
    P.observeEpoch(Classes, Renominated, RolledBack, Skipped);
  }
};

TEST_F(LookaheadPlannerTest, RisingUnselectedChunkPredictedSelectedNot) {
  analyzer::LookaheadPlanner P;
  // Chunk 0 is already selected (no point predicting it); chunk 1 ramps
  // toward theta; chunk 2 is flat background.
  observe(P, {makeClass(1, {10.0, 2.0, 0.1}, {1, 0, 0}, 8.0, 10.0)});
  EXPECT_TRUE(P.predict().empty()) << "one observation carries no trend";
  observe(P, {makeClass(1, {10.0, 5.0, 0.1}, {1, 0, 0}, 8.0, 10.0)});

  std::vector<analyzer::LookaheadPrediction> Out = P.predict();
  // Chunk 1: velocity EWMA = 0.5 * (5-2) = 1.5, predicted 6.5 >= 0.75 * 8.
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].Object, 1u);
  EXPECT_EQ(Out[0].Chunk, 1u);
  EXPECT_GE(Out[0].PredictedPriority, 0.75 * 8.0);
}

TEST_F(LookaheadPlannerTest, VelocityFloorFiltersThresholdHover) {
  analyzer::LookaheadPlannerConfig Config;
  Config.MinVelocityFraction = 0.05;
  analyzer::LookaheadPlanner P(Config);
  // A chunk parked just under theta with zero velocity extrapolates above
  // the PredictThetaFraction cut, but it is not *warming* — without the
  // velocity floor it would be re-predicted (and re-cancelled) forever.
  observe(P, {makeClass(1, {10.0, 7.5}, {1, 0}, 8.0, 10.0)});
  observe(P, {makeClass(1, {10.0, 7.5}, {1, 0}, 8.0, 10.0)});
  EXPECT_TRUE(P.predict().empty());

  // The same priority reached with velocity above the floor predicts.
  analyzer::LookaheadPlanner Q(Config);
  observe(Q, {makeClass(1, {10.0, 6.0}, {1, 0}, 8.0, 10.0)});
  observe(Q, {makeClass(1, {10.0, 7.5}, {1, 0}, 8.0, 10.0)});
  ASSERT_EQ(Q.predict().size(), 1u);
}

TEST_F(LookaheadPlannerTest, SelectionChurnSuppressesPrediction) {
  analyzer::LookaheadPlanner P;
  observe(P, {makeClass(1, {10.0, 2.0, 9.0, 9.0}, {1, 0, 1, 1}, 8.0, 10.0)});
  // Half the chunks flip selection: churn 0.5 > MaxChurnForPredict 0.25,
  // so even the cleanly rising chunk 1 is not extrapolated.
  observe(P, {makeClass(1, {10.0, 5.0, 9.0, 9.0}, {1, 0, 0, 0}, 8.0, 10.0)});
  EXPECT_TRUE(P.predict().empty());

  // Migration-layer churn (a rollback) suppresses the same way.
  analyzer::LookaheadPlanner Q;
  observe(Q, {makeClass(1, {10.0, 2.0}, {1, 0}, 8.0, 10.0)});
  observe(Q, {makeClass(1, {10.0, 5.0}, {1, 0}, 8.0, 10.0)},
          /*Renominated=*/0, /*RolledBack=*/1);
  EXPECT_TRUE(Q.predict().empty());
}

TEST_F(LookaheadPlannerTest, PredictionsSortedAndCapped) {
  analyzer::LookaheadPlannerConfig Config;
  Config.MaxChunksPerEpoch = 2;
  analyzer::LookaheadPlanner P(Config);
  // Three rising chunks with distinct slopes; only the two steepest
  // survive the cap, in descending predicted-priority order.
  observe(P, {makeClass(1, {10.0, 2.0, 2.0, 2.0}, {1, 0, 0, 0}, 8.0, 10.0)});
  observe(P, {makeClass(1, {10.0, 5.0, 7.0, 6.0}, {1, 0, 0, 0}, 8.0, 10.0)});

  std::vector<analyzer::LookaheadPrediction> Out = P.predict();
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(Out[0].Chunk, 2u);
  EXPECT_EQ(Out[1].Chunk, 3u);
  EXPECT_GT(Out[0].PredictedPriority, Out[1].PredictedPriority);
}

TEST_F(LookaheadPlannerTest, FreedObjectTrendDropped) {
  analyzer::LookaheadPlanner P;
  observe(P, {makeClass(1, {10.0, 2.0}, {1, 0}, 8.0, 10.0),
              makeClass(2, {10.0, 2.0}, {1, 0}, 8.0, 5.0)});
  // Object 1 disappears (freed): its rising trend must not survive into
  // predictions, and object 2 keeps its own history.
  observe(P, {makeClass(2, {10.0, 5.0}, {1, 0}, 8.0, 5.0)});

  std::vector<analyzer::LookaheadPrediction> Out = P.predict();
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].Object, 2u);
}

TEST_F(LookaheadPlannerTest, ConvergenceNeedsChurnFreeStreak) {
  analyzer::LookaheadPlanner P; // ConvergenceEpochs = 2.
  auto Stable = [&] {
    observe(P, {makeClass(1, {10.0, 0.1}, {1, 0}, 8.0, 10.0)});
  };
  Stable(); // First sighting seeds state; no flips counted.
  EXPECT_FALSE(P.converged());
  Stable();
  ASSERT_TRUE(P.converged());

  // A selection flip resets the streak: two clean epochs are needed again.
  observe(P, {makeClass(1, {10.0, 9.0}, {1, 1}, 8.0, 10.0)});
  EXPECT_FALSE(P.converged());
  observe(P, {makeClass(1, {10.0, 9.0}, {1, 1}, 8.0, 10.0)});
  EXPECT_FALSE(P.converged());
  observe(P, {makeClass(1, {10.0, 9.0}, {1, 1}, 8.0, 10.0)});
  ASSERT_TRUE(P.converged());
  // Migration-layer churn resets it the same way.
  observe(P, {makeClass(1, {10.0, 9.0}, {1, 1}, 8.0, 10.0)}, /*Renominated=*/1);
  EXPECT_FALSE(P.converged());
}

//===----------------------------------------------------------------------===//
// Runtime: the staged-ahead pipeline end to end on a ramping workload.
//===----------------------------------------------------------------------===//

/// Miniature of the micro_lookahead bench workload: 4 steady hot chunks
/// over 2% background noise on all 64 chunks, plus a 2-chunk warming
/// region ramping 0.04 -> 0.10 -> 1.0 of hot intensity — under the pooled
/// log-space selection's catch (~0.14x hot) during the ramp, so only its
/// velocity identifies it. Deterministic; the tail epochs replay the
/// epoch-2 stream so placement converges.
struct RampWorkload {
  static constexpr uint64_t ChunkBytes = 128 << 10;
  static constexpr uint32_t HotChunks = 4;
  static constexpr uint32_t WarmFirst = 8;
  static constexpr uint32_t WarmChunks = 2;
  static constexpr uint32_t TotalChunks = 64;
  static constexpr uint64_t HotAccesses = 60000;

  static uint64_t elems() {
    return TotalChunks * ChunkBytes / sizeof(uint64_t);
  }
  static double warmWeight(uint32_t Epoch) {
    return Epoch == 0 ? 0.04 : Epoch == 1 ? 0.10 : 1.0;
  }

  /// Hot chunks this epoch start at \p HotBase (shifting it models drift).
  static void run(core::TrackedArray<uint64_t> &Arr, uint32_t Epoch,
                  uint32_t HotBase = 0) {
    constexpr uint64_t Mul = 6364136223846793005ull;
    constexpr uint64_t Add = 1442695040888963407ull;
    uint64_t ChunkElems = ChunkBytes / sizeof(uint64_t);
    uint64_t State = 0x243f6a8885a308d3ull + std::min(Epoch, 2u);
    auto Hammer = [&](uint32_t Chunk, uint64_t Accesses) {
      uint64_t Base = Chunk * ChunkElems;
      for (uint64_t I = 0; I < Accesses; ++I) {
        State = State * Mul + Add;
        Arr[Base + ((State >> 17) & (ChunkElems - 1))] += 1;
      }
    };
    for (uint32_t C = 0; C < TotalChunks; ++C)
      Hammer(C, HotAccesses / 50);
    for (uint32_t C = 0; C < HotChunks; ++C)
      Hammer(HotBase + C, HotAccesses);
    uint64_t Warm = static_cast<uint64_t>(HotAccesses * warmWeight(Epoch));
    for (uint32_t C = 0; C < WarmChunks; ++C)
      Hammer(WarmFirst + C, Warm);
  }
};

core::RuntimeConfig rampConfig(bool LookaheadOn) {
  core::RuntimeConfig Config;
  Config.Machine = sim::nvmDramTestbed(1.0 / 1024);
  Config.ChunkBytesOverride = RampWorkload::ChunkBytes;
  Config.Lookahead.Enabled = LookaheadOn;
  Config.Lookahead.Planner.PredictThetaFraction = 0.2;
  Config.Lookahead.ConvergedEpochsToBackoff = 1;
  return Config;
}

/// Runs \p Epochs of the ramp and returns the final per-chunk tiers (the
/// placement the identity assertions compare).
std::vector<sim::TierId> runRamp(bool LookaheadOn, uint32_t Epochs,
                                 core::LookaheadStats *Stats = nullptr) {
  core::Runtime Rt(rampConfig(LookaheadOn));
  core::TrackedArray<uint64_t> Arr =
      Rt.allocate<uint64_t>("field", RampWorkload::elems());
  for (uint64_t I = 0; I < Arr.size(); ++I)
    Arr.raw()[I] = I;
  for (uint32_t E = 0; E < Epochs; ++E) {
    Rt.profilingStart();
    Rt.beginIteration();
    RampWorkload::run(Arr, E);
    Rt.endIteration();
    Rt.optimize();
  }
  if (Stats)
    *Stats = Rt.lookaheadStats();
  const mem::DataObject &Obj = Rt.registry().object(Arr.objectId());
  std::vector<sim::TierId> Tiers;
  for (uint32_t C = 0; C < Obj.numChunks(); ++C)
    Tiers.push_back(Obj.chunkTier(C));
  return Tiers;
}

/// Lookahead fault sites are process-global; keep them clean per test.
class LookaheadRuntimeTest : public ::testing::Test {
protected:
  void SetUp() override { fault::FaultRegistry::instance().disarmAll(); }
  void TearDown() override { fault::FaultRegistry::instance().disarmAll(); }

  static void armEvery(const char *SiteName) {
    fault::FaultPlan Plan;
    Plan.Mode = fault::Trigger::EveryKth;
    Plan.N = 1;
    fault::FaultRegistry::instance().arm(SiteName, Plan);
  }
};

TEST_F(LookaheadRuntimeTest, CommittedPrefetchMatchesDemandPlacement) {
  std::vector<sim::TierId> Off = runRamp(/*LookaheadOn=*/false, 6);
  core::LookaheadStats Stats;
  std::vector<sim::TierId> On = runRamp(/*LookaheadOn=*/true, 6, &Stats);
  // The pipeline really ran — the warming region was staged ahead and the
  // fresh plan confirmed it — and placement is still chunk-for-chunk what
  // the demand path alone produces.
  EXPECT_GE(Stats.StagedRanges, 1u);
  EXPECT_GE(Stats.CommittedRanges, 1u);
  EXPECT_EQ(Off, On);
  // The committed prefetch absorbed its staging copy into the overlap.
  EXPECT_GT(Stats.OverlappedSimSec, 0.0);
}

TEST_F(LookaheadRuntimeTest, StagingAllocFaultMidPrefetchIsPlacementNoop) {
  std::vector<sim::TierId> Off = runRamp(/*LookaheadOn=*/false, 6);
  armEvery("lookahead.staging_alloc");
  core::LookaheadStats Stats;
  std::vector<sim::TierId> On = runRamp(/*LookaheadOn=*/true, 6, &Stats);
  // Every staging allocation failed: nothing staged, nothing committed,
  // and the demand path produced the identical placement one epoch later.
  EXPECT_GT(fault::FaultRegistry::instance().fires("lookahead.staging_alloc"),
            0u);
  EXPECT_EQ(Stats.StagedRanges, 0u);
  EXPECT_EQ(Stats.CommittedRanges, 0u);
  EXPECT_EQ(Off, On);
}

TEST_F(LookaheadRuntimeTest, CopyFaultMidPrefetchCancelsAndPlacementMatches) {
  std::vector<sim::TierId> Off = runRamp(/*LookaheadOn=*/false, 6);
  armEvery("lookahead.copy");
  core::LookaheadStats Stats;
  std::vector<sim::TierId> On = runRamp(/*LookaheadOn=*/true, 6, &Stats);
  // The overlapped copy failed mid-prefetch: the boundary must cancel the
  // staged range (never commit a range whose copy did not finish) and
  // fall back to the demand migration, placement identical.
  EXPECT_GE(Stats.StagedRanges, 1u);
  EXPECT_GE(Stats.CopyFaults, 1u);
  EXPECT_GE(Stats.CancelledRanges, 1u);
  EXPECT_EQ(Stats.CommittedRanges, 0u);
  EXPECT_EQ(Off, On);
}

TEST_F(LookaheadRuntimeTest, BackoffEngagesWhenConvergedAndDriftRearms) {
  core::Runtime Rt(rampConfig(/*LookaheadOn=*/true));
  core::TrackedArray<uint64_t> Arr =
      Rt.allocate<uint64_t>("field", RampWorkload::elems());
  for (uint64_t I = 0; I < Arr.size(); ++I)
    Arr.raw()[I] = I;

  auto Epoch = [&](uint32_t E, uint32_t HotBase) {
    Rt.profilingStart();
    Rt.beginIteration();
    RampWorkload::run(Arr, E, HotBase);
    Rt.endIteration();
    Rt.optimize();
  };

  // Ramp then converged tail: the adaptive scheduler must start skipping
  // analysis epochs once the placement settles.
  for (uint32_t E = 0; E < 8; ++E)
    Epoch(E, /*HotBase=*/0);
  uint64_t BackedOff = Rt.lookaheadStats().BackedOffEpochs;
  EXPECT_GE(BackedOff, 1u);

  // Drift: the hot region jumps to untouched chunks. The slow-tier miss
  // share re-arms analysis out of the back-off window, and within a few
  // epochs the new hot chunks are on the fast tier.
  for (uint32_t E = 0; E < 4; ++E)
    Epoch(/*Epoch=*/2, /*HotBase=*/40);
  const mem::DataObject &Obj = Rt.registry().object(Arr.objectId());
  for (uint32_t C = 40; C < 40 + RampWorkload::HotChunks; ++C)
    EXPECT_EQ(Obj.chunkTier(C), sim::TierId::Fast) << "chunk " << C;
}

} // namespace
