//===----------------------------------------------------------------------===//
// Unit tests for the mem layer: address space, adaptive chunks, data
// objects, and the registry.
//===----------------------------------------------------------------------===//

#include "mem/AddressSpace.h"
#include "mem/DataObjectRegistry.h"
#include "sim/Machine.h"

#include <gtest/gtest.h>

using namespace atmem;
using namespace atmem::mem;
using namespace atmem::sim;

namespace {

TEST(AddressSpaceTest, RegionsAre2MiBAligned) {
  AddressSpace Space;
  for (uint64_t Size : {1ull, 4096ull, 1000000ull, (8ull << 20) + 5}) {
    uint64_t Va = Space.reserve(Size);
    EXPECT_EQ(Va % HugePageBytes, 0u) << "size " << Size;
  }
}

TEST(AddressSpaceTest, RegionsAreDisjoint) {
  AddressSpace Space;
  uint64_t A = Space.reserve(10 << 20);
  uint64_t B = Space.reserve(4096);
  EXPECT_GE(B, A + (10ull << 20));
}

TEST(AddressSpaceTest, ReservedBytesTracksPageRoundedSizes) {
  AddressSpace Space;
  Space.reserve(1);      // Rounds to 4 KiB.
  Space.reserve(8192);   // Exactly two pages.
  EXPECT_EQ(Space.reservedBytes(), 4096u + 8192u);
}

TEST(AdaptiveChunkTest, SmallObjectSingleMinimumChunk) {
  EXPECT_EQ(adaptiveChunkBytes(100), SmallPageBytes);
  EXPECT_EQ(adaptiveChunkBytes(0), SmallPageBytes);
}

TEST(AdaptiveChunkTest, LargeObjectScalesChunks) {
  // 1 GiB / 1024 target = 1 MiB chunks.
  EXPECT_EQ(adaptiveChunkBytes(1ull << 30), 1ull << 20);
}

TEST(AdaptiveChunkTest, PowerOfTwoAndClamped) {
  for (uint64_t Size :
       {1ull << 12, 3ull << 16, 999999ull, 1ull << 34, 1ull << 40}) {
    uint64_t Chunk = adaptiveChunkBytes(Size);
    EXPECT_EQ(Chunk & (Chunk - 1), 0u) << Size;
    EXPECT_GE(Chunk, SmallPageBytes);
    EXPECT_LE(Chunk, 64ull << 20);
  }
}

TEST(AdaptiveChunkTest, TargetChunksParameter) {
  EXPECT_GT(adaptiveChunkBytes(1ull << 30, 64),
            adaptiveChunkBytes(1ull << 30, 4096));
}

TEST(DataObjectTest, ChunkGeometry) {
  DataObject Obj(0, "x", 0x1000000, 100000, 4096);
  EXPECT_EQ(Obj.mappedBytes(), 102400u); // 25 pages.
  EXPECT_EQ(Obj.numChunks(), 25u);
  EXPECT_EQ(Obj.chunkOf(0), 0u);
  EXPECT_EQ(Obj.chunkOf(4095), 0u);
  EXPECT_EQ(Obj.chunkOf(4096), 1u);
}

TEST(DataObjectTest, PartialLastChunkRange) {
  DataObject Obj(0, "x", 0x1000000, 3 * 4096 + 1, 8192);
  // Mapped = 4 pages = 16384; chunks of 8 KiB -> 2 chunks.
  EXPECT_EQ(Obj.numChunks(), 2u);
  auto [Begin, End] = Obj.rangeBytes({1, 1});
  EXPECT_EQ(Begin, 8192u);
  EXPECT_EQ(End, 16384u);
}

TEST(DataObjectTest, TierBookkeeping) {
  DataObject Obj(0, "x", 0x1000000, 16384, 4096);
  EXPECT_EQ(Obj.bytesOn(sim::TierId::Slow), 16384u);
  Obj.setChunkTier(1, sim::TierId::Fast);
  EXPECT_EQ(Obj.bytesOn(sim::TierId::Fast), 4096u);
  Obj.setAllChunkTiers(sim::TierId::Fast);
  EXPECT_EQ(Obj.bytesOn(sim::TierId::Fast), 16384u);
}

TEST(DataObjectTest, HostBufferZeroInitialized) {
  DataObject Obj(0, "x", 0x1000000, 4096, 4096);
  for (uint64_t I = 0; I < 4096; ++I)
    ASSERT_EQ(Obj.data()[I], std::byte{0});
}

class RegistryTest : public ::testing::Test {
protected:
  RegistryTest() : M(nvmDramTestbed(1.0 / 1024)), Registry(M) {}
  Machine M;
  DataObjectRegistry Registry;
};

TEST_F(RegistryTest, CreateMapsOnSlowByDefaultPolicy) {
  DataObject &Obj =
      Registry.create("a", 1 << 20, InitialPlacement::Slow);
  EXPECT_EQ(Obj.bytesOn(TierId::Slow), Obj.mappedBytes());
  EXPECT_EQ(M.pageTable().tierOf(Obj.va()), TierId::Slow);
}

TEST_F(RegistryTest, CreateFastPlacement) {
  DataObject &Obj = Registry.create("a", 1 << 20, InitialPlacement::Fast);
  EXPECT_EQ(M.pageTable().tierOf(Obj.va()), TierId::Fast);
  EXPECT_EQ(Obj.bytesOn(TierId::Fast), Obj.mappedBytes());
}

TEST_F(RegistryTest, PreferredPlacementOverflows) {
  uint64_t FastCap = M.allocator(TierId::Fast).capacityBytes();
  DataObject &Obj = Registry.create("big", FastCap * 2,
                                    InitialPlacement::PreferredFast);
  EXPECT_GT(Obj.bytesOn(TierId::Fast), 0u);
  EXPECT_GT(Obj.bytesOn(TierId::Slow), 0u);
}

TEST_F(RegistryTest, AttributeResolvesObjectAndChunk) {
  DataObject &A = Registry.create("a", 1 << 20, InitialPlacement::Slow);
  DataObject &B = Registry.create("b", 1 << 20, InitialPlacement::Slow);
  Attribution Attr;
  ASSERT_TRUE(Registry.attribute(A.va() + 5000, Attr));
  EXPECT_EQ(Attr.Object, A.id());
  EXPECT_EQ(Attr.Chunk, A.chunkOf(5000));
  ASSERT_TRUE(Registry.attribute(B.va(), Attr));
  EXPECT_EQ(Attr.Object, B.id());
}

TEST_F(RegistryTest, AttributeRejectsForeignAddresses) {
  Registry.create("a", 1 << 20, InitialPlacement::Slow);
  Attribution Attr;
  EXPECT_FALSE(Registry.attribute(0x10, Attr));
}

TEST_F(RegistryTest, DestroyUnmapsAndForgets) {
  DataObject &Obj = Registry.create("a", 1 << 20, InitialPlacement::Slow);
  uint64_t Va = Obj.va();
  ObjectId Id = Obj.id();
  Registry.destroy(Id);
  Attribution Attr;
  EXPECT_FALSE(Registry.attribute(Va, Attr));
  EXPECT_EQ(Registry.liveObjects().size(), 0u);
  EXPECT_EQ(M.allocator(TierId::Slow).usedBytes(), 0u);
}

TEST_F(RegistryTest, TotalsAcrossObjects) {
  Registry.create("a", 1 << 20, InitialPlacement::Slow);
  Registry.create("b", 2 << 20, InitialPlacement::Fast);
  EXPECT_EQ(Registry.totalMappedBytes(), 3ull << 20);
  EXPECT_EQ(Registry.totalBytesOn(TierId::Fast), 2ull << 20);
  EXPECT_EQ(Registry.totalBytesOn(TierId::Slow), 1ull << 20);
}

TEST_F(RegistryTest, ChunkOverrideRespected) {
  DataObject &Obj =
      Registry.create("a", 1 << 20, InitialPlacement::Slow, 65536);
  EXPECT_EQ(Obj.chunkBytes(), 65536u);
  EXPECT_EQ(Obj.numChunks(), 16u);
}

TEST_F(RegistryTest, ScratchVaDoesNotCollide) {
  DataObject &Obj = Registry.create("a", 1 << 20, InitialPlacement::Slow);
  uint64_t Scratch = Registry.reserveScratchVa(1 << 20);
  EXPECT_TRUE(Scratch >= Obj.va() + Obj.mappedBytes() ||
              Scratch + (1 << 20) <= Obj.va());
}

} // namespace
