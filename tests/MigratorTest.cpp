//===----------------------------------------------------------------------===//
// Unit tests for the two migration mechanisms: ATMem's multi-stage
// multi-threaded migrator and the mbind system-service model.
//===----------------------------------------------------------------------===//

#include "mem/AtmemMigrator.h"
#include "mem/MbindMigrator.h"
#include "sim/Machine.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace atmem;
using namespace atmem::mem;
using namespace atmem::sim;

namespace {

class MigratorTest : public ::testing::Test {
protected:
  MigratorTest()
      : M(nvmDramTestbed(1.0 / 1024)), Registry(M), Pool(4),
        Atmem(Registry, Pool), Mbind(Registry) {}

  /// Creates an object on the slow tier and fills it with a recognizable
  /// pattern.
  DataObject &makeObject(uint64_t Size, uint64_t ChunkBytes) {
    DataObject &Obj =
        Registry.create("obj", Size, InitialPlacement::Slow, ChunkBytes);
    for (uint64_t I = 0; I < Obj.mappedBytes(); ++I)
      Obj.data()[I] = static_cast<std::byte>((I * 131 + 7) & 0xFF);
    return Obj;
  }

  static bool patternIntact(const DataObject &Obj) {
    for (uint64_t I = 0; I < Obj.mappedBytes(); ++I)
      if (Obj.data()[I] != static_cast<std::byte>((I * 131 + 7) & 0xFF))
        return false;
    return true;
  }

  Machine M;
  DataObjectRegistry Registry;
  ThreadPool Pool;
  AtmemMigrator Atmem;
  MbindMigrator Mbind;
};

TEST_F(MigratorTest, AtmemPreservesData) {
  DataObject &Obj = makeObject(8 << 20, 1 << 20);
  MigrationResult Result;
  ASSERT_EQ(Atmem.migrate(Obj, {{1, 3}}, TierId::Fast, Result), MigrationStatus::Success);
  EXPECT_TRUE(patternIntact(Obj));
}

TEST_F(MigratorTest, AtmemMovesMappingAndChunkTiers) {
  DataObject &Obj = makeObject(8 << 20, 1 << 20);
  MigrationResult Result;
  ASSERT_EQ(Atmem.migrate(Obj, {{2, 2}}, TierId::Fast, Result), MigrationStatus::Success);
  auto [Begin, End] = Obj.rangeBytes({2, 2});
  for (uint64_t Off = Begin; Off < End; Off += SmallPageBytes)
    ASSERT_EQ(M.pageTable().tierOf(Obj.va() + Off), TierId::Fast);
  // Outside the range stays slow.
  EXPECT_EQ(M.pageTable().tierOf(Obj.va()), TierId::Slow);
  EXPECT_EQ(Obj.chunkTier(2), TierId::Fast);
  EXPECT_EQ(Obj.chunkTier(3), TierId::Fast);
  EXPECT_EQ(Obj.chunkTier(0), TierId::Slow);
  EXPECT_EQ(Result.BytesMoved, 2u << 20);
}

TEST_F(MigratorTest, AtmemReleasesStagingAfterMigration) {
  DataObject &Obj = makeObject(4 << 20, 1 << 20);
  uint64_t FastUsedBefore = M.allocator(TierId::Fast).usedBytes();
  MigrationResult Result;
  ASSERT_EQ(Atmem.migrate(Obj, {{0, 4}}, TierId::Fast, Result), MigrationStatus::Success);
  // Only the migrated payload remains on the fast tier (no staging leak).
  EXPECT_EQ(M.allocator(TierId::Fast).usedBytes(),
            FastUsedBefore + Obj.mappedBytes());
}

TEST_F(MigratorTest, AtmemFormsHugePagesOnTarget) {
  DataObject &Obj = makeObject(4 << 20, 1 << 20);
  uint64_t HugeBefore = M.pageTable().hugePageCount();
  MigrationResult Result;
  ASSERT_EQ(Atmem.migrate(Obj, {{0, 4}}, TierId::Fast, Result), MigrationStatus::Success);
  // The object's region was huge-mapped on the slow tier and stays huge
  // on the fast tier; PTE count stays tiny.
  EXPECT_EQ(M.pageTable().hugePageCount(), HugeBefore);
  EXPECT_EQ(Result.PtesTouched, (4ull << 20) / HugePageBytes);
}

TEST_F(MigratorTest, AtmemRefusesWithoutCapacity) {
  // Fast tier at this scale: 96 GiB / 1024 = 96 MiB. Ask for more than
  // half (staging + payload need 2x).
  DataObject &Obj = makeObject(80 << 20, 8 << 20);
  MigrationResult Result;
  EXPECT_EQ(Atmem.migrate(Obj, {{0, Obj.numChunks()}}, TierId::Fast,
                             Result), MigrationStatus::Degraded);
  // Untouched on refusal.
  EXPECT_EQ(Obj.bytesOn(TierId::Fast), 0u);
  EXPECT_EQ(Result.BytesMoved, 0u);
  EXPECT_TRUE(patternIntact(Obj));
}

TEST_F(MigratorTest, AtmemMultipleRangesCounted) {
  DataObject &Obj = makeObject(8 << 20, 1 << 20);
  MigrationResult Result;
  ASSERT_EQ(
      Atmem.migrate(Obj, {{0, 1}, {3, 2}, {7, 1}}, TierId::Fast, Result), MigrationStatus::Success);
  EXPECT_EQ(Result.Ranges, 3u);
  EXPECT_EQ(Result.BytesMoved, 4u << 20);
  EXPECT_TRUE(patternIntact(Obj));
}

TEST_F(MigratorTest, AtmemSimTimePositiveAndScalesWithBytes) {
  DataObject &Obj = makeObject(16 << 20, 1 << 20);
  MigrationResult Small, Large;
  ASSERT_EQ(Atmem.migrate(Obj, {{0, 1}}, TierId::Fast, Small), MigrationStatus::Success);
  ASSERT_EQ(Atmem.migrate(Obj, {{1, 8}}, TierId::Fast, Large), MigrationStatus::Success);
  EXPECT_GT(Small.SimSeconds, 0.0);
  EXPECT_GT(Large.SimSeconds, Small.SimSeconds);
}

TEST_F(MigratorTest, MbindMovesPagesAndSplitsHugePages) {
  DataObject &Obj = makeObject(4 << 20, 1 << 20);
  MigrationResult Result;
  ASSERT_EQ(Mbind.migrate(Obj, {{0, 2}}, TierId::Fast, Result), MigrationStatus::Success);
  EXPECT_EQ(Result.BytesMoved, 2u << 20);
  EXPECT_EQ(Result.PtesTouched, (2u << 20) / SmallPageBytes);
  EXPECT_EQ(Result.HugePagesSplit, 1u); // One 2 MiB page covered chunks 0-1.
  EXPECT_EQ(Obj.chunkTier(0), TierId::Fast);
  EXPECT_EQ(M.pageTable().tierOf(Obj.va()), TierId::Fast);
}

TEST_F(MigratorTest, MbindLeavesFragmentedMapping) {
  DataObject &Obj = makeObject(4 << 20, 1 << 20);
  uint64_t HugeBefore = M.pageTable().hugePageCount();
  MigrationResult Result;
  ASSERT_EQ(Mbind.migrate(Obj, {{0, 4}}, TierId::Fast, Result), MigrationStatus::Success);
  // All the object's huge pages are gone; ATMem would have kept them.
  EXPECT_EQ(M.pageTable().hugePageCount(),
            HugeBefore - (4ull << 20) / HugePageBytes);
  EXPECT_EQ(Result.HugePagesSplit, 2u);
}

TEST_F(MigratorTest, MbindDataUntouched) {
  DataObject &Obj = makeObject(4 << 20, 1 << 20);
  MigrationResult Result;
  ASSERT_EQ(Mbind.migrate(Obj, {{0, 4}}, TierId::Fast, Result), MigrationStatus::Success);
  EXPECT_TRUE(patternIntact(Obj));
}

TEST_F(MigratorTest, MbindPartialOnCapacityExhaustion) {
  // Make the fast tier too small for the request.
  Machine Tiny(nvmDramTestbed(1.0 / 1024 / 64)); // 1.5 MiB fast tier.
  DataObjectRegistry Reg(Tiny);
  MbindMigrator Migrator(Reg);
  DataObject &Obj =
      Reg.create("obj", 4 << 20, InitialPlacement::Slow, 1 << 20);
  MigrationResult Result;
  EXPECT_EQ(Migrator.migrate(Obj, {{0, 4}}, TierId::Fast, Result), MigrationStatus::Degraded);
  // A prefix moved before the failure.
  EXPECT_GT(Result.BytesMoved, 0u);
  EXPECT_LT(Result.BytesMoved, 4u << 20);
}

TEST_F(MigratorTest, AtmemBeatsMbindOnTime) {
  DataObject &A = makeObject(32 << 20, 4 << 20);
  MigrationResult AtmemResult;
  ASSERT_EQ(Atmem.migrate(A, {{0, 8}}, TierId::Fast, AtmemResult), MigrationStatus::Success);

  DataObject &B =
      Registry.create("obj2", 32 << 20, InitialPlacement::Slow, 4 << 20);
  MigrationResult MbindResult;
  ASSERT_EQ(Mbind.migrate(B, {{0, 8}}, TierId::Fast, MbindResult), MigrationStatus::Success);

  EXPECT_LT(AtmemResult.SimSeconds, MbindResult.SimSeconds);
}

TEST_F(MigratorTest, MergedRangeCheaperThanFragments) {
  // The tree promotion's merging exists because launching many discrete
  // migrations costs more than one contiguous one (paper Section 4.3).
  DataObject &A = makeObject(16 << 20, 1 << 20);
  MigrationResult Merged;
  ASSERT_EQ(Atmem.migrate(A, {{0, 8}}, TierId::Fast, Merged), MigrationStatus::Success);

  DataObject &B =
      Registry.create("objB", 16 << 20, InitialPlacement::Slow, 1 << 20);
  MigrationResult Fragmented;
  ASSERT_EQ(Mbind.migrate(B, {{0, 1}}, TierId::Fast, Fragmented), MigrationStatus::Success);
  std::vector<ChunkRange> EveryOther;
  for (uint32_t C = 0; C < 8; ++C)
    EveryOther.push_back({C, 1});
  MigrationResult Fragments;
  AtmemMigrator Second(Registry, Pool);
  ASSERT_EQ(Second.migrate(B, EveryOther, TierId::Fast, Fragments), MigrationStatus::Success);
  EXPECT_GT(Fragments.SimSeconds, Merged.SimSeconds);
}

TEST_F(MigratorTest, ResultAccumulatesAcrossCalls) {
  DataObject &Obj = makeObject(8 << 20, 1 << 20);
  MigrationResult Result;
  ASSERT_EQ(Atmem.migrate(Obj, {{0, 1}}, TierId::Fast, Result), MigrationStatus::Success);
  uint64_t After1 = Result.BytesMoved;
  ASSERT_EQ(Atmem.migrate(Obj, {{1, 1}}, TierId::Fast, Result), MigrationStatus::Success);
  EXPECT_EQ(Result.BytesMoved, 2 * After1);
  EXPECT_EQ(Result.Ranges, 2u);
}

} // namespace
