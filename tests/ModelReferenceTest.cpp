//===----------------------------------------------------------------------===//
// Model-vs-reference property tests: the optimized cache and TLB models
// must agree, access for access, with naive dictionary-based reference
// implementations on randomized traces; the migration cost model must be
// monotone in its inputs.
//===----------------------------------------------------------------------===//

#include "sim/CacheSim.h"
#include "sim/FrameAllocator.h"
#include "sim/CostModel.h"
#include "sim/Tlb.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <unordered_map>
#include <vector>

using namespace atmem;
using namespace atmem::sim;

namespace {

/// Naive set-associative LRU cache: per-set list of tags, front = MRU.
class ReferenceCache {
public:
  ReferenceCache(uint32_t Sets, uint32_t Ways, uint32_t LineBytes)
      : Sets(Sets), Ways(Ways), LineBytes(LineBytes), Contents(Sets) {}

  bool access(uint64_t Va) {
    uint64_t Line = Va / LineBytes;
    auto Set = static_cast<uint32_t>(Line % Sets);
    uint64_t Tag = Line / Sets;
    auto &List = Contents[Set];
    for (auto It = List.begin(); It != List.end(); ++It) {
      if (*It == Tag) {
        List.erase(It);
        List.push_front(Tag);
        return true;
      }
    }
    List.push_front(Tag);
    if (List.size() > Ways)
      List.pop_back();
    return false;
  }

private:
  uint32_t Sets;
  uint32_t Ways;
  uint32_t LineBytes;
  std::vector<std::list<uint64_t>> Contents;
};

class CacheEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CacheEquivalenceTest, MatchesReferenceAccessForAccess) {
  CacheConfig Config;
  Config.SizeBytes = 64 * 64 * 4; // 64 sets x 4 ways x 64 B.
  Config.Ways = 4;
  Config.LineBytes = 64;
  CacheSim Model(Config);
  ReferenceCache Reference(64, 4, 64);

  Xoshiro256 Rng(GetParam());
  for (int I = 0; I < 50000; ++I) {
    // Mix of random and localized accesses to exercise hits and misses.
    uint64_t Va = Rng.nextDouble() < 0.5
                      ? Rng.nextBounded(1 << 20)
                      : Rng.nextBounded(1 << 12);
    ASSERT_EQ(Model.access(Va), Reference.access(Va)) << "access " << I;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheEquivalenceTest,
                         ::testing::Range<uint64_t>(40, 48));

/// Naive TLB array reference, mirroring ReferenceCache for pages.
class TlbEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TlbEquivalenceTest, SmallArrayMatchesReference) {
  TlbArray Model(/*Entries=*/32, /*Ways=*/4, SmallPageBytes);
  ReferenceCache Reference(8, 4, SmallPageBytes);
  Xoshiro256 Rng(GetParam());
  for (int I = 0; I < 50000; ++I) {
    uint64_t Va = Rng.nextBounded(1ull << 24);
    ASSERT_EQ(Model.access(Va), Reference.access(Va)) << "access " << I;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TlbEquivalenceTest,
                         ::testing::Range<uint64_t>(60, 66));

//===----------------------------------------------------------------------===//
// Cost model monotonicity
//===----------------------------------------------------------------------===//

TEST(CostModelMonotonicityTest, MigrationTimeGrowsWithBytes) {
  MachineConfig Config = nvmDramTestbed();
  MigrationCostModel Model(Config);
  double Previous = 0.0;
  for (uint64_t Mib = 1; Mib <= 256; Mib *= 4) {
    MigrationWork Work;
    Work.Bytes = Mib << 20;
    Work.PtesTouched = Work.Bytes / SmallPageBytes;
    double T = Model.atmemSeconds(Work);
    EXPECT_GT(T, Previous);
    Previous = T;
  }
}

TEST(CostModelMonotonicityTest, MoreCopyThreadsNeverSlower) {
  MachineConfig Config = nvmDramTestbed();
  MigrationCostModel Model(Config);
  double Previous = 0.0;
  for (uint32_t Threads : {1u, 4u, 16u, 64u}) {
    double Bw = Model.copyBandwidth(TierId::Slow, TierId::Fast, Threads);
    EXPECT_GE(Bw, Previous);
    Previous = Bw;
  }
}

TEST(CostModelMonotonicityTest, KernelTimeGrowsWithSlowMisses) {
  MachineConfig Config = nvmDramTestbed();
  KernelCostModel Model(Config);
  double Previous = 0.0;
  for (uint64_t Misses = 1000; Misses <= 64000000; Misses *= 8) {
    AccessStats Stats;
    Stats.Accesses = Misses;
    Stats.TierMisses[tierIndex(TierId::Slow)] = Misses;
    double T = Model.estimate(Stats).seconds();
    EXPECT_GT(T, Previous);
    Previous = T;
  }
}

TEST(CostModelMonotonicityTest, ShiftingMissesToFastNeverHurts) {
  MachineConfig Config = nvmDramTestbed();
  KernelCostModel Model(Config);
  constexpr uint64_t Total = 10000000;
  double Previous = 1e300;
  for (uint64_t OnFast = 0; OnFast <= Total; OnFast += Total / 10) {
    AccessStats Stats;
    Stats.Accesses = Total;
    Stats.TierMisses[tierIndex(TierId::Fast)] = OnFast;
    Stats.TierMisses[tierIndex(TierId::Slow)] = Total - OnFast;
    double T = Model.estimate(Stats).seconds();
    EXPECT_LE(T, Previous) << "fast share " << OnFast;
    Previous = T;
  }
}

TEST(CostModelMonotonicityTest, HugePtesCheaperThanSmallForSamePayload) {
  MachineConfig Config = mcdramDramTestbed();
  MigrationCostModel Model(Config);
  MigrationWork Small;
  Small.Bytes = 64ull << 20;
  Small.PtesTouched = Small.Bytes / SmallPageBytes;
  MigrationWork Huge = Small;
  Huge.PtesTouched = Small.Bytes / HugePageBytes;
  EXPECT_LT(Model.atmemSeconds(Huge), Model.atmemSeconds(Small));
  EXPECT_LT(Model.mbindSeconds(Huge), Model.mbindSeconds(Small));
}

} // namespace
