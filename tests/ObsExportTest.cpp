//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the telemetry export layer: the JSON parser on well-formed and
/// malformed input, the metrics snapshot round-trip through the
/// atmem-metrics-v1 schema validator, Chrome trace-event structure
/// (B/E pairing, per-tid nesting and timestamps), and an end-to-end run of
/// an instrumented experiment that must surface the full paper-metric
/// catalogue (per-object theta components, W, TR', migration stages).
///
//===----------------------------------------------------------------------===//

#include "baseline/Experiment.h"
#include "graph/Datasets.h"
#include "obs/Export.h"
#include "obs/Json.h"
#include "obs/Trace.h"

#include "gtest/gtest.h"

#include <set>
#include <string>
#include <thread>

using namespace atmem;

namespace {

class ObsExportTest : public ::testing::Test {
protected:
  void SetUp() override {
    obs::Registry::instance().resetValues();
    obs::Tracer::instance().clear();
    obs::setEnabled(true);
  }
  void TearDown() override {
    obs::setEnabled(false);
    obs::Registry::instance().resetValues();
    obs::Tracer::instance().clear();
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// JSON parser
//===----------------------------------------------------------------------===//

TEST_F(ObsExportTest, JsonParserAcceptsDocumentModel) {
  obs::JsonValue Doc;
  std::string Error;
  ASSERT_TRUE(obs::parseJson(
      R"({"a": 1.5, "b": [1, 2, 3], "c": {"nested": "x\"y"}, "d": true,
          "e": null, "f": -2e3})",
      Doc, &Error))
      << Error;
  ASSERT_TRUE(Doc.isObject());
  const obs::JsonValue *A = Doc.findNumber("a");
  ASSERT_NE(A, nullptr);
  EXPECT_DOUBLE_EQ(A->NumberVal, 1.5);
  const obs::JsonValue *B = Doc.find("b");
  ASSERT_NE(B, nullptr);
  ASSERT_TRUE(B->isArray());
  EXPECT_EQ(B->Array.size(), 3u);
  const obs::JsonValue *C = Doc.find("c");
  ASSERT_NE(C, nullptr);
  const obs::JsonValue *Nested = C->findString("nested");
  ASSERT_NE(Nested, nullptr);
  EXPECT_EQ(Nested->StringVal, "x\"y");
  const obs::JsonValue *F = Doc.findNumber("f");
  ASSERT_NE(F, nullptr);
  EXPECT_DOUBLE_EQ(F->NumberVal, -2000.0);
}

TEST_F(ObsExportTest, JsonParserRejectsMalformedInput) {
  obs::JsonValue Doc;
  for (const char *Bad :
       {"", "{", "[1, 2", "{\"a\": }", "{\"a\": 1,}", "{'a': 1}",
        "{\"a\": 1} trailing", "\"unterminated", "{\"a\": 01}", "nul"}) {
    std::string Error;
    EXPECT_FALSE(obs::parseJson(Bad, Doc, &Error))
        << "accepted malformed input: " << Bad;
    EXPECT_FALSE(Error.empty());
  }
}

//===----------------------------------------------------------------------===//
// Metrics schema round-trip
//===----------------------------------------------------------------------===//

TEST_F(ObsExportTest, MetricsSnapshotRoundTripsThroughSchema) {
  obs::Counter C("roundtrip.counter");
  obs::Gauge G("roundtrip.gauge");
  obs::Histogram H("roundtrip.hist");
  C.add(42);
  G.set(-1.25);
  for (uint64_t V = 0; V < 100; ++V)
    H.record(V * V);

  obs::TelemetrySnapshot Snap = obs::Registry::instance().snapshot();
  std::string Json = obs::metricsJson(Snap);

  obs::JsonValue Doc;
  std::string Error;
  ASSERT_TRUE(obs::parseJson(Json, Doc, &Error)) << Error;
  EXPECT_TRUE(obs::validateMetricsJson(Doc, &Error)) << Error;

  // Parsed values agree with the in-memory snapshot.
  const obs::JsonValue *Counter =
      Doc.find("counters")->findNumber("roundtrip.counter");
  ASSERT_NE(Counter, nullptr);
  EXPECT_DOUBLE_EQ(Counter->NumberVal, 42.0);
  const obs::JsonValue *Gauge =
      Doc.find("gauges")->findNumber("roundtrip.gauge");
  ASSERT_NE(Gauge, nullptr);
  EXPECT_DOUBLE_EQ(Gauge->NumberVal, -1.25);
  const obs::JsonValue *Hist = Doc.find("histograms")->find("roundtrip.hist");
  ASSERT_NE(Hist, nullptr);
  EXPECT_DOUBLE_EQ(Hist->findNumber("count")->NumberVal, 100.0);
  EXPECT_DOUBLE_EQ(Hist->findNumber("max")->NumberVal,
                   static_cast<double>(99 * 99));
}

TEST_F(ObsExportTest, MetricsValidatorRejectsBrokenDocuments) {
  auto Check = [](const char *Text) {
    obs::JsonValue Doc;
    std::string Error;
    EXPECT_TRUE(obs::parseJson(Text, Doc, &Error)) << Error;
    EXPECT_FALSE(obs::validateMetricsJson(Doc, &Error));
    EXPECT_FALSE(Error.empty());
  };
  Check(R"({"counters": {}, "gauges": {}, "histograms": {}})"); // no schema
  Check(R"({"schema": "other-v1", "counters": {}, "gauges": {},
            "histograms": {}})");
  Check(R"({"schema": "atmem-metrics-v1", "counters": {"c": "NaN"},
            "gauges": {}, "histograms": {}})");
  Check(R"({"schema": "atmem-metrics-v1", "counters": {"c": -1},
            "gauges": {}, "histograms": {}})");
  // Bucket counts not summing to "count".
  Check(R"({"schema": "atmem-metrics-v1", "counters": {}, "gauges": {},
            "histograms": {"h": {"count": 5, "sum": 0, "min": 0, "max": 0,
            "p50": 0, "p90": 0, "p99": 0,
            "buckets": [{"lo": 0, "count": 3}]}}})");
}

//===----------------------------------------------------------------------===//
// Chrome trace export
//===----------------------------------------------------------------------===//

TEST_F(ObsExportTest, TraceExportIsValidChromeTraceJson) {
  {
    obs::SpanScope Outer("outer", "test");
    Outer.arg("bytes", 128.0);
    obs::SpanScope Inner("inner", "test");
  }
  std::thread([&] {
    obs::SpanScope Other("other-thread", "test");
  }).join();

  std::string Json = obs::Tracer::instance().chromeTraceJson();
  obs::JsonValue Doc;
  std::string Error;
  ASSERT_TRUE(obs::parseJson(Json, Doc, &Error)) << Error;
  EXPECT_TRUE(obs::validateTraceJson(Doc, &Error)) << Error;

  const obs::JsonValue *Events = Doc.find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_EQ(Events->Array.size(), 6u); // 3 spans x B/E

  // Spans on the same thread share a tid; the other thread differs.
  double MainTid = Events->Array[0].findNumber("tid")->NumberVal;
  int MainEvents = 0, OtherEvents = 0;
  for (const obs::JsonValue &E : Events->Array)
    (E.findNumber("tid")->NumberVal == MainTid ? MainEvents : OtherEvents)++;
  EXPECT_EQ(MainEvents, 4);
  EXPECT_EQ(OtherEvents, 2);

  // The end event carries the attached argument.
  bool FoundArg = false;
  for (const obs::JsonValue &E : Events->Array) {
    if (E.findString("name")->StringVal != "outer" ||
        E.findString("ph")->StringVal != "E")
      continue;
    const obs::JsonValue *Args = E.find("args");
    ASSERT_NE(Args, nullptr);
    const obs::JsonValue *Bytes = Args->findNumber("bytes");
    ASSERT_NE(Bytes, nullptr);
    EXPECT_DOUBLE_EQ(Bytes->NumberVal, 128.0);
    FoundArg = true;
  }
  EXPECT_TRUE(FoundArg);
}

TEST_F(ObsExportTest, TraceValidatorRejectsBadNesting) {
  auto Check = [](const char *Text) {
    obs::JsonValue Doc;
    std::string Error;
    EXPECT_TRUE(obs::parseJson(Text, Doc, &Error)) << Error;
    EXPECT_FALSE(obs::validateTraceJson(Doc, &Error));
    EXPECT_FALSE(Error.empty());
  };
  // End without begin.
  Check(R"({"traceEvents": [{"name": "a", "cat": "t", "ph": "E", "ts": 0,
            "pid": 1, "tid": 0}]})");
  // Interleaved (improperly nested) spans on one tid.
  Check(R"({"traceEvents": [
    {"name": "a", "cat": "t", "ph": "B", "ts": 0, "pid": 1, "tid": 0},
    {"name": "b", "cat": "t", "ph": "B", "ts": 1, "pid": 1, "tid": 0},
    {"name": "a", "cat": "t", "ph": "E", "ts": 2, "pid": 1, "tid": 0},
    {"name": "b", "cat": "t", "ph": "E", "ts": 3, "pid": 1, "tid": 0}]})");
  // Unclosed span.
  Check(R"({"traceEvents": [{"name": "a", "cat": "t", "ph": "B", "ts": 0,
            "pid": 1, "tid": 0}]})");
  // Timestamp regression within a tid.
  Check(R"({"traceEvents": [
    {"name": "a", "cat": "t", "ph": "B", "ts": 5, "pid": 1, "tid": 0},
    {"name": "a", "cat": "t", "ph": "E", "ts": 4, "pid": 1, "tid": 0}]})");
}

TEST_F(ObsExportTest, DisabledSpansEmitNothing) {
  obs::setEnabled(false);
  {
    obs::SpanScope Span("invisible", "test");
    Span.arg("x", 1.0);
  }
  obs::setEnabled(true);
  EXPECT_EQ(obs::Tracer::instance().eventCount(), 0u);
}

//===----------------------------------------------------------------------===//
// End-to-end: instrumented experiment surfaces the paper-metric catalogue
//===----------------------------------------------------------------------===//

TEST_F(ObsExportTest, InstrumentedExperimentExportsFullCatalogue) {
  graph::Dataset Data = graph::makeDataset("pokec", 2048);
  baseline::RunConfig Config;
  Config.KernelName = "pr";
  Config.Graph = &Data.Graph;
  Config.Machine = sim::nvmDramTestbed(1.0 / 2048);
  Config.PolicyKind = baseline::Policy::Atmem;
  Config.MeasuredIterations = 2;
  Config.Telemetry.Enabled = true;
  baseline::RunResult Result = baseline::runExperiment(Config);
  EXPECT_GT(Result.MeasuredIterSec, 0.0);
  EXPECT_EQ(Result.IterStats.count(), 2u);
  EXPECT_NEAR(Result.IterStats.mean(), Result.MeasuredIterSec, 1e-15);

  obs::TelemetrySnapshot Snap = obs::Registry::instance().snapshot();

  // Pipeline counters from every stage.
  for (const char *Name :
       {"profiler.samples_taken", "profiler.misses_seen",
        "analyzer.runs", "migrator.ranges", "migrator.bytes_to_fast",
        "runtime.iterations", "runtime.accesses"}) {
    const uint64_t *V = Snap.counter(Name);
    ASSERT_NE(V, nullptr) << Name;
    EXPECT_GT(*V, 0u) << Name;
  }
  EXPECT_EQ(*Snap.counter("runtime.iterations"), 3u); // 1 profiled + 2

  // Per-object analyzer gauges: Eq. 2/3 threshold components, Eq. 4
  // weight, and the Eq. 5 adaptive threshold for a known PageRank object.
  for (const char *Field :
       {"pr_max", "theta", "theta_percentile", "theta_noise_floor", "weight",
        "tr_threshold", "chunks_sampled_critical",
        "chunks_estimated_critical"}) {
    std::string Name = std::string("analyzer.obj.csr.cols.") + Field;
    EXPECT_NE(Snap.gauge(Name), nullptr) << Name;
  }
  EXPECT_NE(Snap.gauge("profiler.period.effective"), nullptr);
  EXPECT_NE(Snap.gauge("migrator.staging_hwm_bytes"), nullptr);

  // Stage-duration histograms from the migration cost breakdown.
  for (const char *Name :
       {"migrator.range_bytes", "migrator.copy_in_sim_us",
        "migrator.remap_sim_us", "migrator.copy_out_sim_us",
        "runtime.iteration_sim_us"}) {
    const obs::HistogramSnapshot *H = Snap.histogram(Name);
    ASSERT_NE(H, nullptr) << Name;
    EXPECT_GT(H->Count, 0u) << Name;
  }

  // The whole snapshot exports as a schema-valid document...
  obs::JsonValue Doc;
  std::string Error;
  ASSERT_TRUE(obs::parseJson(obs::metricsJson(Snap), Doc, &Error)) << Error;
  EXPECT_TRUE(obs::validateMetricsJson(Doc, &Error)) << Error;

  // ...and the recorded spans export as a valid Chrome trace covering the
  // whole pipeline.
  ASSERT_TRUE(
      obs::parseJson(obs::Tracer::instance().chromeTraceJson(), Doc, &Error))
      << Error;
  EXPECT_TRUE(obs::validateTraceJson(Doc, &Error)) << Error;
  std::set<std::string> SpanNames;
  for (const obs::JsonValue &E : Doc.find("traceEvents")->Array)
    SpanNames.insert(E.findString("name")->StringVal);
  for (const char *Name : {"profiler.window", "analyzer.classify",
                           "migrator.range", "migrator.copy_in",
                           "migrator.remap", "migrator.copy_out",
                           "runtime.iteration", "runtime.optimize"})
    EXPECT_TRUE(SpanNames.count(Name)) << Name;
}

TEST_F(ObsExportTest, ExportIfConfiguredWritesBothArtifacts) {
  obs::Counter("export.counter").add(1);
  { obs::SpanScope Span("export.span", "test"); }

  std::string Dir = ::testing::TempDir();
  obs::TelemetryConfig Config;
  Config.MetricsPath = Dir + "/obs_export_metrics.json";
  Config.TracePath = Dir + "/obs_export_trace.json";
  ASSERT_TRUE(obs::exportIfConfigured(Config));

  obs::JsonValue Doc;
  std::string Error;
  ASSERT_TRUE(obs::parseJsonFile(Config.MetricsPath, Doc, &Error)) << Error;
  EXPECT_TRUE(obs::validateMetricsJson(Doc, &Error)) << Error;
  ASSERT_TRUE(obs::parseJsonFile(Config.TracePath, Doc, &Error)) << Error;
  EXPECT_TRUE(obs::validateTraceJson(Doc, &Error)) << Error;
}
