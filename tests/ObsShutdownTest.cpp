//===----------------------------------------------------------------------===//
// Shutdown-ordering tests for the observability writers: the async
// trace-spill thread's destructor-vs-finish() paths, truncation detection
// when a process dies without either, and the decision ring's behaviour
// across abnormal exits and injected close-time failures — the trailer
// and the published ring head must stay consistent whichever path runs.
//===----------------------------------------------------------------------===//

#include "fault/FaultInjection.h"
#include "obs/DecisionLog.h"
#include "obs/RingLog.h"
#include "profiler/TraceFile.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

using namespace atmem;
using namespace atmem::obs;

namespace {

class ObsShutdownTest : public ::testing::Test {
protected:
  void SetUp() override {
    DecisionLog::instance().close();
    fault::FaultRegistry::instance().disarmAll();
  }
  void TearDown() override {
    DecisionLog::instance().close();
    fault::FaultRegistry::instance().disarmAll();
  }

  static std::string tempPath(const char *Name) {
    return ::testing::TempDir() + Name;
  }
};

/// Reads a trace back, returning true when the file is complete and
/// filling \p Events with the decoded stream.
bool readTrace(const std::string &Path, std::vector<uint64_t> &Events) {
  prof::TraceReader Reader;
  if (!Reader.open(Path))
    return false;
  Events.clear();
  return Reader.forEach([&Events](uint64_t Va) { Events.push_back(Va); });
}

//===----------------------------------------------------------------------===//
// Async trace spill: destructor vs explicit finish()
//===----------------------------------------------------------------------===//

TEST_F(ObsShutdownTest, TraceWriterDestructorDrainsAndPatchesHeader) {
  std::string Path = tempPath("shutdown_trace_dtor.bin");
  {
    prof::TraceWriter Writer;
    ASSERT_TRUE(Writer.open(Path));
    // Enough events to force several async spill hand-offs.
    for (uint64_t I = 0; I < (1 << 17) + 37; ++I)
      Writer.record(0x1000 + I * 64);
    // No finish(): the destructor must drain the spill queue, patch the
    // header's event count, and close — same bytes as an explicit finish.
  }
  std::vector<uint64_t> Events;
  ASSERT_TRUE(readTrace(Path, Events));
  ASSERT_EQ(Events.size(), (1u << 17) + 37u);
  EXPECT_EQ(Events.front(), 0x1000u);
  EXPECT_EQ(Events.back(), 0x1000u + ((1ull << 17) + 36) * 64);
}

TEST_F(ObsShutdownTest, TraceWriterFinishThenDestructorIsIdempotent) {
  std::string Path = tempPath("shutdown_trace_finish.bin");
  {
    prof::TraceWriter Writer;
    ASSERT_TRUE(Writer.open(Path));
    std::vector<uint64_t> Batch;
    for (uint64_t I = 0; I < 1000; ++I)
      Batch.push_back(I * 8);
    Writer.recordBatchOwned(std::move(Batch));
    EXPECT_TRUE(Writer.finish());
    EXPECT_FALSE(Writer.isOpen());
    // The destructor now runs over an already-finished writer: no double
    // close, no second trailer, no crash.
  }
  std::vector<uint64_t> Events;
  ASSERT_TRUE(readTrace(Path, Events));
  EXPECT_EQ(Events.size(), 1000u);
}

TEST_F(ObsShutdownTest, AbnormalExitNeverServesUnfinishedTraceEvents) {
  std::string Path = tempPath("shutdown_trace_abexit.bin");
  pid_t Child = ::fork();
  ASSERT_GE(Child, 0);
  if (Child == 0) {
    // The child dies without running destructors: whatever the spill
    // thread managed to write, the header's placeholder count (zero) was
    // never patched.
    auto *Writer = new prof::TraceWriter();
    if (!Writer->open(Path))
      ::_exit(1);
    for (uint64_t I = 0; I < (1 << 17); ++I)
      Writer->record(I);
    ::_exit(0);
  }
  int Status = 0;
  ASSERT_EQ(::waitpid(Child, &Status, 0), Child);
  ASSERT_TRUE(WIFEXITED(Status) && WEXITSTATUS(Status) == 0);

  // Depending on how far the spill thread got before the exit, the file
  // is either headerless (stdio buffer never flushed — the reader rejects
  // it) or carries the unpatched placeholder header whose zero count
  // marks it incomplete. Either way, not one event of the torn file may
  // be served as if it were recorded.
  prof::TraceReader Reader;
  if (Reader.open(Path)) {
    EXPECT_EQ(Reader.eventCount(), 0u);
    std::vector<uint64_t> Events;
    EXPECT_TRUE(readTrace(Path, Events));
    EXPECT_TRUE(Events.empty());
  }
}

//===----------------------------------------------------------------------===//
// Ring writer: abnormal exit and close-time faults
//===----------------------------------------------------------------------===//

TEST_F(ObsShutdownTest, RingSurvivesExitWithoutCloseLosingOnlyTheTail) {
  std::string Base = tempPath("shutdown_ring_abexit.atdr");
  pid_t Child = ::fork();
  ASSERT_GE(Child, 0);
  if (Child == 0) {
    std::string Error;
    if (!openDecisionLogRing(Base, RingLogOptions(), &Error))
      ::_exit(1);
    DecisionLog &Log = DecisionLog::instance();
    for (uint64_t Epoch = 0; Epoch < 5; ++Epoch) {
      Log.beginEpoch();
      ObjectEpochRecord Obj;
      Obj.Object = 1;
      Obj.NameId = Log.nameId("v");
      Obj.NumChunks = 4;
      Log.recordObject(Obj);
    }
    ::_exit(0); // No close(): no trailer, mmap pages left to the kernel.
  }
  int Status = 0;
  ASSERT_EQ(::waitpid(Child, &Status, 0), Child);
  ASSERT_TRUE(WIFEXITED(Status) && WEXITSTATUS(Status) == 0);

  // Four of the five epochs are provably complete (each terminated by
  // the next EpochBegin); the fifth was in flight and must be dropped.
  DecisionArtifact Artifact;
  RingRecoveryStats Stats;
  std::string Error;
  ASSERT_TRUE(readRingLog(Base, Artifact, &Error, &Stats)) << Error;
  EXPECT_FALSE(Stats.CleanClose);
  EXPECT_EQ(Stats.SalvagedEpochs, 4u);
  EXPECT_EQ(Stats.TornFrames, 0u);
  EXPECT_GT(Stats.DroppedTail, 0u);
  ASSERT_TRUE(validateDecisionLog(Artifact, &Error)) << Error;
}

TEST_F(ObsShutdownTest, FaultedTrailerWriteStillLeavesASalvageableRing) {
  std::string Base = tempPath("shutdown_ring_closefault.atdr");
  std::string Error;
  ASSERT_TRUE(openDecisionLogRing(Base, RingLogOptions(), &Error)) << Error;
  DecisionLog &Log = DecisionLog::instance();
  for (uint64_t Epoch = 0; Epoch < 3; ++Epoch) {
    Log.beginEpoch();
    ObjectEpochRecord Obj;
    Obj.Object = 1;
    Obj.NameId = Log.nameId("v");
    Obj.NumChunks = 4;
    Log.recordObject(Obj);
  }

  // The device fails exactly when close() tries to write the trailer.
  ASSERT_TRUE(fault::armFromSpec("obs.ring_write=every:1", &Error)) << Error;
  EXPECT_FALSE(Log.close(&Error));
  EXPECT_NE(Error.find("write failure"), std::string::npos) << Error;
  fault::FaultRegistry::instance().disarmAll();

  // close() still tore the sink down: the head is unpublished, and the
  // on-disk state reads exactly like a crash (no trailer, last epoch
  // dropped) rather than something half-closed.
  RingHead Head = ringHead();
  EXPECT_EQ(Head.Segment, 0u);
  EXPECT_EQ(Head.Offset, 0u);
  EXPECT_EQ(Head.NextSeq, 0u);
  EXPECT_FALSE(DecisionLog::instance().isOpen());

  DecisionArtifact Artifact;
  RingRecoveryStats Stats;
  ASSERT_TRUE(readRingLog(Base, Artifact, &Error, &Stats)) << Error;
  EXPECT_FALSE(Stats.CleanClose);
  EXPECT_EQ(Stats.SalvagedEpochs, 2u);
  ASSERT_TRUE(validateDecisionLog(Artifact, &Error)) << Error;
}

TEST_F(ObsShutdownTest, DestructorWithoutFinishStillUnmapsCleanly) {
  // openSink hands the sink to the process-wide log; closing without a
  // prior record must write trailer-only and succeed.
  std::string Base = tempPath("shutdown_ring_empty.atdr");
  std::string Error;
  ASSERT_TRUE(openDecisionLogRing(Base, RingLogOptions(), &Error)) << Error;
  ASSERT_TRUE(DecisionLog::instance().close(&Error)) << Error;

  DecisionArtifact Artifact;
  RingRecoveryStats Stats;
  ASSERT_TRUE(readRingLog(Base, Artifact, &Error, &Stats)) << Error;
  EXPECT_TRUE(Stats.CleanClose);
  EXPECT_EQ(Stats.SalvagedEpochs, 0u);
  EXPECT_TRUE(validateDecisionLog(Artifact, &Error)) << Error;
}

} // namespace
