//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the telemetry registry: exact concurrent counting over the
/// per-thread slabs, log-scale histogram bucketing and percentiles against
/// atmem::percentile, snapshot determinism across recording interleavings,
/// and the disabled-collection contract.
///
//===----------------------------------------------------------------------===//

#include "obs/Export.h"
#include "obs/Telemetry.h"
#include "support/Statistics.h"

#include "gtest/gtest.h"

#include <thread>
#include <vector>

using namespace atmem;

namespace {

/// Arms collection and clears prior values; disarms on exit so other test
/// suites in the process see the default-off state.
class ObsTelemetryTest : public ::testing::Test {
protected:
  void SetUp() override {
    obs::Registry::instance().resetValues();
    obs::setEnabled(true);
  }
  void TearDown() override {
    obs::setEnabled(false);
    obs::Registry::instance().resetValues();
  }
};

} // namespace

TEST_F(ObsTelemetryTest, ConcurrentCounterIncrementsSumExactly) {
  obs::Counter C("test.concurrent_counter");
  constexpr int Threads = 8;
  constexpr uint64_t PerThread = 20000;
  std::vector<std::thread> Workers;
  for (int T = 0; T < Threads; ++T)
    Workers.emplace_back([&] {
      for (uint64_t I = 0; I < PerThread; ++I)
        C.add(1);
    });
  for (std::thread &W : Workers)
    W.join();

  obs::TelemetrySnapshot Snap = obs::Registry::instance().snapshot();
  const uint64_t *Total = Snap.counter("test.concurrent_counter");
  ASSERT_NE(Total, nullptr);
  EXPECT_EQ(*Total, Threads * PerThread);
}

TEST_F(ObsTelemetryTest, ConcurrentHistogramCountsExactly) {
  obs::Histogram H("test.concurrent_hist");
  constexpr int Threads = 4;
  constexpr uint64_t PerThread = 5000;
  std::vector<std::thread> Workers;
  for (int T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      for (uint64_t I = 0; I < PerThread; ++I)
        H.record(I + static_cast<uint64_t>(T)); // overlapping value ranges
    });
  for (std::thread &W : Workers)
    W.join();

  obs::TelemetrySnapshot Snap = obs::Registry::instance().snapshot();
  const obs::HistogramSnapshot *Merged =
      Snap.histogram("test.concurrent_hist");
  ASSERT_NE(Merged, nullptr);
  EXPECT_EQ(Merged->Count, Threads * PerThread);
  uint64_t BucketTotal = 0;
  for (const auto &[Lo, N] : Merged->Buckets)
    BucketTotal += N;
  EXPECT_EQ(BucketTotal, Merged->Count);
  EXPECT_EQ(Merged->Min, 0u);
  EXPECT_EQ(Merged->Max, PerThread - 1 + Threads - 1);
}

TEST_F(ObsTelemetryTest, BucketBoundsRoundTrip) {
  // Every value maps to a bucket whose [lower, upper) range contains it,
  // and bucket bounds are consistent with the index mapping.
  for (uint64_t V :
       {uint64_t{0}, uint64_t{1}, uint64_t{31}, uint64_t{32}, uint64_t{33},
        uint64_t{63}, uint64_t{64}, uint64_t{1000}, uint64_t{1} << 20,
        (uint64_t{1} << 20) + 12345, uint64_t{1} << 40, UINT64_MAX}) {
    uint32_t Index = obs::histogramBucketIndex(V);
    ASSERT_LT(Index, obs::HistogramBuckets);
    EXPECT_LE(obs::histogramBucketLowerBound(Index), V);
    // The topmost bucket's upper bound saturates at UINT64_MAX instead of
    // wrapping past 2^64.
    uint64_t Upper = obs::histogramBucketUpperBound(Index);
    EXPECT_TRUE(Upper > V || Upper == UINT64_MAX);
    EXPECT_EQ(obs::histogramBucketIndex(obs::histogramBucketLowerBound(Index)),
              Index);
  }
  // Small values are exact: one bucket per integer below 32.
  for (uint64_t V = 0; V < 32; ++V) {
    uint32_t Index = obs::histogramBucketIndex(V);
    EXPECT_EQ(obs::histogramBucketLowerBound(Index), V);
    EXPECT_EQ(obs::histogramBucketUpperBound(Index), V + 1);
  }
}

TEST_F(ObsTelemetryTest, PercentileMatchesExactOnSmallValues) {
  // Consecutive small integers occupy unit-width buckets, so the
  // closest-ranks interpolation of HistogramSnapshot::percentile is
  // exactly atmem::percentile over the same values.
  obs::Histogram H("test.pct_small");
  std::vector<double> Reference;
  for (uint64_t V = 0; V < 32; ++V) {
    H.record(V);
    Reference.push_back(static_cast<double>(V));
  }
  obs::TelemetrySnapshot Snap = obs::Registry::instance().snapshot();
  const obs::HistogramSnapshot *HS = Snap.histogram("test.pct_small");
  ASSERT_NE(HS, nullptr);
  for (double Pct : {0.0, 10.0, 25.0, 50.0, 90.0, 99.0, 100.0})
    EXPECT_DOUBLE_EQ(HS->percentile(Pct), percentile(Reference, Pct))
        << "at percentile " << Pct;
}

TEST_F(ObsTelemetryTest, PercentileWithinQuantizationOnLogRange) {
  // Log-range values land in sub-bucketed power-of-two buckets. A
  // histogram quantile cannot reproduce atmem::percentile's between-rank
  // interpolation (the raw values are gone), but it must bracket the two
  // ranks the exact percentile interpolates between, give or take one
  // bucket's quantization (~12.5% relative).
  obs::Histogram H("test.pct_log");
  std::vector<double> Sorted;
  uint64_t V = 1;
  // 150 steps keeps V * 21 below 2^64; more would wrap and unsort the set.
  for (int I = 0; I < 150; ++I) {
    H.record(V);
    Sorted.push_back(static_cast<double>(V));
    V = V * 21 / 16 + 1; // ~1.3x growth: several values per octave
  }
  obs::TelemetrySnapshot Snap = obs::Registry::instance().snapshot();
  const obs::HistogramSnapshot *HS = Snap.histogram("test.pct_log");
  ASSERT_NE(HS, nullptr);
  for (double Pct : {10.0, 50.0, 90.0, 99.0}) {
    double Rank = Pct / 100.0 * static_cast<double>(Sorted.size() - 1);
    double RankLo = Sorted[static_cast<size_t>(Rank)];
    double RankHi =
        Sorted[std::min(static_cast<size_t>(Rank) + 1, Sorted.size() - 1)];
    double Estimate = HS->percentile(Pct);
    EXPECT_GE(Estimate, RankLo * 0.875 - 1.0) << "at percentile " << Pct;
    EXPECT_LE(Estimate, RankHi * 1.125 + 1.0) << "at percentile " << Pct;
  }
}

TEST_F(ObsTelemetryTest, SnapshotDeterministicAcrossInterleavings) {
  // The same multiset of recorded values must produce the same snapshot
  // (and the same exported JSON) regardless of which threads recorded
  // which values and in what order.
  auto RecordPartitioned = [](int Threads) {
    obs::Counter C("test.det_counter");
    obs::Histogram H("test.det_hist");
    std::vector<std::thread> Workers;
    for (int T = 0; T < Threads; ++T)
      Workers.emplace_back([&, T] {
        for (uint64_t I = T; I < 4000; I += Threads) {
          C.add(I % 7);
          H.record(I);
        }
      });
    for (std::thread &W : Workers)
      W.join();
  };

  RecordPartitioned(1);
  std::string SerialJson =
      obs::metricsJson(obs::Registry::instance().snapshot());

  obs::Registry::instance().resetValues();
  RecordPartitioned(5);
  std::string ShardedJson =
      obs::metricsJson(obs::Registry::instance().snapshot());

  EXPECT_EQ(SerialJson, ShardedJson);
}

TEST_F(ObsTelemetryTest, GaugeSetAndMax) {
  obs::Gauge Last("test.gauge_last");
  obs::Gauge Hwm("test.gauge_hwm");
  Last.set(3.0);
  Last.set(1.5);
  Hwm.max(10.0);
  Hwm.max(4.0);
  Hwm.max(25.0);

  obs::TelemetrySnapshot Snap = obs::Registry::instance().snapshot();
  const double *LastVal = Snap.gauge("test.gauge_last");
  const double *HwmVal = Snap.gauge("test.gauge_hwm");
  ASSERT_NE(LastVal, nullptr);
  ASSERT_NE(HwmVal, nullptr);
  EXPECT_DOUBLE_EQ(*LastVal, 1.5);  // last writer wins
  EXPECT_DOUBLE_EQ(*HwmVal, 25.0); // monotonic high-water mark
}

TEST_F(ObsTelemetryTest, DisabledCollectionRecordsNothing) {
  obs::Counter C("test.disabled_counter");
  obs::Histogram H("test.disabled_hist");
  obs::Gauge G("test.disabled_gauge");
  obs::setEnabled(false);
  C.add(5);
  H.record(42);
  G.set(7.0);
  obs::setEnabled(true);

  obs::TelemetrySnapshot Snap = obs::Registry::instance().snapshot();
  const uint64_t *Counter = Snap.counter("test.disabled_counter");
  ASSERT_NE(Counter, nullptr); // name registered at handle construction
  EXPECT_EQ(*Counter, 0u);     // but nothing recorded while disabled
  const obs::HistogramSnapshot *Hist = Snap.histogram("test.disabled_hist");
  ASSERT_NE(Hist, nullptr);
  EXPECT_EQ(Hist->Count, 0u);
  EXPECT_EQ(Snap.gauge("test.disabled_gauge"), nullptr); // never touched
}

TEST_F(ObsTelemetryTest, ResetValuesKeepsNamesZeroesValues) {
  obs::Counter C("test.reset_counter");
  C.add(17);
  obs::Registry::instance().resetValues();
  obs::TelemetrySnapshot Snap = obs::Registry::instance().snapshot();
  const uint64_t *Counter = Snap.counter("test.reset_counter");
  ASSERT_NE(Counter, nullptr);
  EXPECT_EQ(*Counter, 0u);
}
