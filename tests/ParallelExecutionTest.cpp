//===----------------------------------------------------------------------===//
// Integration tests for the parallel tracked-execution engine: kernels run
// with SimThreads > 1 must produce checksums bit-identical to the serial
// engine, stats merging must be deterministic, and per-thread LLC shards
// must keep the access totals exact.
//===----------------------------------------------------------------------===//

#include "apps/Kernel.h"
#include "baseline/Experiment.h"
#include "core/Runtime.h"
#include "graph/Datasets.h"

#include <gtest/gtest.h>

using namespace atmem;
using namespace atmem::baseline;

namespace {

/// Shared scaled dataset; rmat24 is the smallest input with robust skew.
class ParallelExecutionTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    Data = new graph::Dataset(graph::makeDataset("rmat24", 512));
  }
  static void TearDownTestSuite() {
    delete Data;
    Data = nullptr;
  }

  RunConfig config(const std::string &Kernel, Policy P,
                   uint32_t SimThreads) const {
    RunConfig Config;
    Config.KernelName = Kernel;
    Config.Graph = &Data->Graph;
    Config.Machine = sim::nvmDramTestbed(1.0 / 512);
    Config.PolicyKind = P;
    Config.SimThreads = SimThreads;
    return Config;
  }

  static graph::Dataset *Data;
};

graph::Dataset *ParallelExecutionTest::Data = nullptr;

/// The kernels with parallel implementations.
const char *ParallelKernels[] = {"bfs", "pr", "spmv"};

TEST_F(ParallelExecutionTest, ChecksumMatchesSerialEveryThreadCount) {
  for (const char *Kernel : ParallelKernels) {
    uint64_t Reference =
        runExperiment(config(Kernel, Policy::AllSlow, 1)).Checksum;
    for (uint32_t Threads : {2u, 8u})
      EXPECT_EQ(runExperiment(config(Kernel, Policy::AllSlow, Threads))
                    .Checksum,
                Reference)
          << Kernel << " with " << Threads << " sim threads";
  }
}

TEST_F(ParallelExecutionTest, ChecksumMatchesSerialUnderAtmemPolicy) {
  // The ATMem policy exercises the full profile -> merge -> migrate loop:
  // per-thread miss buffers must drain into the sampling profiler and the
  // resulting placement must not perturb kernel results.
  for (const char *Kernel : ParallelKernels) {
    uint64_t Reference =
        runExperiment(config(Kernel, Policy::Atmem, 1)).Checksum;
    for (uint32_t Threads : {2u, 8u})
      EXPECT_EQ(
          runExperiment(config(Kernel, Policy::Atmem, Threads)).Checksum,
          Reference)
          << Kernel << " with " << Threads << " sim threads";
  }
}

TEST_F(ParallelExecutionTest, ParallelChecksumsAreRunToRunDeterministic) {
  // Dynamic chunk scheduling varies which thread touches which range (so
  // shard-local cache stats and the sampled miss stream may differ between
  // runs), but kernel results must not: repeated runs agree exactly.
  for (const char *Kernel : ParallelKernels) {
    RunResult First = runExperiment(config(Kernel, Policy::Atmem, 4));
    RunResult Second = runExperiment(config(Kernel, Policy::Atmem, 4));
    EXPECT_EQ(First.Checksum, Second.Checksum) << Kernel;
  }
}

TEST_F(ParallelExecutionTest, AtmemStillBeatsBaselineInParallel) {
  RunResult Slow = runExperiment(config("pr", Policy::AllSlow, 4));
  RunResult Atmem = runExperiment(config("pr", Policy::Atmem, 4));
  EXPECT_LT(Atmem.MeasuredIterSec, Slow.MeasuredIterSec);
}

TEST_F(ParallelExecutionTest, SpmvAccessTotalsMatchSerial) {
  // SpMV issues the same tracked-access stream in either engine (row
  // partitioning only changes who issues it), so the merged shard stats
  // must reproduce the serial access count exactly.
  auto CountAccesses = [&](uint32_t SimThreads) {
    core::RuntimeConfig RtConfig;
    RtConfig.Machine = sim::nvmDramTestbed(1.0 / 512);
    RtConfig.SimThreads = SimThreads;
    core::Runtime Rt(RtConfig);
    std::unique_ptr<apps::Kernel> Kernel = apps::makeKernel("spmv");
    Kernel->setup(Rt, Data->Graph);
    Rt.beginIteration();
    Kernel->runIteration();
    Rt.endIteration();
    return Rt.iterationStats().Accesses;
  };
  uint64_t Serial = CountAccesses(1);
  EXPECT_GT(Serial, 0u);
  EXPECT_EQ(CountAccesses(2), Serial);
  EXPECT_EQ(CountAccesses(8), Serial);
}

TEST_F(ParallelExecutionTest, SimThreadsReported) {
  core::RuntimeConfig RtConfig;
  RtConfig.Machine = sim::nvmDramTestbed(1.0 / 512);
  core::Runtime Serial(RtConfig);
  EXPECT_EQ(Serial.simThreads(), 1u);
  RtConfig.SimThreads = 4;
  core::Runtime Parallel(RtConfig);
  EXPECT_EQ(Parallel.simThreads(), 4u);
}

} // namespace
