//===----------------------------------------------------------------------===//
// Unit tests for placement-plan construction and budget trimming.
//===----------------------------------------------------------------------===//

#include "analyzer/PlacementPlan.h"

#include <gtest/gtest.h>

using namespace atmem::analyzer;
using atmem::mem::ChunkRange;

namespace {

/// Builds a classification with the given critical/promoted flags.
ObjectClassification makeClass(uint32_t ObjectId,
                               std::vector<uint8_t> Critical,
                               std::vector<uint8_t> Promoted,
                               uint64_t ChunkBytes = 4096,
                               uint64_t MappedBytes = 0) {
  ObjectClassification Class;
  Class.Object = ObjectId;
  Class.ChunkBytes = ChunkBytes;
  Class.MappedBytes =
      MappedBytes ? MappedBytes : Critical.size() * ChunkBytes;
  Class.Local.Critical = Critical;
  Class.Local.Priority.assign(Critical.size(), 0.0);
  for (size_t I = 0; I < Critical.size(); ++I)
    if (Critical[I]) {
      Class.Local.Priority[I] = 1.0;
      ++Class.Local.CriticalCount;
    }
  Class.Promotion.Promoted = Promoted;
  return Class;
}

TEST(PlanTest, MergesAdjacentChunksIntoRanges) {
  auto Class = makeClass(0, {1, 1, 0, 1, 1, 1, 0, 0}, {0, 0, 0, 0, 0, 0, 0, 0});
  PlacementPlan Plan = PlanBuilder::build({Class});
  ASSERT_EQ(Plan.Objects.size(), 1u);
  const ObjectPlan &Obj = Plan.Objects[0];
  ASSERT_EQ(Obj.Ranges.size(), 2u);
  EXPECT_EQ(Obj.Ranges[0], (ChunkRange{0, 2}));
  EXPECT_EQ(Obj.Ranges[1], (ChunkRange{3, 3}));
  EXPECT_EQ(Obj.Bytes, 5u * 4096);
}

TEST(PlanTest, PromotedChunksBridgeGaps) {
  auto Class = makeClass(0, {1, 0, 1, 0}, {0, 1, 0, 0});
  PlacementPlan Plan = PlanBuilder::build({Class});
  ASSERT_EQ(Plan.Objects[0].Ranges.size(), 1u);
  EXPECT_EQ(Plan.Objects[0].Ranges[0], (ChunkRange{0, 3}));
}

TEST(PlanTest, EmptySelectionProducesEmptyPlan) {
  auto Class = makeClass(0, {0, 0, 0}, {0, 0, 0});
  PlacementPlan Plan = PlanBuilder::build({Class});
  EXPECT_TRUE(Plan.Objects.empty());
  EXPECT_EQ(Plan.TotalBytes, 0u);
}

TEST(PlanTest, MultipleObjects) {
  auto A = makeClass(0, {1, 0}, {0, 0});
  auto B = makeClass(1, {0, 1}, {0, 0});
  PlacementPlan Plan = PlanBuilder::build({A, B});
  ASSERT_EQ(Plan.Objects.size(), 2u);
  EXPECT_EQ(Plan.Objects[0].Object, 0u);
  EXPECT_EQ(Plan.Objects[1].Object, 1u);
  EXPECT_EQ(Plan.TotalBytes, 2u * 4096);
}

TEST(PlanTest, PartialLastChunkCountsPayloadBytes) {
  // 3 chunks of 4 KiB over a 9 KiB mapping: last chunk holds 1 KiB...
  // mappings are page-rounded, so use 12 KiB mapped but chunk 8 KiB:
  // chunk 1 covers only 4 KiB.
  auto Class = makeClass(0, {1, 1}, {0, 0}, 8192, 12288);
  PlacementPlan Plan = PlanBuilder::build({Class});
  EXPECT_EQ(Plan.TotalBytes, 12288u);
}

TEST(PlanTest, DataRatio) {
  auto Class = makeClass(0, {1, 0, 0, 0}, {0, 0, 0, 0});
  PlacementPlan Plan = PlanBuilder::build({Class});
  EXPECT_DOUBLE_EQ(Plan.dataRatio(4 * 4096), 0.25);
  EXPECT_DOUBLE_EQ(Plan.dataRatio(0), 0.0);
}

TEST(PlanTest, BudgetKeepsHighestPriorityChunks) {
  ObjectClassification Class = makeClass(0, {1, 1, 1, 1}, {0, 0, 0, 0});
  Class.Local.Priority = {1.0, 9.0, 5.0, 3.0};
  PlacementPlan Plan = PlanBuilder::build({Class}, 2 * 4096);
  EXPECT_EQ(Plan.TotalBytes, 2u * 4096);
  // The two highest-priority chunks (1 and 2) survive.
  ASSERT_EQ(Plan.Objects.size(), 1u);
  ASSERT_EQ(Plan.Objects[0].Ranges.size(), 1u);
  EXPECT_EQ(Plan.Objects[0].Ranges[0], (ChunkRange{1, 2}));
}

TEST(PlanTest, BudgetDropsPromotedGapFillersFirst) {
  // Promoted chunks carry the PR sampling observed - often zero - so
  // they are the first to go under pressure.
  ObjectClassification Class = makeClass(0, {1, 0, 1}, {0, 1, 0});
  PlacementPlan Plan = PlanBuilder::build({Class}, 2 * 4096);
  ASSERT_EQ(Plan.Objects.size(), 1u);
  EXPECT_EQ(Plan.TotalBytes, 2u * 4096);
  EXPECT_EQ(Plan.Objects[0].Ranges.size(), 2u); // Gap chunk dropped.
}

TEST(PlanTest, GenerousBudgetKeepsEverything) {
  auto Class = makeClass(0, {1, 1, 1}, {0, 0, 0});
  PlacementPlan Plan = PlanBuilder::build({Class}, 1ull << 30);
  EXPECT_EQ(Plan.TotalBytes, 3u * 4096);
}

TEST(PlanTest, ZeroBudgetEmptyPlan) {
  auto Class = makeClass(0, {1, 1}, {0, 0});
  PlacementPlan Plan = PlanBuilder::build({Class}, 0);
  EXPECT_EQ(Plan.TotalBytes, 0u);
  EXPECT_TRUE(Plan.Objects.empty());
}

TEST(PlanTest, BudgetAcrossObjectsPrefersGlobalPriority) {
  ObjectClassification A = makeClass(0, {1}, {0});
  A.Local.Priority = {1.0};
  ObjectClassification B = makeClass(1, {1}, {0});
  B.Local.Priority = {10.0};
  PlacementPlan Plan = PlanBuilder::build({A, B}, 4096);
  ASSERT_EQ(Plan.Objects.size(), 1u);
  EXPECT_EQ(Plan.Objects[0].Object, 1u);
}

TEST(PlanTest, IsSelectedCombinesBothFlags) {
  auto Class = makeClass(0, {1, 0, 0}, {0, 1, 0});
  EXPECT_TRUE(Class.isSelected(0));
  EXPECT_TRUE(Class.isSelected(1));
  EXPECT_FALSE(Class.isSelected(2));
}

TEST(PlanTest, ChunkPayloadBytesClampsAtEnd) {
  auto Class = makeClass(0, {1, 1}, {0, 0}, 8192, 12288);
  EXPECT_EQ(Class.chunkPayloadBytes(0), 8192u);
  EXPECT_EQ(Class.chunkPayloadBytes(1), 4096u);
}

} // namespace
