//===----------------------------------------------------------------------===//
// Planted hot-set validation: synthetic workloads with a *known* hot set
// are profiled through the full pipeline (LLC -> sampling -> selection ->
// promotion), and the final placement is scored against the ground truth.
// This is the statistical end-to-end guarantee behind the paper's claim
// that ATMem "effectively detects the dense regions".
//===----------------------------------------------------------------------===//

#include "analyzer/Analyzer.h"
#include "core/Runtime.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

using namespace atmem;

namespace {

struct PlantedCase {
  uint64_t Seed;
  /// Fraction of the object that is genuinely hot.
  double HotFraction;
  /// Share of accesses landing in the hot region.
  double HotAccessShare;
  /// Whether the hot region is one contiguous block or scattered blocks.
  bool Contiguous;
};

class PlantedHotSetTest : public ::testing::TestWithParam<PlantedCase> {};

TEST_P(PlantedHotSetTest, SelectionRecoversThePlantedRegion) {
  const PlantedCase &Case = GetParam();
  core::RuntimeConfig Config;
  Config.Machine = sim::nvmDramTestbed(1.0 / 1024);
  core::Runtime Rt(Config);

  constexpr size_t Elements = 1 << 17; // 1 MiB of uint64.
  auto Arr = Rt.allocate<uint64_t>("planted", Elements);
  const mem::DataObject &Obj = Rt.registry().object(Arr.objectId());
  uint32_t Chunks = Obj.numChunks();
  uint64_t ElementsPerChunk = Elements / Chunks;

  // Plant the hot chunk set.
  auto HotChunks = static_cast<uint32_t>(Case.HotFraction * Chunks);
  HotChunks = std::max(HotChunks, 1u);
  std::vector<uint8_t> Truth(Chunks, 0);
  Xoshiro256 Layout(Case.Seed);
  if (Case.Contiguous) {
    uint32_t Start = static_cast<uint32_t>(
        Layout.nextBounded(Chunks - HotChunks + 1));
    for (uint32_t C = Start; C < Start + HotChunks; ++C)
      Truth[C] = 1;
  } else {
    uint32_t Placed = 0;
    while (Placed < HotChunks) {
      auto C = static_cast<uint32_t>(Layout.nextBounded(Chunks));
      if (!Truth[C]) {
        Truth[C] = 1;
        ++Placed;
      }
    }
  }
  std::vector<uint32_t> HotList;
  for (uint32_t C = 0; C < Chunks; ++C)
    if (Truth[C])
      HotList.push_back(C);

  // Drive accesses: HotAccessShare of them land uniformly in hot chunks,
  // the rest uniformly anywhere.
  Xoshiro256 Rng(Case.Seed ^ 0xabcdef);
  Rt.profilingStart();
  Rt.beginIteration();
  for (int I = 0; I < 400000; ++I) {
    size_t Index;
    if (Rng.nextDouble() < Case.HotAccessShare) {
      uint32_t C = HotList[Rng.nextBounded(HotList.size())];
      Index = C * ElementsPerChunk + Rng.nextBounded(ElementsPerChunk);
    } else {
      Index = Rng.nextBounded(Elements);
    }
    Arr[Index] += 1;
  }
  Rt.endIteration();
  Rt.profilingStop();

  analyzer::Analyzer Anal;
  auto Classes = Anal.classify(Rt.registry(), Rt.profiler());
  ASSERT_EQ(Classes.size(), 1u);

  // Score the selection against the planted truth.
  uint32_t TruePositives = 0, Selected = 0;
  for (uint32_t C = 0; C < Chunks; ++C) {
    if (Classes[0].isSelected(C)) {
      ++Selected;
      if (Truth[C])
        ++TruePositives;
    }
  }
  double Recall =
      static_cast<double>(TruePositives) / static_cast<double>(HotChunks);
  // The hot region concentrates HotAccessShare of the traffic in
  // HotFraction of the bytes; with that contrast the analyzer must
  // recover the bulk of it.
  EXPECT_GT(Recall, 0.8) << "selected " << Selected << " of " << Chunks;
  // And it must not blanket the object: allow the hot set plus patched
  // gaps plus a modest noise margin.
  EXPECT_LT(Selected, HotChunks * 3 + Chunks / 4)
      << "recall " << Recall;
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, PlantedHotSetTest,
    ::testing::Values(
        PlantedCase{1, 0.10, 0.90, true},
        PlantedCase{2, 0.10, 0.90, false},
        PlantedCase{3, 0.05, 0.80, true},
        PlantedCase{4, 0.05, 0.80, false},
        PlantedCase{5, 0.20, 0.95, true},
        PlantedCase{6, 0.20, 0.95, false},
        PlantedCase{7, 0.15, 0.85, true},
        PlantedCase{8, 0.15, 0.85, false},
        PlantedCase{9, 0.02, 0.70, true},
        PlantedCase{10, 0.02, 0.70, false}),
    [](const auto &Info) {
      return "seed" + std::to_string(Info.param.Seed) +
             (Info.param.Contiguous ? "_contig" : "_scatter");
    });

} // namespace
