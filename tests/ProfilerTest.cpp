//===----------------------------------------------------------------------===//
// Unit tests for the PEBS-like sampling profiler.
//===----------------------------------------------------------------------===//

#include "profiler/SamplingProfiler.h"

#include "sim/Machine.h"

#include <gtest/gtest.h>

using namespace atmem;
using namespace atmem::mem;
using namespace atmem::prof;
using namespace atmem::sim;

namespace {

class ProfilerTest : public ::testing::Test {
protected:
  ProfilerTest() : M(nvmDramTestbed(1.0 / 1024)), Registry(M) {}

  ProfilerConfig fixedPeriod(uint64_t Period) {
    ProfilerConfig Config;
    Config.InitialPeriod = Period;
    return Config;
  }

  Machine M;
  DataObjectRegistry Registry;
};

TEST_F(ProfilerTest, InactiveUntilStart) {
  SamplingProfiler Profiler(Registry, fixedPeriod(4));
  EXPECT_FALSE(Profiler.isActive());
  Profiler.notifyMiss(0x1000);
  EXPECT_EQ(Profiler.missesSeen(), 0u);
}

TEST_F(ProfilerTest, SamplesEveryNthMiss) {
  DataObject &Obj = Registry.create("a", 1 << 20, InitialPlacement::Slow);
  SamplingProfiler Profiler(Registry, fixedPeriod(4));
  Profiler.start(1);
  for (int I = 0; I < 16; ++I)
    Profiler.notifyMiss(Obj.va());
  EXPECT_EQ(Profiler.sampleCount(), 4u);
  EXPECT_EQ(Profiler.missesSeen(), 16u);
}

TEST_F(ProfilerTest, AttributesToCorrectChunk) {
  DataObject &Obj =
      Registry.create("a", 1 << 20, InitialPlacement::Slow, 65536);
  SamplingProfiler Profiler(Registry, fixedPeriod(1));
  Profiler.start(1);
  Profiler.notifyMiss(Obj.va() + 65536 * 3 + 17);
  Profiler.stop();
  ObjectProfile Profile = Profiler.profileFor(Obj.id());
  ASSERT_EQ(Profile.Samples.size(), Obj.numChunks());
  EXPECT_EQ(Profile.Samples[3], 1u);
  EXPECT_EQ(Profile.Samples[0], 0u);
}

TEST_F(ProfilerTest, EstimateIsSamplesTimesPeriod) {
  DataObject &Obj = Registry.create("a", 1 << 20, InitialPlacement::Slow);
  SamplingProfiler Profiler(Registry, fixedPeriod(8));
  Profiler.start(1);
  for (int I = 0; I < 64; ++I)
    Profiler.notifyMiss(Obj.va());
  Profiler.stop();
  ObjectProfile Profile = Profiler.profileFor(Obj.id());
  EXPECT_DOUBLE_EQ(Profile.EstimatedMisses[0], 64.0);
}

TEST_F(ProfilerTest, EstimateApproximatesTrueDistribution) {
  DataObject &Obj =
      Registry.create("a", 1 << 20, InitialPlacement::Slow, 65536);
  SamplingProfiler Profiler(Registry, fixedPeriod(7));
  Profiler.start(1);
  // Chunk 0 gets 3x the misses of chunk 1.
  for (int I = 0; I < 21000; ++I)
    Profiler.notifyMiss(Obj.va() + (I % 4 == 0 ? 65536 : 0));
  Profiler.stop();
  ObjectProfile Profile = Profiler.profileFor(Obj.id());
  double Ratio = Profile.EstimatedMisses[0] / Profile.EstimatedMisses[1];
  EXPECT_NEAR(Ratio, 3.0, 0.5);
}

TEST_F(ProfilerTest, StopFreezesResults) {
  DataObject &Obj = Registry.create("a", 1 << 20, InitialPlacement::Slow);
  SamplingProfiler Profiler(Registry, fixedPeriod(1));
  Profiler.start(1);
  Profiler.notifyMiss(Obj.va());
  Profiler.stop();
  Profiler.notifyMiss(Obj.va());
  EXPECT_EQ(Profiler.sampleCount(), 1u);
}

TEST_F(ProfilerTest, RestartClearsPreviousProfile) {
  DataObject &Obj = Registry.create("a", 1 << 20, InitialPlacement::Slow);
  SamplingProfiler Profiler(Registry, fixedPeriod(1));
  Profiler.start(1);
  Profiler.notifyMiss(Obj.va());
  Profiler.stop();
  Profiler.start(1);
  EXPECT_EQ(Profiler.sampleCount(), 0u);
  ObjectProfile Profile = Profiler.profileFor(Obj.id());
  EXPECT_EQ(Profile.Samples[0], 0u);
}

TEST_F(ProfilerTest, UnattributedAddressesCountedButNotRecorded) {
  Registry.create("a", 1 << 20, InitialPlacement::Slow);
  SamplingProfiler Profiler(Registry, fixedPeriod(1));
  Profiler.start(1);
  Profiler.notifyMiss(0x10); // Not inside any object.
  EXPECT_EQ(Profiler.sampleCount(), 1u);
}

TEST_F(ProfilerTest, BudgetDoublesPeriod) {
  DataObject &Obj = Registry.create("a", 1 << 20, InitialPlacement::Slow);
  ProfilerConfig Config = fixedPeriod(2);
  Config.MinSampleBudget = 16; // Tiny budget to trigger adaptation.
  Config.MaxSampleBudget = 16;
  Config.SamplesPerChunk = 0.001;
  SamplingProfiler Profiler(Registry, Config);
  Profiler.start(1);
  uint64_t InitialPeriod = Profiler.period();
  for (int I = 0; I < 2 * 16 + 10; ++I)
    Profiler.notifyMiss(Obj.va());
  EXPECT_GT(Profiler.period(), InitialPeriod);
}

TEST_F(ProfilerTest, EstimatesStayUnbiasedAcrossPeriodDoubling) {
  DataObject &Obj = Registry.create("a", 1 << 20, InitialPlacement::Slow);
  ProfilerConfig Config = fixedPeriod(2);
  Config.MinSampleBudget = 64;
  Config.MaxSampleBudget = 64;
  Config.SamplesPerChunk = 0.001;
  SamplingProfiler Profiler(Registry, Config);
  Profiler.start(1);
  constexpr int TotalMisses = 4000;
  for (int I = 0; I < TotalMisses; ++I)
    Profiler.notifyMiss(Obj.va());
  Profiler.stop();
  ObjectProfile Profile = Profiler.profileFor(Obj.id());
  EXPECT_NEAR(Profile.EstimatedMisses[0], TotalMisses,
              TotalMisses * 0.15);
}

TEST_F(ProfilerTest, DerivedPeriodGrowsWithThreads) {
  uint64_t P1 = SamplingProfiler::deriveInitialPeriod(1000, 1 << 30, 16);
  uint64_t P2 = SamplingProfiler::deriveInitialPeriod(1000, 1 << 30, 256);
  EXPECT_GE(P2, P1);
}

TEST_F(ProfilerTest, DerivedPeriodGrowsWithBytesPerChunk) {
  uint64_t Small = SamplingProfiler::deriveInitialPeriod(1024, 1 << 24, 48);
  uint64_t Large = SamplingProfiler::deriveInitialPeriod(1024, 1ull << 34, 48);
  EXPECT_GT(Large, Small);
}

TEST_F(ProfilerTest, OverheadScalesWithSamplesAndDividesByThreads) {
  DataObject &Obj = Registry.create("a", 1 << 20, InitialPlacement::Slow);
  ProfilerConfig Config = fixedPeriod(1);
  SamplingProfiler P1(Registry, Config);
  P1.start(1);
  for (int I = 0; I < 100; ++I)
    P1.notifyMiss(Obj.va());
  SamplingProfiler P48(Registry, Config);
  P48.start(48);
  for (int I = 0; I < 100; ++I)
    P48.notifyMiss(Obj.va());
  EXPECT_GT(P1.overheadSeconds(), 0.0);
  EXPECT_NEAR(P1.overheadSeconds() / 48.0, P48.overheadSeconds(), 1e-12);
}

TEST_F(ProfilerTest, ProfileForUnsampledObjectIsZeroes) {
  DataObject &Obj = Registry.create("a", 1 << 20, InitialPlacement::Slow);
  SamplingProfiler Profiler(Registry, fixedPeriod(4));
  Profiler.start(1);
  Profiler.stop();
  ObjectProfile Profile = Profiler.profileFor(Obj.id());
  EXPECT_EQ(Profile.Samples.size(), Obj.numChunks());
  for (uint64_t S : Profile.Samples)
    EXPECT_EQ(S, 0u);
}

} // namespace
