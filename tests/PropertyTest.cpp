//===----------------------------------------------------------------------===//
// Property-based tests: invariants checked over randomized inputs using
// parameterized gtest sweeps.
//===----------------------------------------------------------------------===//

#include "analyzer/GlobalPromoter.h"
#include "analyzer/MaryTree.h"
#include "analyzer/PlacementPlan.h"
#include "mem/AtmemMigrator.h"
#include "mem/MbindMigrator.h"
#include "sim/Machine.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

using namespace atmem;
using namespace atmem::analyzer;
using namespace atmem::mem;
using namespace atmem::sim;

namespace {

//===----------------------------------------------------------------------===//
// M-ary tree invariants over random leaf vectors.
//===----------------------------------------------------------------------===//

struct TreeCase {
  uint64_t Seed;
  uint32_t Arity;
  uint32_t Leaves;
};

class TreeInvariantTest : public ::testing::TestWithParam<TreeCase> {};

TEST_P(TreeInvariantTest, StructureInvariantsHold) {
  const TreeCase &Case = GetParam();
  Xoshiro256 Rng(Case.Seed);
  std::vector<uint8_t> Leaves(Case.Leaves);
  for (auto &L : Leaves)
    L = Rng.nextBounded(2) ? 1 : 0;
  MaryTree Tree(Leaves, Case.Arity);

  ASSERT_EQ(Tree.numLeaves(), Case.Leaves);
  uint32_t TotalCritical = 0;
  for (uint8_t L : Leaves)
    TotalCritical += L;

  const MaryTree::Node &Root = Tree.node(Tree.root());
  EXPECT_EQ(Root.Value, TotalCritical);
  EXPECT_EQ(Root.LeafBegin, 0u);
  EXPECT_EQ(Root.LeafEnd, Case.Leaves);

  for (uint32_t Id = 0; Id < Tree.numNodes(); ++Id) {
    const MaryTree::Node &Node = Tree.node(Id);
    // Tree ratio in [0, 1].
    double TR = Tree.treeRatio(Id);
    ASSERT_GE(TR, 0.0);
    ASSERT_LE(TR, 1.0);
    if (Node.isLeaf())
      continue;
    // Children partition the node's leaf range.
    ASSERT_GE(Node.NumChildren, 1u);
    ASSERT_LE(Node.NumChildren, Case.Arity);
    uint32_t Cursor = Node.LeafBegin;
    uint32_t ValueSum = 0;
    for (uint32_t C = 0; C < Node.NumChildren; ++C) {
      const MaryTree::Node &Child = Tree.node(Node.FirstChild + C);
      ASSERT_EQ(Child.LeafBegin, Cursor);
      Cursor = Child.LeafEnd;
      ValueSum += Child.Value;
      ASSERT_EQ(Child.Parent, Id);
    }
    ASSERT_EQ(Cursor, Node.LeafEnd);
    ASSERT_EQ(ValueSum, Node.Value);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomTrees, TreeInvariantTest,
    ::testing::Values(TreeCase{1, 2, 1}, TreeCase{2, 2, 17},
                      TreeCase{3, 3, 100}, TreeCase{4, 4, 64},
                      TreeCase{5, 4, 1000}, TreeCase{6, 8, 511},
                      TreeCase{7, 8, 4096}, TreeCase{8, 16, 77},
                      TreeCase{9, 5, 625}, TreeCase{10, 7, 342}),
    [](const auto &Info) {
      return "seed" + std::to_string(Info.param.Seed) + "_m" +
             std::to_string(Info.param.Arity) + "_n" +
             std::to_string(Info.param.Leaves);
    });

//===----------------------------------------------------------------------===//
// Promotion invariants: promotion only adds, never removes; promoted
// chunks lie inside subtrees containing at least one critical leaf.
//===----------------------------------------------------------------------===//

struct PromoteCase {
  uint64_t Seed;
  uint32_t Arity;
  uint32_t Chunks;
  double Threshold;
  double Density; // Probability a chunk is critical.
};

class PromotionInvariantTest
    : public ::testing::TestWithParam<PromoteCase> {};

TEST_P(PromotionInvariantTest, PromotionIsMonotoneAndAnchored) {
  const PromoteCase &Case = GetParam();
  Xoshiro256 Rng(Case.Seed);
  LocalSelection Sel;
  Sel.Critical.resize(Case.Chunks);
  Sel.Priority.resize(Case.Chunks, 0.0);
  for (uint32_t I = 0; I < Case.Chunks; ++I) {
    bool Crit = Rng.nextDouble() < Case.Density;
    Sel.Critical[I] = Crit ? 1 : 0;
    Sel.Priority[I] = Crit ? 1.0 + Rng.nextDouble() : 0.0;
    if (Crit)
      ++Sel.CriticalCount;
  }

  PromoterConfig Config;
  Config.Arity = Case.Arity;
  GlobalPromoter Promoter(Config);
  PromotionResult Result = Promoter.promote(Sel, Case.Threshold);

  ASSERT_EQ(Result.Promoted.size(), Case.Chunks);
  uint32_t PromotedCount = 0;
  for (uint32_t I = 0; I < Case.Chunks; ++I) {
    if (!Result.Promoted[I])
      continue;
    ++PromotedCount;
    // A critical chunk is never re-promoted.
    ASSERT_FALSE(Sel.Critical[I]) << "chunk " << I;
  }
  ASSERT_EQ(PromotedCount, Result.PromotedCount);
  if (Sel.CriticalCount == 0) {
    ASSERT_EQ(Result.PromotedCount, 0u);
  }

  // Lower thresholds promote at least as much.
  PromotionResult Looser = Promoter.promote(Sel, Case.Threshold / 2.0);
  ASSERT_GE(Looser.PromotedCount, Result.PromotedCount);
}

INSTANTIATE_TEST_SUITE_P(
    RandomPromotions, PromotionInvariantTest,
    ::testing::Values(PromoteCase{11, 2, 64, 0.5, 0.2},
                      PromoteCase{12, 4, 256, 0.25, 0.1},
                      PromoteCase{13, 8, 512, 0.125, 0.05},
                      PromoteCase{14, 8, 1000, 0.4, 0.5},
                      PromoteCase{15, 4, 128, 0.9, 0.8},
                      PromoteCase{16, 2, 31, 0.6, 0.0},
                      PromoteCase{17, 16, 2048, 0.2, 0.02}),
    [](const auto &Info) {
      return "case" + std::to_string(Info.param.Seed);
    });

//===----------------------------------------------------------------------===//
// Plan invariants over random classifications.
//===----------------------------------------------------------------------===//

class PlanInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlanInvariantTest, RangesCoverSelectionExactlyWithinBudget) {
  Xoshiro256 Rng(GetParam());
  auto Chunks = static_cast<uint32_t>(8 + Rng.nextBounded(120));
  ObjectClassification Class;
  Class.Object = 0;
  Class.ChunkBytes = 4096;
  Class.MappedBytes = Chunks * 4096;
  Class.Local.Critical.resize(Chunks);
  Class.Local.Priority.resize(Chunks, 0.0);
  Class.Promotion.Promoted.resize(Chunks, 0);
  for (uint32_t I = 0; I < Chunks; ++I) {
    Class.Local.Critical[I] = Rng.nextDouble() < 0.3 ? 1 : 0;
    Class.Promotion.Promoted[I] =
        (!Class.Local.Critical[I] && Rng.nextDouble() < 0.15) ? 1 : 0;
    Class.Local.Priority[I] = Class.Local.Critical[I] ? Rng.nextDouble() : 0;
  }

  PlacementPlan Plan = PlanBuilder::build({Class});
  // Every selected chunk is covered exactly once; nothing else is.
  std::vector<int> Covered(Chunks, 0);
  for (const ObjectPlan &Obj : Plan.Objects)
    for (const ChunkRange &Range : Obj.Ranges)
      for (uint32_t C = Range.FirstChunk;
           C < Range.FirstChunk + Range.NumChunks; ++C)
        ++Covered[C];
  for (uint32_t C = 0; C < Chunks; ++C)
    ASSERT_EQ(Covered[C], Class.isSelected(C) ? 1 : 0) << "chunk " << C;

  // Ranges are maximal: no two adjacent ranges.
  for (const ObjectPlan &Obj : Plan.Objects)
    for (size_t R = 0; R + 1 < Obj.Ranges.size(); ++R)
      ASSERT_LT(Obj.Ranges[R].FirstChunk + Obj.Ranges[R].NumChunks,
                Obj.Ranges[R + 1].FirstChunk);

  // Budgeted plans never exceed the budget and shrink monotonically.
  uint64_t Budget = Plan.TotalBytes / 2;
  PlacementPlan Trimmed = PlanBuilder::build({Class}, Budget);
  ASSERT_LE(Trimmed.TotalBytes, Budget);
}

INSTANTIATE_TEST_SUITE_P(RandomPlans, PlanInvariantTest,
                         ::testing::Range<uint64_t>(100, 116));

//===----------------------------------------------------------------------===//
// Migration integrity over random plans: bytes survive, page table and
// chunk metadata agree, tier occupancy balances.
//===----------------------------------------------------------------------===//

struct MigrationCase {
  uint64_t Seed;
  bool UseMbind;
};

class MigrationInvariantTest
    : public ::testing::TestWithParam<MigrationCase> {};

TEST_P(MigrationInvariantTest, RandomRangesPreserveEverything) {
  const MigrationCase &Case = GetParam();
  Xoshiro256 Rng(Case.Seed);
  Machine M(nvmDramTestbed(1.0 / 1024));
  DataObjectRegistry Registry(M);
  ThreadPool Pool(4);
  AtmemMigrator Atmem(Registry, Pool);
  MbindMigrator Mbind(Registry);
  Migrator &Mig = Case.UseMbind ? static_cast<Migrator &>(Mbind)
                                : static_cast<Migrator &>(Atmem);

  uint64_t Size = (1 + Rng.nextBounded(24)) << 20;
  uint64_t ChunkBytes = 4096ull << Rng.nextBounded(8);
  DataObject &Obj =
      Registry.create("obj", Size, InitialPlacement::Slow, ChunkBytes);
  for (uint64_t I = 0; I < Obj.mappedBytes(); ++I)
    Obj.data()[I] = static_cast<std::byte>((I ^ Case.Seed) & 0xFF);

  // Random disjoint ascending ranges.
  std::vector<ChunkRange> Ranges;
  uint32_t Cursor = 0;
  while (Cursor < Obj.numChunks()) {
    uint32_t Skip = static_cast<uint32_t>(Rng.nextBounded(4));
    if (Cursor + Skip >= Obj.numChunks())
      break;
    Cursor += Skip;
    auto Len = static_cast<uint32_t>(1 + Rng.nextBounded(4));
    Len = std::min(Len, Obj.numChunks() - Cursor);
    Ranges.push_back({Cursor, Len});
    Cursor += Len;
  }
  if (Ranges.empty())
    Ranges.push_back({0, 1});

  MigrationResult Result;
  ASSERT_EQ(Mig.migrate(Obj, Ranges, TierId::Fast, Result), MigrationStatus::Success);

  // Data intact.
  for (uint64_t I = 0; I < Obj.mappedBytes(); ++I)
    ASSERT_EQ(Obj.data()[I],
              static_cast<std::byte>((I ^ Case.Seed) & 0xFF))
        << "byte " << I;

  // Chunk metadata agrees with the page table for every chunk.
  for (uint32_t C = 0; C < Obj.numChunks(); ++C) {
    auto [Begin, End] = Obj.rangeBytes({C, 1});
    for (uint64_t Off = Begin; Off < End; Off += SmallPageBytes)
      ASSERT_EQ(M.pageTable().tierOf(Obj.va() + Off), Obj.chunkTier(C))
          << "chunk " << C;
  }

  // Occupancy balances: fast bytes on the machine equal the object's
  // fast bytes (no leaked staging frames).
  EXPECT_EQ(M.allocator(TierId::Fast).usedBytes(),
            Obj.bytesOn(TierId::Fast));
  EXPECT_EQ(M.allocator(TierId::Slow).usedBytes(),
            Obj.bytesOn(TierId::Slow));
}

INSTANTIATE_TEST_SUITE_P(
    RandomMigrations, MigrationInvariantTest,
    ::testing::Values(MigrationCase{21, false}, MigrationCase{22, false},
                      MigrationCase{23, false}, MigrationCase{24, false},
                      MigrationCase{25, true}, MigrationCase{26, true},
                      MigrationCase{27, true}, MigrationCase{28, true},
                      MigrationCase{29, false}, MigrationCase{30, true}),
    [](const auto &Info) {
      return std::string(Info.param.UseMbind ? "mbind" : "atmem") + "_seed" +
             std::to_string(Info.param.Seed);
    });

//===----------------------------------------------------------------------===//
// Page-table random-operation invariant: mapped bytes always equal the
// allocators' used bytes.
//===----------------------------------------------------------------------===//

class PageTableFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PageTableFuzzTest, OccupancyAlwaysBalances) {
  Xoshiro256 Rng(GetParam());
  FrameAllocator Fast(TierId::Fast, 64ull << 20);
  FrameAllocator Slow(TierId::Slow, 64ull << 20);
  PageTable PT(Fast, Slow);

  constexpr uint64_t Base = 0x100000000000ull;
  constexpr uint64_t RegionBytes = 8ull << 20;
  ASSERT_TRUE(PT.mapRegion(Base, RegionBytes, TierId::Slow, true));

  for (int Op = 0; Op < 200; ++Op) {
    uint64_t Choice = Rng.nextBounded(3);
    if (Choice == 0) {
      uint64_t Page = Rng.nextBounded(RegionBytes / SmallPageBytes);
      TierId Target = Rng.nextBounded(2) ? TierId::Fast : TierId::Slow;
      PT.movePage(Base + Page * SmallPageBytes, Target);
    } else if (Choice == 1) {
      uint64_t StartPage = Rng.nextBounded(RegionBytes / SmallPageBytes / 2);
      uint64_t Pages = 1 + Rng.nextBounded(256);
      uint64_t Va = Base + StartPage * SmallPageBytes;
      uint64_t Len = std::min(Pages * SmallPageBytes,
                              Base + RegionBytes - Va);
      PT.remapRange(Va, Len, TierId::Fast, Rng.nextBounded(2) != 0);
    } else {
      uint64_t StartPage = Rng.nextBounded(RegionBytes / SmallPageBytes / 2);
      uint64_t Va = Base + StartPage * SmallPageBytes;
      PT.remapRange(Va, SmallPageBytes, TierId::Slow, false);
    }
    ASSERT_EQ(PT.mappedBytesOn(TierId::Fast) + PT.mappedBytesOn(TierId::Slow),
              RegionBytes);
    ASSERT_EQ(PT.mappedBytesOn(TierId::Fast), Fast.usedBytes());
    ASSERT_EQ(PT.mappedBytesOn(TierId::Slow), Slow.usedBytes());
  }

  // Every page still translates.
  for (uint64_t Off = 0; Off < RegionBytes; Off += SmallPageBytes) {
    Translation T;
    ASSERT_TRUE(PT.translate(Base + Off, T));
  }
  PT.unmapRegion(Base, RegionBytes);
  EXPECT_EQ(Fast.usedBytes(), 0u);
  EXPECT_EQ(Slow.usedBytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, PageTableFuzzTest,
                         ::testing::Range<uint64_t>(1000, 1012));

} // namespace
