//===----------------------------------------------------------------------===//
// Learned-ranker validation: the RankerPolicy contract (mimic weights
// reproduce the Eq. 1-5 plans bit for bit on randomized workloads), the
// deterministic replay/A-B harness over the committed golden decision log
// (byte-identical reports, zero drift, trained model beating the
// heuristic's next-epoch hit fraction within the churn gate), the model
// parser's fuzz robustness, and graceful degradation under injected
// faults at the ranker.model_load / ranker.score sites.
//===----------------------------------------------------------------------===//

#include "analyzer/Analyzer.h"
#include "analyzer/ReplayHarness.h"
#include "core/Runtime.h"
#include "fault/FaultInjection.h"
#include "obs/RingLog.h"
#include "obs/Telemetry.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

using namespace atmem;
using namespace atmem::analyzer;

namespace {

std::string tempPath(const std::string &Name) {
  return ::testing::TempDir() + Name;
}

void writeFile(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out << Text;
  ASSERT_TRUE(Out.good()) << Path;
}

uint64_t counterValue(const char *Name) {
  obs::TelemetrySnapshot Snap = obs::Registry::instance().snapshot();
  const uint64_t *Value = Snap.counter(Name);
  return Value ? *Value : 0;
}

/// Builds a randomized multi-object workload: some objects carry a hot
/// contiguous block, some scattered spikes, some near-uniform noise, with
/// sample counts and miss estimates drawn from a seeded PRNG.
std::vector<ObjectProfileInput> randomInputs(uint64_t Seed) {
  Xoshiro256 Rng(Seed);
  std::vector<ObjectProfileInput> Inputs;
  size_t Objects = 1 + Rng.nextBounded(4);
  for (size_t O = 0; O < Objects; ++O) {
    ObjectProfileInput In;
    In.Object = static_cast<mem::ObjectId>(O + 1);
    In.Name = "obj" + std::to_string(O);
    In.ChunkBytes = 4096u << Rng.nextBounded(3);
    size_t Chunks = 8 + Rng.nextBounded(121);
    In.MappedBytes = In.ChunkBytes * Chunks;
    In.EstimatedMisses.assign(Chunks, 0.0);
    In.Samples.assign(Chunks, 0);
    uint32_t Pattern = static_cast<uint32_t>(Rng.nextBounded(3));
    for (size_t C = 0; C < Chunks; ++C) {
      bool Hot = false;
      switch (Pattern) {
      case 0: // Contiguous hot block over the first third.
        Hot = C < Chunks / 3 + 1;
        break;
      case 1: // Scattered spikes.
        Hot = Rng.nextBounded(8) == 0;
        break;
      default: // Sparse noise; many chunks stay perfectly cold.
        Hot = Rng.nextBounded(16) == 0;
        break;
      }
      uint64_t S = Hot ? 20 + Rng.nextBounded(400) : Rng.nextBounded(3);
      In.Samples[C] = S;
      In.EstimatedMisses[C] =
          static_cast<double>(S) * (900.0 + Rng.nextDouble() * 300.0);
    }
    Inputs.push_back(std::move(In));
  }
  return Inputs;
}

void expectIdenticalClasses(const std::vector<ObjectClassification> &A,
                            const std::vector<ObjectClassification> &B,
                            const std::string &Tag) {
  ASSERT_EQ(A.size(), B.size()) << Tag;
  for (size_t I = 0; I < A.size(); ++I) {
    ASSERT_EQ(A[I].numChunks(), B[I].numChunks()) << Tag;
    EXPECT_EQ(A[I].Local.CriticalCount, B[I].Local.CriticalCount) << Tag;
    EXPECT_EQ(A[I].Promotion.PromotedCount, B[I].Promotion.PromotedCount)
        << Tag;
    for (uint32_t C = 0; C < A[I].numChunks(); ++C) {
      ASSERT_EQ(A[I].isSelected(C), B[I].isSelected(C))
          << Tag << ": object " << I << " chunk " << C;
      ASSERT_EQ(A[I].Local.Critical[C], B[I].Local.Critical[C])
          << Tag << ": object " << I << " chunk " << C;
    }
  }
}

class RankerFaultTest : public ::testing::Test {
protected:
  void SetUp() override {
    fault::FaultRegistry::instance().disarmAll();
    obs::Registry::instance().resetValues();
    obs::setEnabled(true);
  }
  void TearDown() override {
    fault::FaultRegistry::instance().disarmAll();
    obs::setEnabled(false);
    obs::Registry::instance().resetValues();
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Model serialization and parsing.
//===----------------------------------------------------------------------===//

TEST(RankerModelTest, MimicRoundTripsThroughJson) {
  RankerModel Mimic = heuristicMimicModel();
  RankerModel Parsed;
  std::string Error;
  ASSERT_TRUE(parseRankerModel(Mimic.toJson(), Parsed, &Error)) << Error;
  EXPECT_EQ(Parsed.Weights, Mimic.Weights);
  EXPECT_EQ(Parsed.Threshold, Mimic.Threshold);
}

TEST(RankerModelTest, MimicScoresExactlyTheHeuristicVerdict) {
  RankerModel Mimic = heuristicMimicModel();
  RankerObjectContext Obj;
  Obj.ChunkBytes = 4096;
  Obj.Theta = 0.5;
  double Features[NumRankerFeatures];
  for (int Critical = 0; Critical <= 1; ++Critical)
    for (int Promoted = 0; Promoted <= 1; ++Promoted) {
      RankerChunkContext Chunk;
      Chunk.Samples = 17;
      Chunk.EstimatedMisses = 1234.5;
      Chunk.Priority = 0.3;
      Chunk.Critical = Critical != 0;
      Chunk.Promoted = Promoted != 0;
      Chunk.NodeTreeRatio = 0.7;
      rankerFeatures(Obj, Chunk, Features);
      EXPECT_EQ(Mimic.selects(Features), Critical || Promoted);
    }
}

TEST(RankerModelFuzzTest, MalformedCorpusErrorsCleanly) {
  const char *Bad[] = {
      "",
      "   ",
      "not json at all",
      "42",
      "[]",
      "{}",
      "{\"format\": \"wrong-format\", \"weights\": []}",
      "{\"weights\": [0,0,0,0,0,0,0,0,0,0]}",
      "{\"format\": \"atmem-ranker-v1\"}",
      "{\"format\": \"atmem-ranker-v1\", \"weights\": 7}",
      "{\"format\": \"atmem-ranker-v1\", \"weights\": [1, 2, 3]}",
      "{\"format\": \"atmem-ranker-v1\", "
      "\"weights\": [0,0,0,0,0,0,0,0,0,\"x\"]}",
      "{\"format\": \"atmem-ranker-v1\", "
      "\"weights\": [0,0,0,0,0,0,0,0,0,0], \"threshold\": \"high\"}",
      "{\"format\": \"atmem-ranker-v1\", "
      "\"features\": [\"bias\"], \"weights\": [0,0,0,0,0,0,0,0,0,0]}",
      "{\"format\": \"atmem-ranker-v1\", "
      "\"features\": [\"b\",\"l\",\"l\",\"p\",\"s\",\"w\",\"l\",\"s\","
      "\"p\",\"n\"], \"weights\": [0,0,0,0,0,0,0,0,0,0]}",
  };
  for (const char *Text : Bad) {
    RankerModel Out;
    Out.Threshold = 123.0; // Sentinel: must stay untouched on failure.
    std::string Error;
    EXPECT_FALSE(parseRankerModel(Text, Out, &Error)) << Text;
    EXPECT_FALSE(Error.empty()) << Text;
    EXPECT_EQ(Out.Threshold, 123.0) << Text;
  }
}

TEST(RankerModelFuzzTest, EveryTruncationErrorsCleanly) {
  std::string Valid = heuristicMimicModel().toJson();
  // Truncations past the closing brace only strip trailing whitespace and
  // still parse; every shorter prefix must fail cleanly.
  size_t Complete = Valid.find_last_of('}') + 1;
  for (size_t Len = 0; Len < Complete; ++Len) {
    RankerModel Out;
    std::string Error;
    EXPECT_FALSE(
        parseRankerModel(std::string_view(Valid.data(), Len), Out, &Error))
        << "prefix length " << Len;
  }
}

TEST(RankerModelFuzzTest, RandomMutationsNeverCrash) {
  std::string Valid = heuristicMimicModel().toJson();
  Xoshiro256 Rng(0xfeedbeef);
  for (int Round = 0; Round < 500; ++Round) {
    std::string Mutated = Valid;
    size_t Edits = 1 + Rng.nextBounded(8);
    for (size_t E = 0; E < Edits; ++E) {
      size_t Pos = Rng.nextBounded(Mutated.size());
      Mutated[Pos] = static_cast<char>(Rng.nextBounded(256));
    }
    RankerModel Out;
    std::string Error;
    // Either outcome is fine; what matters is a clean return.
    (void)parseRankerModel(Mutated, Out, &Error);
  }
}

TEST(RankerModelFuzzTest, RandomGarbageDocumentsNeverCrash) {
  Xoshiro256 Rng(0xabad1dea);
  for (int Round = 0; Round < 500; ++Round) {
    std::string Garbage;
    size_t Len = Rng.nextBounded(200);
    Garbage.reserve(Len);
    for (size_t I = 0; I < Len; ++I)
      Garbage.push_back(static_cast<char>(Rng.nextBounded(256)));
    RankerModel Out;
    EXPECT_FALSE(parseRankerModel(Garbage, Out, nullptr));
  }
}

//===----------------------------------------------------------------------===//
// Property: the mimic model reproduces Eq. 1-5 plans exactly.
//===----------------------------------------------------------------------===//

TEST(RankerPropertyTest, MimicModelMatchesHeuristicOnRandomWorkloads) {
  for (uint64_t Seed = 1; Seed <= 24; ++Seed) {
    std::vector<ObjectProfileInput> Inputs = randomInputs(Seed);

    Analyzer Heuristic;
    std::vector<ObjectClassification> Plain =
        Heuristic.classifyInputs(Inputs, 1024);

    AnalyzerConfig WithRanker;
    WithRanker.Ranker =
        std::make_shared<RankerModel>(heuristicMimicModel());
    Analyzer Ranked(WithRanker);
    std::vector<ObjectClassification> Mimicked =
        Ranked.classifyInputs(Inputs, 1024);

    expectIdenticalClasses(Plain, Mimicked,
                           "seed " + std::to_string(Seed));
    // The identical selections must build identical budgeted plans too.
    uint64_t Budget = 64 * 4096;
    PlacementPlan A = PlanBuilder::build(Plain, Budget);
    PlacementPlan B = PlanBuilder::build(Mimicked, Budget);
    EXPECT_EQ(A.TotalBytes, B.TotalBytes) << "seed " << Seed;
  }
}

//===----------------------------------------------------------------------===//
// Replay determinism and the golden A/B gates.
//===----------------------------------------------------------------------===//

namespace {

std::vector<ReplayEpoch> loadGoldenEpochs() {
  obs::DecisionArtifact Artifact;
  std::string Error;
  if (!obs::readDecisionLogAny(ATMEM_GOLDEN_PLANTED_PATH, Artifact, &Error))
    ADD_FAILURE() << ATMEM_GOLDEN_PLANTED_PATH << ": " << Error;
  std::vector<ReplayEpoch> Epochs;
  if (!replayEpochsFromArtifact(Artifact, Epochs, &Error))
    ADD_FAILURE() << Error;
  return Epochs;
}

std::shared_ptr<const RankerModel> loadGoldenModel() {
  RankerModel Model;
  std::string Error;
  if (!loadRankerModel(ATMEM_GOLDEN_RANKER_PATH, Model, &Error)) {
    ADD_FAILURE() << ATMEM_GOLDEN_RANKER_PATH << ": " << Error;
    return nullptr;
  }
  return std::make_shared<RankerModel>(Model);
}

/// The budget planted_recorder suggests: the stable block plus two chunks,
/// tight enough that selection order decides the next-epoch hit fraction.
constexpr uint64_t GoldenBudget = 66 * 4096;

} // namespace

TEST(RankerReplayTest, GoldenLogReplaysWithZeroDrift) {
  std::vector<ReplayEpoch> Epochs = loadGoldenEpochs();
  ASSERT_FALSE(Epochs.empty());
  ReplayReport Report = replayCompare(Epochs, AnalyzerConfig(), nullptr);
  EXPECT_EQ(Report.Drift.Mismatches, 0u) << Report.Drift.First;
  EXPECT_EQ(Report.Epochs, Epochs.size());
}

TEST(RankerReplayTest, ReplayingTwiceIsByteIdentical) {
  std::vector<ReplayEpoch> Epochs = loadGoldenEpochs();
  ASSERT_FALSE(Epochs.empty());
  std::shared_ptr<const RankerModel> Model = loadGoldenModel();
  ASSERT_TRUE(Model);

  ReplayReport First =
      replayCompare(Epochs, AnalyzerConfig(), Model, GoldenBudget);
  ReplayReport Second =
      replayCompare(Epochs, AnalyzerConfig(), Model, GoldenBudget);
  EXPECT_EQ(replayReportText(First), replayReportText(Second));
  EXPECT_EQ(replayReportJson(First), replayReportJson(Second));

  // Reconstructing the epochs again from disk must not change a byte
  // either (reader determinism, not just analyzer determinism).
  std::vector<ReplayEpoch> Reloaded = loadGoldenEpochs();
  ReplayReport Third =
      replayCompare(Reloaded, AnalyzerConfig(), Model, GoldenBudget);
  EXPECT_EQ(replayReportText(First), replayReportText(Third));
}

TEST(RankerReplayTest, TrainedGoldenModelBeatsHeuristicWithinChurnGate) {
  std::vector<ReplayEpoch> Epochs = loadGoldenEpochs();
  ASSERT_FALSE(Epochs.empty());
  std::shared_ptr<const RankerModel> Model = loadGoldenModel();
  ASSERT_TRUE(Model);

  ReplayReport Report =
      replayCompare(Epochs, AnalyzerConfig(), Model, GoldenBudget);
  EXPECT_EQ(Report.Drift.Mismatches, 0u) << Report.Drift.First;
  // The acceptance gates: quality at least the heuristic's, churn within
  // 10% of it (the committed model clears both with a wide margin).
  EXPECT_GE(Report.Ranker.HitFractionNext,
            Report.Heuristic.HitFractionNext);
  EXPECT_LE(static_cast<double>(Report.Ranker.ChurnChunks),
            1.1 * static_cast<double>(Report.Heuristic.ChurnChunks));
}

TEST(RankerReplayTest, TrainingIsDeterministic) {
  std::vector<ReplayEpoch> Epochs = loadGoldenEpochs();
  ASSERT_FALSE(Epochs.empty());
  RankerTrainingSet Set = rankerTrainingSet(Epochs);
  ASSERT_FALSE(Set.Features.empty());
  ASSERT_EQ(Set.Features.size(), Set.Labels.size());
  RankerModel A = trainRidgeRanker(Set, 0.01);
  RankerModel B = trainRidgeRanker(Set, 0.01);
  EXPECT_EQ(A.Weights, B.Weights);
  EXPECT_EQ(A.toJson(), B.toJson());
}

TEST(RankerReplayTest, EmptyTrainingSetFallsBackToMimic) {
  RankerModel Model = trainRidgeRanker(RankerTrainingSet(), 0.01);
  EXPECT_EQ(Model.Weights, heuristicMimicModel().Weights);
}

//===----------------------------------------------------------------------===//
// Fault injection: ranker.model_load and ranker.score degrade gracefully.
//===----------------------------------------------------------------------===//

TEST_F(RankerFaultTest, ModelLoadFaultEveryFallsBackAndCounts) {
  std::string Path = tempPath("ranker_fault_valid.json");
  writeFile(Path, heuristicMimicModel().toJson());

  fault::FaultPlan Plan;
  Plan.Mode = fault::Trigger::EveryKth;
  Plan.N = 1;
  fault::FaultRegistry::instance().arm("ranker.model_load", Plan);

  uint64_t Before = counterValue("ranker.model_load_failed");
  RankerModel Out;
  Out.Threshold = 99.0;
  std::string Error;
  EXPECT_FALSE(loadRankerModel(Path, Out, &Error));
  EXPECT_NE(Error.find("injected"), std::string::npos) << Error;
  EXPECT_EQ(Out.Threshold, 99.0); // Untouched on failure.
  EXPECT_EQ(counterValue("ranker.model_load_failed"), Before + 1);
  EXPECT_GE(fault::FaultRegistry::instance().fires("ranker.model_load"), 1u);
}

TEST_F(RankerFaultTest, ModelLoadFaultNthSparesEarlierLoads) {
  std::string Path = tempPath("ranker_fault_nth.json");
  writeFile(Path, heuristicMimicModel().toJson());

  fault::FaultPlan Plan;
  Plan.Mode = fault::Trigger::Nth;
  Plan.N = 2;
  fault::FaultRegistry::instance().arm("ranker.model_load", Plan);

  RankerModel Out;
  std::string Error;
  EXPECT_TRUE(loadRankerModel(Path, Out, &Error)) << Error;
  EXPECT_FALSE(loadRankerModel(Path, Out, &Error));
  EXPECT_NE(Error.find("injected"), std::string::npos) << Error;
  EXPECT_TRUE(loadRankerModel(Path, Out, &Error)) << Error;
}

TEST_F(RankerFaultTest, MalformedModelFileBumpsCounterWithoutFault) {
  std::string Path = tempPath("ranker_malformed.json");
  writeFile(Path, "{\"format\": \"atmem-ranker-v1\", \"weights\": [1]}");
  uint64_t Before = counterValue("ranker.model_load_failed");
  RankerModel Out;
  std::string Error;
  EXPECT_FALSE(loadRankerModel(Path, Out, &Error));
  EXPECT_EQ(counterValue("ranker.model_load_failed"), Before + 1);
  EXPECT_FALSE(loadRankerModel(tempPath("ranker_missing.json"), Out, &Error));
  EXPECT_EQ(counterValue("ranker.model_load_failed"), Before + 2);
}

TEST_F(RankerFaultTest, ScoreFaultEveryLeavesPlacementUnchanged) {
  std::vector<ObjectProfileInput> Inputs = randomInputs(7);
  Analyzer Heuristic;
  std::vector<ObjectClassification> Plain =
      Heuristic.classifyInputs(Inputs, 1024);

  // A deliberately aggressive model (select everything) would rewrite the
  // plan — unless the injected scoring fault degrades it to a no-op.
  RankerModel SelectAll;
  SelectAll.Weights[RankerBias] = 10.0;
  AnalyzerConfig Config;
  Config.Ranker = std::make_shared<RankerModel>(SelectAll);

  fault::FaultPlan Plan;
  Plan.Mode = fault::Trigger::EveryKth;
  Plan.N = 1;
  fault::FaultRegistry::instance().arm("ranker.score", Plan);

  uint64_t Before = counterValue("ranker.score_faulted");
  Analyzer Ranked(Config);
  std::vector<ObjectClassification> Faulted =
      Ranked.classifyInputs(Inputs, 1024);
  expectIdenticalClasses(Plain, Faulted, "score fault every:1");
  EXPECT_EQ(counterValue("ranker.score_faulted"), Before + 1);

  // Sanity: with the fault disarmed the same model really does rewrite
  // the plan (the degradation above was the fault, not a dead knob).
  fault::FaultRegistry::instance().disarmAll();
  std::vector<ObjectClassification> Applied =
      Ranked.classifyInputs(Inputs, 1024);
  uint64_t SelectedAll = 0, SelectedPlain = 0;
  for (size_t I = 0; I < Applied.size(); ++I)
    for (uint32_t C = 0; C < Applied[I].numChunks(); ++C) {
      SelectedAll += Applied[I].isSelected(C);
      SelectedPlain += Plain[I].isSelected(C);
    }
  EXPECT_GT(SelectedAll, SelectedPlain);
}

TEST_F(RankerFaultTest, ScoreFaultNthReportsTypedStatusWithNoMutation) {
  std::vector<ObjectProfileInput> Inputs = randomInputs(11);
  // Need at least two objects so an nth:2 site fires mid-epoch.
  while (Inputs.size() < 2) {
    std::vector<ObjectProfileInput> More = randomInputs(Inputs.size() + 20);
    Inputs.insert(Inputs.end(), More.begin(), More.end());
  }
  Analyzer Heuristic;
  std::vector<ObjectClassification> Plain =
      Heuristic.classifyInputs(Inputs, 1024);

  std::vector<LocalSelection> Selections;
  std::vector<PromotionResult> Promotions;
  std::vector<std::vector<uint64_t>> Samples;
  std::vector<std::vector<double>> Misses;
  std::vector<uint64_t> ChunkBytes;
  for (size_t I = 0; I < Plain.size(); ++I) {
    Selections.push_back(Plain[I].Local);
    Promotions.push_back(Plain[I].Promotion);
    Samples.push_back(Inputs[I].Samples);
    Misses.push_back(Inputs[I].EstimatedMisses);
    ChunkBytes.push_back(Inputs[I].ChunkBytes);
  }
  std::vector<LocalSelection> SelectionsBefore = Selections;
  std::vector<PromotionResult> PromotionsBefore = Promotions;

  fault::FaultPlan Plan;
  Plan.Mode = fault::Trigger::Nth;
  Plan.N = 2; // Fires on the second object's scoring pass.
  fault::FaultRegistry::instance().arm("ranker.score", Plan);

  RankerModel SelectAll;
  SelectAll.Weights[RankerBias] = 10.0;
  RankerPolicy Policy(SelectAll);
  RankerApplyResult Result =
      Policy.apply(Selections, Promotions, Samples, Misses, ChunkBytes,
                   nullptr);
  EXPECT_EQ(Result.Status, RankerStatus::ScoreFaulted);
  EXPECT_STREQ(rankerStatusName(Result.Status), "score_faulted");
  EXPECT_EQ(Result.FlippedChunks, 0u);
  // Even though the first object scored cleanly, nothing was committed.
  for (size_t I = 0; I < Selections.size(); ++I) {
    EXPECT_EQ(Selections[I].Critical, SelectionsBefore[I].Critical) << I;
    EXPECT_EQ(Selections[I].CriticalCount,
              SelectionsBefore[I].CriticalCount)
        << I;
    EXPECT_EQ(Promotions[I].Promoted, PromotionsBefore[I].Promoted) << I;
    EXPECT_EQ(Promotions[I].PromotedCount,
              PromotionsBefore[I].PromotedCount)
        << I;
  }
}

TEST_F(RankerFaultTest, RuntimeSurvivesModelLoadFault) {
  std::string Path = tempPath("ranker_runtime_fault.json");
  writeFile(Path, heuristicMimicModel().toJson());

  fault::FaultPlan Plan;
  Plan.Mode = fault::Trigger::EveryKth;
  Plan.N = 1;
  fault::FaultRegistry::instance().arm("ranker.model_load", Plan);

  core::RuntimeConfig Config;
  Config.Machine = sim::nvmDramTestbed(1.0 / 1024);
  Config.Analyzer.RankerModelPath = Path;
  core::Runtime Rt(Config); // Must construct despite the injected fault.
  EXPECT_GE(counterValue("ranker.model_load_failed"), 1u);

  auto Arr = Rt.allocate<uint64_t>("survivor", 1 << 14);
  Rt.profilingStart();
  Rt.beginIteration();
  for (size_t I = 0; I < (1u << 14); ++I)
    Arr[I % 1024] += 1;
  Rt.endIteration();
  Rt.profilingStop();
  mem::MigrationResult Migration = Rt.optimize(); // Heuristic path.
  EXPECT_GE(Migration.BytesMoved, 0u);
}

//===----------------------------------------------------------------------===//
// End to end: the Runtime loads a model file and the mimic stays
// placement-identical to the plain heuristic runtime.
//===----------------------------------------------------------------------===//

namespace {

double runPlantedWorkload(const std::string &ModelPath,
                          uint64_t &MigratedBytes) {
  core::RuntimeConfig Config;
  Config.Machine = sim::nvmDramTestbed(1.0 / 1024);
  Config.Analyzer.RankerModelPath = ModelPath;
  core::Runtime Rt(Config);

  constexpr size_t Elements = 1 << 15;
  auto Arr = Rt.allocate<uint64_t>("endtoend", Elements);
  Xoshiro256 Rng(99);
  Rt.profilingStart();
  Rt.beginIteration();
  for (int I = 0; I < 120000; ++I) {
    size_t Index = Rng.nextDouble() < 0.9
                       ? Rng.nextBounded(Elements / 8)
                       : Rng.nextBounded(Elements);
    Arr[Index] += 1;
  }
  Rt.endIteration();
  Rt.profilingStop();
  mem::MigrationResult Migration = Rt.optimize();
  MigratedBytes = Migration.BytesMoved;
  return Rt.fastDataRatio();
}

} // namespace

TEST(RankerRuntimeTest, MimicModelFileKeepsPlacementIdentical) {
  std::string Path = tempPath("ranker_mimic_e2e.json");
  writeFile(Path, heuristicMimicModel().toJson());

  uint64_t PlainBytes = 0, MimicBytes = 0;
  double PlainRatio = runPlantedWorkload("", PlainBytes);
  double MimicRatio = runPlantedWorkload(Path, MimicBytes);
  EXPECT_EQ(PlainBytes, MimicBytes);
  EXPECT_EQ(PlainRatio, MimicRatio);
}
