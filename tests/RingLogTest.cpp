//===----------------------------------------------------------------------===//
// Tests for the crash-resilient decision ring (obs/RingLog.h): clean
// round-trips through the mmap segment writer, rotation with NameDef
// replay under the byte cap, the torn-write corpus the recovery reader
// must survive (CRC flips, missing segments, bad headers), injected
// device failure at the obs.ring_write site, ring-head publication, the
// salvage-to-flat-file export, and the headline guarantee: a SIGKILLed
// atmem_run loses at most the epoch that was in flight.
//===----------------------------------------------------------------------===//

#include "fault/FaultInjection.h"
#include "obs/DecisionLog.h"
#include "obs/RingLog.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace atmem;
using namespace atmem::obs;

namespace {

/// Every test starts and ends with the process-wide log closed and all
/// fault sites disarmed; a leaked ring sink would record into later
/// tests of this binary.
class RingLogTest : public ::testing::Test {
protected:
  void SetUp() override {
    DecisionLog::instance().close();
    fault::FaultRegistry::instance().disarmAll();
  }
  void TearDown() override {
    DecisionLog::instance().close();
    fault::FaultRegistry::instance().disarmAll();
  }

  static std::string tempPath(const char *Name) {
    return ::testing::TempDir() + Name;
  }
};

/// Emits one epoch's worth of records (EpochBegin + ObjectEpoch + chunk +
/// migration) through the process-wide log.
void emitEpoch(const char *ObjectName) {
  DecisionLog &Log = DecisionLog::instance();
  Log.beginEpoch();
  uint32_t Name = Log.nameId(ObjectName);

  ObjectEpochRecord Obj;
  Obj.Object = 1;
  Obj.NameId = Name;
  Obj.NumChunks = 8;
  Obj.ChunkBytes = 4096;
  Obj.Theta = 0.5;
  Obj.TrThreshold = 0.375;
  Log.recordObject(Obj);

  ChunkDecisionRecord Chunk;
  Chunk.Object = 1;
  Chunk.Chunk = 3;
  Chunk.Samples = 5;
  Chunk.Priority = 0.25;
  Chunk.Flags = DecisionChunkSampledCritical;
  Log.recordChunk(Chunk);

  MigrationEventRecord Event;
  Event.Object = 1;
  Event.FirstChunk = 3;
  Event.NumChunks = 1;
  Event.TargetFast = 1;
  Event.Phase = DecisionPhase::Committed;
  Log.recordMigration(Event);
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

void writeFile(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
}

uint32_t loadU32At(const std::string &Bytes, size_t Pos) {
  uint32_t V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(static_cast<uint8_t>(Bytes[Pos + I]))
         << (8 * I);
  return V;
}

/// Byte offsets of every frame in a segment file (atdr-v1 framing:
/// 16-byte segment header, then u32 len | u32 crc | u64 seq | payload;
/// zero length ends the used region).
std::vector<size_t> frameOffsets(const std::string &Bytes) {
  std::vector<size_t> Offsets;
  size_t Pos = 16;
  while (Pos + 16 <= Bytes.size()) {
    uint32_t Len = loadU32At(Bytes, Pos);
    if (Len == 0 || Pos + 16 + Len > Bytes.size())
      break;
    Offsets.push_back(Pos);
    Pos += 16 + Len;
  }
  return Offsets;
}

//===----------------------------------------------------------------------===//
// Clean round-trip and head publication
//===----------------------------------------------------------------------===//

TEST_F(RingLogTest, CleanCloseRoundTripSalvagesEveryEpoch) {
  std::string Base = tempPath("ring_roundtrip.atdr");
  std::string Error;
  ASSERT_TRUE(openDecisionLogRing(Base, RingLogOptions(), &Error)) << Error;
  EXPECT_TRUE(DecisionLog::enabled());
  EXPECT_EQ(DecisionLog::instance().path(), Base);

  emitEpoch("rank");
  emitEpoch("rank");
  emitEpoch("rank");
  ASSERT_TRUE(DecisionLog::instance().close(&Error)) << Error;

  ASSERT_TRUE(isRingLog(Base));
  DecisionArtifact Artifact;
  RingRecoveryStats Stats;
  ASSERT_TRUE(readRingLog(Base, Artifact, &Error, &Stats)) << Error;
  EXPECT_TRUE(Stats.CleanClose);
  EXPECT_EQ(Stats.SalvagedEpochs, 3u);
  EXPECT_EQ(Stats.TornFrames, 0u);
  EXPECT_EQ(Stats.DroppedHead, 0u);
  EXPECT_EQ(Stats.DroppedTail, 0u);
  EXPECT_EQ(Stats.Segments, 1u);

  DecisionLogStats LogStats;
  ASSERT_TRUE(validateDecisionLog(Artifact, &Error, &LogStats)) << Error;
  EXPECT_EQ(LogStats.Epochs, 3u);
  EXPECT_EQ(LogStats.Objects, 3u);
  EXPECT_EQ(LogStats.Chunks, 3u);
  EXPECT_EQ(LogStats.CommittedRanges, 3u);
  EXPECT_TRUE(Artifact.HasTrailer);
  EXPECT_EQ(Artifact.TrailerCount, Artifact.Records.size());

  // Name interning survived the salvage.
  bool FoundObject = false;
  for (const DecisionRecord &Rec : Artifact.Records)
    if (Rec.Kind == DecisionKind::ObjectEpoch) {
      EXPECT_EQ(Artifact.name(Rec.Object.NameId), "rank");
      FoundObject = true;
    }
  EXPECT_TRUE(FoundObject);
}

TEST_F(RingLogTest, DispatchAcceptsBaseAndSegmentPaths) {
  std::string Base = tempPath("ring_dispatch.atdr");
  std::string Error;
  ASSERT_TRUE(openDecisionLogRing(Base, RingLogOptions(), &Error)) << Error;
  emitEpoch("v");
  emitEpoch("v");
  ASSERT_TRUE(DecisionLog::instance().close(&Error)) << Error;

  std::vector<std::string> Segments = ringSegmentFiles(Base);
  ASSERT_EQ(Segments.size(), 1u);
  EXPECT_EQ(Segments[0], Base + ".000000");

  for (const std::string &Path : {Base, Segments[0]}) {
    DecisionArtifact Artifact;
    bool WasRing = false;
    ASSERT_TRUE(readDecisionLogAny(Path, Artifact, &Error, nullptr,
                                   &WasRing))
        << Path << ": " << Error;
    EXPECT_TRUE(WasRing) << Path;
    EXPECT_TRUE(validateDecisionLog(Artifact, &Error)) << Error;
  }
}

TEST_F(RingLogTest, RingHeadPublishedWhileOpenZeroAfterClose) {
  std::string Base = tempPath("ring_head.atdr");
  std::string Error;
  ASSERT_TRUE(openDecisionLogRing(Base, RingLogOptions(), &Error)) << Error;

  RingHead AtOpen = ringHead();
  EXPECT_EQ(AtOpen.Segment, 0u);
  EXPECT_EQ(AtOpen.Offset, 16u); // Just past the segment header.
  EXPECT_EQ(AtOpen.NextSeq, 0u);

  emitEpoch("v");
  RingHead AfterEpoch = ringHead();
  EXPECT_GT(AfterEpoch.Offset, AtOpen.Offset);
  EXPECT_GE(AfterEpoch.NextSeq, 5u); // EpochBegin + NameDef + 3 records.

  ASSERT_TRUE(DecisionLog::instance().close(&Error)) << Error;
  RingHead AfterClose = ringHead();
  EXPECT_EQ(AfterClose.Segment, 0u);
  EXPECT_EQ(AfterClose.Offset, 0u);
  EXPECT_EQ(AfterClose.NextSeq, 0u);
}

//===----------------------------------------------------------------------===//
// Rotation
//===----------------------------------------------------------------------===//

TEST_F(RingLogTest, RotationReplaysNamesAndUnlinksBeyondByteCap) {
  std::string Base = tempPath("ring_rotate.atdr");
  RingLogOptions Options;
  Options.SegmentBytes = 4096; // The clamp minimum: rotate often.
  Options.MaxBytes = 8192;     // Two live segments.
  std::string Error;
  ASSERT_TRUE(openDecisionLogRing(Base, Options, &Error)) << Error;

  const char *Name = "object-with-a-name-long-enough-to-matter";
  for (int I = 0; I < 200; ++I)
    emitEpoch(Name);
  ASSERT_TRUE(DecisionLog::instance().close(&Error)) << Error;

  // The cap held and rotation unlinked the oldest segments.
  std::vector<std::string> Segments = ringSegmentFiles(Base);
  ASSERT_GE(Segments.size(), 1u);
  ASSERT_LE(Segments.size(), 2u);
  EXPECT_EQ(readFile(Segments.back()).size(), 4096u);
  EXPECT_NE(Segments[0], Base + ".000000"); // Segment 0 aged out.

  // The surviving window is self-contained: salvage validates and every
  // object record's interned name resolves (the rotation replay).
  DecisionArtifact Artifact;
  RingRecoveryStats Stats;
  ASSERT_TRUE(readRingLog(Base, Artifact, &Error, &Stats)) << Error;
  EXPECT_TRUE(Stats.CleanClose);
  EXPECT_EQ(Stats.Segments, Segments.size());
  EXPECT_GT(Stats.SalvagedEpochs, 0u);
  EXPECT_LT(Stats.SalvagedEpochs, 200u); // Older epochs aged out.
  ASSERT_TRUE(validateDecisionLog(Artifact, &Error)) << Error;
  size_t Objects = 0;
  for (const DecisionRecord &Rec : Artifact.Records)
    if (Rec.Kind == DecisionKind::ObjectEpoch) {
      EXPECT_EQ(Artifact.name(Rec.Object.NameId), Name);
      ++Objects;
    }
  EXPECT_EQ(Objects, Stats.SalvagedEpochs);
}

//===----------------------------------------------------------------------===//
// Torn-write corpus
//===----------------------------------------------------------------------===//

TEST_F(RingLogTest, TornFrameDropsUnterminatedTailEpoch) {
  std::string Base = tempPath("ring_torn.atdr");
  std::string Error;
  ASSERT_TRUE(openDecisionLogRing(Base, RingLogOptions(), &Error)) << Error;
  emitEpoch("v");
  emitEpoch("v");
  emitEpoch("v");
  ASSERT_TRUE(DecisionLog::instance().close(&Error)) << Error;

  // Flip one payload byte of the last frame (the trailer): the CRC check
  // must tear it, turning the clean close into a crash-shaped log whose
  // final epoch is unterminated.
  std::string Segment = Base + ".000000";
  std::string Bytes = readFile(Segment);
  std::vector<size_t> Frames = frameOffsets(Bytes);
  ASSERT_GE(Frames.size(), 4u);
  Bytes[Frames.back() + 16] ^= 0x5a;
  writeFile(Segment, Bytes);

  DecisionArtifact Artifact;
  RingRecoveryStats Stats;
  ASSERT_TRUE(readRingLog(Base, Artifact, &Error, &Stats)) << Error;
  EXPECT_FALSE(Stats.CleanClose);
  EXPECT_EQ(Stats.TornFrames, 1u);
  EXPECT_EQ(Stats.SalvagedEpochs, 2u); // Epoch 3 was in flight: dropped.
  EXPECT_GT(Stats.DroppedTail, 0u);
  ASSERT_TRUE(validateDecisionLog(Artifact, &Error)) << Error;
}

TEST_F(RingLogTest, TornFirstFrameSalvagesNothingButStaysReadable) {
  std::string Base = tempPath("ring_torn_first.atdr");
  std::string Error;
  ASSERT_TRUE(openDecisionLogRing(Base, RingLogOptions(), &Error)) << Error;
  emitEpoch("v");
  ASSERT_TRUE(DecisionLog::instance().close(&Error)) << Error;

  std::string Segment = Base + ".000000";
  std::string Bytes = readFile(Segment);
  std::vector<size_t> Frames = frameOffsets(Bytes);
  ASSERT_FALSE(Frames.empty());
  Bytes[Frames.front() + 16] ^= 0xff;
  writeFile(Segment, Bytes);

  DecisionArtifact Artifact;
  RingRecoveryStats Stats;
  ASSERT_TRUE(readRingLog(Base, Artifact, &Error, &Stats)) << Error;
  EXPECT_EQ(Stats.TornFrames, 1u);
  EXPECT_EQ(Stats.FramesRead, 0u);
  EXPECT_EQ(Stats.SalvagedEpochs, 0u);
  EXPECT_TRUE(Artifact.Records.empty());
  // Even total loss normalizes into a valid (empty) artifact.
  EXPECT_TRUE(validateDecisionLog(Artifact, &Error)) << Error;
}

TEST_F(RingLogTest, BadFirstSegmentHeaderIsAHardError) {
  std::string Base = tempPath("ring_badmagic.atdr");
  std::string Error;
  ASSERT_TRUE(openDecisionLogRing(Base, RingLogOptions(), &Error)) << Error;
  emitEpoch("v");
  ASSERT_TRUE(DecisionLog::instance().close(&Error)) << Error;

  std::string Segment = Base + ".000000";
  std::string Bytes = readFile(Segment);
  Bytes[0] = 'X';
  writeFile(Segment, Bytes);

  DecisionArtifact Artifact;
  EXPECT_FALSE(readRingLog(Base, Artifact, &Error));
  EXPECT_NE(Error.find("bad ring segment header"), std::string::npos)
      << Error;
}

TEST_F(RingLogTest, MissingMiddleSegmentStopsAtTheIndexGap) {
  std::string Base = tempPath("ring_gap.atdr");
  RingLogOptions Options;
  Options.SegmentBytes = 4096;
  Options.MaxBytes = 1 << 20; // Cap far away: keep every segment live.
  std::string Error;
  ASSERT_TRUE(openDecisionLogRing(Base, Options, &Error)) << Error;
  for (int I = 0; I < 60; ++I)
    emitEpoch("v");
  ASSERT_TRUE(DecisionLog::instance().close(&Error)) << Error;

  std::vector<std::string> Segments = ringSegmentFiles(Base);
  ASSERT_GE(Segments.size(), 3u);
  ASSERT_EQ(::unlink(Segments[1].c_str()), 0);

  // The scan must stop at the hole instead of splicing unrelated windows:
  // only segment 0's complete epochs survive, and the result validates.
  DecisionArtifact Artifact;
  RingRecoveryStats Stats;
  ASSERT_TRUE(readRingLog(Base, Artifact, &Error, &Stats)) << Error;
  EXPECT_EQ(Stats.Segments, 1u);
  EXPECT_FALSE(Stats.CleanClose);
  EXPECT_GT(Stats.SalvagedEpochs, 0u);
  EXPECT_LT(Stats.SalvagedEpochs, 60u);
  ASSERT_TRUE(validateDecisionLog(Artifact, &Error)) << Error;
}

//===----------------------------------------------------------------------===//
// Injected device failure at obs.ring_write
//===----------------------------------------------------------------------===//

TEST_F(RingLogTest, WriteFaultDropsRecordsWithoutMovingTheHead) {
  std::string Base = tempPath("ring_fault.atdr");
  std::string Error;
  ASSERT_TRUE(openDecisionLogRing(Base, RingLogOptions(), &Error)) << Error;
  RingHead Before = ringHead();

  ASSERT_TRUE(fault::armFromSpec("obs.ring_write=every:1", &Error)) << Error;
  emitEpoch("v");
  EXPECT_GT(fault::FaultRegistry::instance().fires("obs.ring_write"), 0u);

  // Every write was dropped: the head never advanced.
  RingHead After = ringHead();
  EXPECT_EQ(After.Segment, Before.Segment);
  EXPECT_EQ(After.Offset, Before.Offset);
  EXPECT_EQ(After.NextSeq, Before.NextSeq);

  // The latched failure surfaces at close, exactly like the file sink.
  EXPECT_FALSE(DecisionLog::instance().close(&Error));
  EXPECT_NE(Error.find("write failure"), std::string::npos) << Error;

  // The untouched segment structure still reads as an empty, valid ring.
  fault::FaultRegistry::instance().disarmAll();
  DecisionArtifact Artifact;
  RingRecoveryStats Stats;
  ASSERT_TRUE(readRingLog(Base, Artifact, &Error, &Stats)) << Error;
  EXPECT_EQ(Stats.FramesRead, 0u);
  EXPECT_EQ(Stats.SalvagedEpochs, 0u);
  EXPECT_TRUE(validateDecisionLog(Artifact, &Error)) << Error;
}

//===----------------------------------------------------------------------===//
// Salvage export
//===----------------------------------------------------------------------===//

TEST_F(RingLogTest, SalvageExportsToAFlatTrailerCompleteFile) {
  std::string Base = tempPath("ring_export.atdr");
  std::string Error;
  ASSERT_TRUE(openDecisionLogRing(Base, RingLogOptions(), &Error)) << Error;
  emitEpoch("v");
  emitEpoch("v");
  ASSERT_TRUE(DecisionLog::instance().close(&Error)) << Error;

  DecisionArtifact Salvaged;
  ASSERT_TRUE(readRingLog(Base, Salvaged, &Error)) << Error;

  std::string Flat = tempPath("ring_export.atdl");
  ASSERT_TRUE(writeDecisionLogFile(Salvaged, Flat, &Error)) << Error;

  DecisionArtifact Reread;
  ASSERT_TRUE(readDecisionLog(Flat, Reread, &Error)) << Error;
  ASSERT_TRUE(validateDecisionLog(Reread, &Error)) << Error;
  EXPECT_TRUE(Reread.HasTrailer);
  EXPECT_EQ(Reread.Records.size(), Salvaged.Records.size());
  EXPECT_FALSE(isRingLog(Flat));
}

//===----------------------------------------------------------------------===//
// The headline guarantee: SIGKILL loses at most the in-flight epoch
//===----------------------------------------------------------------------===//

TEST_F(RingLogTest, SigkilledRunSalvagesEveryCompleteEpoch) {
  std::string Base = tempPath("ring_crash.atdr");

  pid_t Child = ::fork();
  ASSERT_GE(Child, 0);
  if (Child == 0) {
    // A long multi-epoch run: --reoptimize emits one decision-log epoch
    // per measured iteration, and the iteration count is far more than
    // the parent will ever let finish.
    int Null = ::open("/dev/null", O_WRONLY);
    if (Null >= 0) {
      ::dup2(Null, 1);
      ::dup2(Null, 2);
    }
    ::execl(ATMEM_RUN_PATH, ATMEM_RUN_PATH, "--kernel", "pr", "--dataset",
            "rmat24", "--scale", "16384", "--iterations", "1000000",
            "--reoptimize", "--decision-log-ring", Base.c_str(),
            static_cast<char *>(nullptr));
    ::_exit(127);
  }

  // Wait until at least three complete epochs are salvageable, then pull
  // the plug mid-run — with one epoch per iteration the kill lands mid-
  // epoch with overwhelming probability.
  std::string Error;
  uint64_t SeenEpochs = 0;
  for (int Tries = 0; Tries < 600; ++Tries) {
    DecisionArtifact Peek;
    RingRecoveryStats PeekStats;
    if (readRingLog(Base, Peek, &Error, &PeekStats) &&
        PeekStats.SalvagedEpochs >= 3) {
      SeenEpochs = PeekStats.SalvagedEpochs;
      break;
    }
    int Status = 0;
    ASSERT_EQ(::waitpid(Child, &Status, WNOHANG), 0)
        << "atmem_run exited early with status " << Status;
    ::usleep(50 * 1000);
  }
  ASSERT_GE(SeenEpochs, 3u) << "no epochs appeared within 30s";

  ASSERT_EQ(::kill(Child, SIGKILL), 0);
  int Status = 0;
  ASSERT_EQ(::waitpid(Child, &Status, 0), Child);
  ASSERT_TRUE(WIFSIGNALED(Status));
  ASSERT_EQ(WTERMSIG(Status), SIGKILL);

  // Everything complete at observation time survived the kill, nothing
  // torn leaked through, and the salvage passes full validation.
  DecisionArtifact Artifact;
  RingRecoveryStats Stats;
  ASSERT_TRUE(readRingLog(Base, Artifact, &Error, &Stats)) << Error;
  EXPECT_FALSE(Stats.CleanClose);
  EXPECT_GE(Stats.SalvagedEpochs, SeenEpochs);
  ASSERT_TRUE(validateDecisionLog(Artifact, &Error)) << Error;

  // The shipped checker agrees: exit 0 on the crash-recovered ring.
  std::string Command = std::string(ATMEM_OBS_CHECK_PATH) +
                        " --decision-log " + Base + " > /dev/null 2>&1";
  int CheckStatus = std::system(Command.c_str());
  ASSERT_TRUE(WIFEXITED(CheckStatus));
  EXPECT_EQ(WEXITSTATUS(CheckStatus), 0);
}

} // namespace
