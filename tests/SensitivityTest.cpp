//===----------------------------------------------------------------------===//
// Sensitivity tests: the analyzer's knobs must move selection in the
// documented direction, monotonically, across a realistic profiled
// workload. These are the regression guards behind the Section 7.2
// sweeps.
//===----------------------------------------------------------------------===//

#include "analyzer/Analyzer.h"
#include "apps/Kernels.h"
#include "core/Runtime.h"
#include "graph/Generators.h"

#include <gtest/gtest.h>

using namespace atmem;

namespace {

/// Shared profiled runtime over a skewed graph; each test classifies the
/// same profile under different analyzer settings.
class SensitivityTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    graph::PowerLawParams Params;
    Params.NumVertices = 1 << 14;
    Params.AverageDegree = 16;
    Params.Gamma = 2.0;
    Params.Seed = 77;
    Graph = new graph::CsrGraph(graph::generatePowerLaw(Params));

    core::RuntimeConfig Config;
    Config.Machine = sim::nvmDramTestbed(1.0 / 1024);
    Rt = new core::Runtime(Config);
    Kernel = new apps::PageRankKernel();
    Kernel->setup(*Rt, *Graph);
    Rt->profilingStart();
    Rt->beginIteration();
    Kernel->runIteration();
    Rt->endIteration();
    Rt->profilingStop();
  }

  static void TearDownTestSuite() {
    delete Kernel;
    delete Rt;
    delete Graph;
    Kernel = nullptr;
    Rt = nullptr;
    Graph = nullptr;
  }

  /// Selected bytes under \p Config (no budget cap).
  static uint64_t selectedBytes(const analyzer::AnalyzerConfig &Config) {
    analyzer::Analyzer Anal(Config);
    return Anal.plan(Rt->registry(), Rt->profiler(), 1ull << 40).TotalBytes;
  }

  static graph::CsrGraph *Graph;
  static core::Runtime *Rt;
  static apps::PageRankKernel *Kernel;
};

graph::CsrGraph *SensitivityTest::Graph = nullptr;
core::Runtime *SensitivityTest::Rt = nullptr;
apps::PageRankKernel *SensitivityTest::Kernel = nullptr;

TEST_F(SensitivityTest, SelectivityBiasIsMonotone) {
  uint64_t Previous = ~0ull;
  for (double Bias : {-0.5, -0.25, 0.0, 0.25, 0.5}) {
    analyzer::AnalyzerConfig Config;
    Config.SelectivityBias = Bias;
    uint64_t Bytes = selectedBytes(Config);
    EXPECT_LE(Bytes, Previous) << "bias " << Bias;
    Previous = Bytes;
  }
}

TEST_F(SensitivityTest, NegativeBiasReachesNearTotal) {
  analyzer::AnalyzerConfig Config;
  Config.SelectivityBias = -0.9;
  uint64_t Total = Rt->registry().totalMappedBytes();
  EXPECT_GT(selectedBytes(Config), Total / 2);
}

TEST_F(SensitivityTest, PositiveBiasStronglySelective) {
  analyzer::AnalyzerConfig Default;
  analyzer::AnalyzerConfig Tight;
  Tight.SelectivityBias = 0.6;
  EXPECT_LT(selectedBytes(Tight), selectedBytes(Default) / 2);
}

TEST_F(SensitivityTest, HigherPercentileSelectsLess) {
  analyzer::AnalyzerConfig Lo, Hi;
  Lo.Local.PercentileN = 70.0;
  Hi.Local.PercentileN = 97.0;
  // Isolate the local stage: disable the global/promotion compensators.
  Lo.UseGlobalRanking = Hi.UseGlobalRanking = false;
  Lo.EnablePromotion = Hi.EnablePromotion = false;
  EXPECT_LT(selectedBytes(Hi), selectedBytes(Lo));
}

TEST_F(SensitivityTest, LargerThetaTrPromotesLess) {
  analyzer::AnalyzerConfig Lo, Hi;
  Lo.Promoter.ThetaTR = 0.1;
  Hi.Promoter.ThetaTR = 0.9;
  EXPECT_LE(selectedBytes(Hi), selectedBytes(Lo));
}

TEST_F(SensitivityTest, PromotionNeverShrinksSelection) {
  analyzer::AnalyzerConfig Off;
  Off.EnablePromotion = false;
  analyzer::AnalyzerConfig On;
  EXPECT_GE(selectedBytes(On), selectedBytes(Off));
}

TEST_F(SensitivityTest, GlobalRankingNeverShrinksSelection) {
  analyzer::AnalyzerConfig Off;
  Off.UseGlobalRanking = false;
  analyzer::AnalyzerConfig On;
  EXPECT_GE(selectedBytes(On), selectedBytes(Off));
}

TEST_F(SensitivityTest, BudgetIsMonotoneInRuntimePlans) {
  analyzer::Analyzer Anal;
  uint64_t Previous = 0;
  for (uint64_t Budget : {64ull << 10, 256ull << 10, 1ull << 20,
                          16ull << 20, 1ull << 30}) {
    uint64_t Bytes =
        Anal.plan(Rt->registry(), Rt->profiler(), Budget).TotalBytes;
    EXPECT_LE(Bytes, Budget);
    EXPECT_GE(Bytes, Previous);
    Previous = Bytes;
  }
}

TEST_F(SensitivityTest, NoiseFloorSuppressesMoreWithHigherMinSamples) {
  analyzer::AnalyzerConfig Lo, Hi;
  Lo.Local.MinSamples = 1.0;
  Hi.Local.MinSamples = 16.0;
  Lo.UseGlobalRanking = Hi.UseGlobalRanking = false;
  Lo.EnablePromotion = Hi.EnablePromotion = false;
  EXPECT_LE(selectedBytes(Hi), selectedBytes(Lo));
}

TEST_F(SensitivityTest, SamplesPerChunkControlsProfileDensity) {
  // Re-profile with different budgets on fresh runtimes.
  auto SamplesWith = [&](double SamplesPerChunk) {
    core::RuntimeConfig Config;
    Config.Machine = sim::nvmDramTestbed(1.0 / 1024);
    Config.Profiler.SamplesPerChunk = SamplesPerChunk;
    Config.Profiler.MinSampleBudget = 256;
    core::Runtime Local(Config);
    apps::PageRankKernel K;
    K.setup(Local, *Graph);
    Local.profilingStart();
    Local.beginIteration();
    K.runIteration();
    Local.endIteration();
    Local.profilingStop();
    return Local.profiler().sampleCount();
  };
  // The budget caps period doubling, so a larger budget keeps the period
  // low and collects more samples.
  EXPECT_GT(SamplesWith(256.0), SamplesWith(2.0));
}

} // namespace
