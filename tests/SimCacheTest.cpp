//===----------------------------------------------------------------------===//
// Unit tests for the set-associative LLC model.
//===----------------------------------------------------------------------===//

#include "sim/CacheSim.h"

#include <gtest/gtest.h>

using namespace atmem::sim;

namespace {

CacheConfig tinyCache() {
  CacheConfig Config;
  Config.SizeBytes = 4096; // 64 lines.
  Config.Ways = 4;
  Config.LineBytes = 64;
  return Config;
}

TEST(CacheSimTest, ColdMissThenHit) {
  CacheSim Cache(tinyCache());
  EXPECT_FALSE(Cache.access(0x1000));
  EXPECT_TRUE(Cache.access(0x1000));
  EXPECT_EQ(Cache.misses(), 1u);
  EXPECT_EQ(Cache.hits(), 1u);
}

TEST(CacheSimTest, SameLineSharesEntry) {
  CacheSim Cache(tinyCache());
  Cache.access(0x1000);
  EXPECT_TRUE(Cache.access(0x1030)); // Offset 48, same 64-byte line.
  EXPECT_FALSE(Cache.access(0x1040)); // Next line.
}

TEST(CacheSimTest, SizeRoundsToPowerOfTwoSets) {
  CacheConfig Config;
  Config.SizeBytes = 100 * 64; // 100 lines, 4 ways -> 25 sets -> 16 sets.
  Config.Ways = 4;
  Config.LineBytes = 64;
  CacheSim Cache(Config);
  EXPECT_EQ(Cache.sizeBytes(), 16u * 4 * 64);
}

TEST(CacheSimTest, CapacityEviction) {
  CacheSim Cache(tinyCache()); // 64 lines total.
  // Touch 128 distinct lines; all miss.
  for (uint64_t L = 0; L < 128; ++L)
    EXPECT_FALSE(Cache.access(L * 64));
  // Re-touch the first lines: they were evicted.
  EXPECT_FALSE(Cache.access(0));
}

TEST(CacheSimTest, WorkingSetWithinCapacityHits) {
  CacheSim Cache(tinyCache());
  for (int Pass = 0; Pass < 3; ++Pass)
    for (uint64_t L = 0; L < 32; ++L)
      Cache.access(L * 64);
  // Second and third passes hit: 64 hits (32 lines x 2 passes).
  EXPECT_EQ(Cache.hits(), 64u);
  EXPECT_EQ(Cache.misses(), 32u);
}

TEST(CacheSimTest, LruKeepsHotLine) {
  CacheConfig Config;
  Config.SizeBytes = 4 * 64; // One set, 4 ways.
  Config.Ways = 4;
  Config.LineBytes = 64;
  CacheSim Cache(Config);
  Cache.access(0 * 64);
  for (uint64_t L = 1; L < 4; ++L)
    Cache.access(L * 64);
  Cache.access(0); // Refresh line 0; line 1 is now LRU.
  Cache.access(4 * 64); // Evicts line 1.
  EXPECT_TRUE(Cache.access(0));
  EXPECT_FALSE(Cache.access(1 * 64));
}

TEST(CacheSimTest, LruStampsSurviveClockWraparound) {
  // Regression: recency stamps were stored as uint32_t, so once the access
  // clock crossed 2^32 a freshly touched line truncated to stamp 0 and was
  // treated as the LRU victim, inverting the replacement order.
  CacheConfig Config;
  Config.SizeBytes = 2 * 64; // One set, 2 ways.
  Config.Ways = 2;
  Config.LineBytes = 64;
  CacheSim Cache(Config);
  Cache.setClockForTesting((1ull << 32) - 2);
  Cache.access(0 * 64); // A: stamp 2^32 - 1 (all ones in 32 bits).
  Cache.access(1 * 64); // B: stamp 2^32 (truncates to 0 in 32 bits).
  Cache.access(2 * 64); // C must evict A, the true LRU line, not B.
  EXPECT_TRUE(Cache.access(1 * 64));
  EXPECT_FALSE(Cache.access(0 * 64));
}

TEST(CacheSimTest, FlushAllEmptiesCache) {
  CacheSim Cache(tinyCache());
  Cache.access(0x40);
  Cache.flushAll();
  EXPECT_FALSE(Cache.access(0x40));
}

TEST(CacheSimTest, ResetCountersKeepsContents) {
  CacheSim Cache(tinyCache());
  Cache.access(0x40);
  Cache.resetCounters();
  EXPECT_TRUE(Cache.access(0x40));
  EXPECT_EQ(Cache.hits(), 1u);
  EXPECT_EQ(Cache.misses(), 0u);
}

TEST(CacheSimTest, SequentialScanMissesOncePerLine) {
  CacheSim Cache(tinyCache());
  // 16 4-byte elements per 64-byte line.
  for (uint64_t Off = 0; Off < 1024; Off += 4)
    Cache.access(Off);
  EXPECT_EQ(Cache.misses(), 16u);
  EXPECT_EQ(Cache.hits(), 1024u / 4 - 16);
}

} // namespace
