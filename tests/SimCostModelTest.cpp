//===----------------------------------------------------------------------===//
// Unit tests for the kernel and migration cost models and the testbed
// presets.
//===----------------------------------------------------------------------===//

#include "sim/CostModel.h"
#include "sim/Machine.h"

#include <gtest/gtest.h>

using namespace atmem::sim;

namespace {

TEST(TestbedPresetTest, NvmDramTierAsymmetry) {
  MachineConfig Config = nvmDramTestbed();
  EXPECT_EQ(Config.Name, "NVM-DRAM");
  // DRAM (fast) has higher bandwidth and lower latency than NVM.
  EXPECT_GT(Config.Fast.BandwidthBytesPerSec,
            Config.Slow.BandwidthBytesPerSec);
  EXPECT_LT(Config.Fast.LoadLatencySec, Config.Slow.LoadLatencySec);
  // NVM has far larger capacity (it is the large-capacity memory).
  EXPECT_GT(Config.Slow.CapacityBytes, Config.Fast.CapacityBytes);
  // Optane's 256-byte media granularity.
  EXPECT_EQ(Config.Slow.AccessGranularityBytes, 256u);
}

TEST(TestbedPresetTest, McdramTierAsymmetry) {
  MachineConfig Config = mcdramDramTestbed();
  // MCDRAM: ~4x bandwidth of DDR4 but tiny capacity.
  EXPECT_GT(Config.Fast.BandwidthBytesPerSec,
            3 * Config.Slow.BandwidthBytesPerSec);
  EXPECT_LT(Config.Fast.CapacityBytes, Config.Slow.CapacityBytes);
  EXPECT_EQ(Config.Exec.Threads, 256u);
}

TEST(TestbedPresetTest, CapacityScaleShrinksEverything) {
  MachineConfig Full = nvmDramTestbed(1.0);
  MachineConfig Scaled = nvmDramTestbed(1.0 / 256);
  EXPECT_NEAR(static_cast<double>(Scaled.Fast.CapacityBytes),
              static_cast<double>(Full.Fast.CapacityBytes) / 256, 1e6);
  EXPECT_LT(Scaled.Cache.SizeBytes, Full.Cache.SizeBytes);
}

TEST(TestbedPresetTest, RandomAccessBandwidthAmplification) {
  MachineConfig Config = nvmDramTestbed();
  // 256-byte granularity quarters the NVM's effective random bandwidth.
  EXPECT_NEAR(Config.Slow.randomAccessBandwidth(),
              Config.Slow.BandwidthBytesPerSec / 4.0, 1.0);
  EXPECT_DOUBLE_EQ(Config.Fast.randomAccessBandwidth(),
                   Config.Fast.BandwidthBytesPerSec);
}

TEST(KernelCostModelTest, ZeroStatsZeroTime) {
  MachineConfig Config = nvmDramTestbed();
  KernelCostModel Model(Config);
  AccessStats Stats;
  EXPECT_DOUBLE_EQ(Model.estimate(Stats).seconds(), 0.0);
}

TEST(KernelCostModelTest, SlowMissesCostMoreThanFastMisses) {
  MachineConfig Config = nvmDramTestbed();
  KernelCostModel Model(Config);
  AccessStats OnFast;
  OnFast.Accesses = 1000000;
  OnFast.TierMisses[tierIndex(TierId::Fast)] = 1000000;
  AccessStats OnSlow;
  OnSlow.Accesses = 1000000;
  OnSlow.TierMisses[tierIndex(TierId::Slow)] = 1000000;
  EXPECT_GT(Model.estimate(OnSlow).seconds(),
            2.0 * Model.estimate(OnFast).seconds());
}

TEST(KernelCostModelTest, BandwidthBoundForMassedMisses) {
  MachineConfig Config = nvmDramTestbed();
  KernelCostModel Model(Config);
  AccessStats Stats;
  Stats.Accesses = 100000000;
  Stats.TierMisses[tierIndex(TierId::Slow)] = 100000000;
  KernelTime Time = Model.estimate(Stats);
  EXPECT_GT(Time.BandwidthSec, Time.CpuSec);
  EXPECT_EQ(Time.seconds(), Time.BandwidthSec);
}

TEST(KernelCostModelTest, CpuBoundWhenAllHits) {
  MachineConfig Config = nvmDramTestbed();
  KernelCostModel Model(Config);
  AccessStats Stats;
  Stats.Accesses = 1000000;
  Stats.LlcHits = 1000000;
  KernelTime Time = Model.estimate(Stats);
  EXPECT_DOUBLE_EQ(Time.BandwidthSec, 0.0);
  EXPECT_GT(Time.seconds(), 0.0);
}

TEST(KernelCostModelTest, MovingMissesToFastReducesTime) {
  MachineConfig Config = nvmDramTestbed();
  KernelCostModel Model(Config);
  AccessStats Before;
  Before.Accesses = 10000000;
  Before.TierMisses[tierIndex(TierId::Slow)] = 5000000;
  AccessStats After = Before;
  After.TierMisses[tierIndex(TierId::Slow)] = 1000000;
  After.TierMisses[tierIndex(TierId::Fast)] = 4000000;
  EXPECT_LT(Model.estimate(After).seconds(),
            Model.estimate(Before).seconds());
}

TEST(KernelCostModelTest, AccessStatsAccumulate) {
  AccessStats A;
  A.Accesses = 10;
  A.LlcHits = 5;
  A.TierMisses[0] = 2;
  AccessStats B;
  B.Accesses = 3;
  B.TierMisses[1] = 1;
  A += B;
  EXPECT_EQ(A.Accesses, 13u);
  EXPECT_EQ(A.totalMisses(), 3u);
}

TEST(MigrationCostModelTest, AtmemFasterThanMbindForLargeMoves) {
  MachineConfig Config = nvmDramTestbed();
  MigrationCostModel Model(Config);
  MigrationWork Work;
  Work.Bytes = 256ull << 20;
  Work.PtesTouched = Work.Bytes / SmallPageBytes;
  Work.Source = TierId::Slow;
  Work.Target = TierId::Fast;
  double Atmem = Model.atmemSeconds(Work);
  double Mbind = Model.mbindSeconds(Work);
  EXPECT_LT(Atmem, Mbind);
  // Paper Table 4: 1.3x - 2.7x on NVM-DRAM.
  EXPECT_GT(Mbind / Atmem, 1.2);
}

TEST(MigrationCostModelTest, HugePtesMakeAtmemRemapCheap) {
  MachineConfig Config = nvmDramTestbed();
  MigrationCostModel Model(Config);
  MigrationWork ManyPtes;
  ManyPtes.Bytes = 64ull << 20;
  ManyPtes.PtesTouched = ManyPtes.Bytes / SmallPageBytes;
  MigrationWork FewPtes = ManyPtes;
  FewPtes.PtesTouched = ManyPtes.Bytes / HugePageBytes;
  EXPECT_LT(Model.atmemSeconds(FewPtes), Model.atmemSeconds(ManyPtes));
}

TEST(MigrationCostModelTest, McdramSpeedupExceedsNvmSpeedup) {
  // Paper Table 4: average 5.32x on MCDRAM-DRAM vs 2.07x on NVM-DRAM,
  // because NVM read bandwidth bottlenecks the multi-threaded stage.
  MigrationWork Work;
  Work.Bytes = 256ull << 20;
  Work.PtesTouched = Work.Bytes / SmallPageBytes;
  Work.Source = TierId::Slow;
  Work.Target = TierId::Fast;

  MachineConfig Nvm = nvmDramTestbed();
  MigrationCostModel NvmModel(Nvm);
  double NvmSpeedup =
      NvmModel.mbindSeconds(Work) / NvmModel.atmemSeconds(Work);

  MachineConfig Knl = mcdramDramTestbed();
  MigrationCostModel KnlModel(Knl);
  double KnlSpeedup =
      KnlModel.mbindSeconds(Work) / KnlModel.atmemSeconds(Work);

  EXPECT_GT(KnlSpeedup, NvmSpeedup);
}

TEST(MigrationCostModelTest, CopyBandwidthSaturatesAtTierPeak) {
  MachineConfig Config = nvmDramTestbed();
  MigrationCostModel Model(Config);
  double OneThread = Model.copyBandwidth(TierId::Slow, TierId::Fast, 1);
  double ManyThreads = Model.copyBandwidth(TierId::Slow, TierId::Fast, 64);
  EXPECT_GT(ManyThreads, OneThread);
  EXPECT_LE(ManyThreads, Config.Slow.BandwidthBytesPerSec);
}

TEST(MachineTest, AggregatesComponents) {
  Machine M(nvmDramTestbed(1.0 / 256));
  EXPECT_EQ(M.allocator(TierId::Fast).tier(), TierId::Fast);
  EXPECT_EQ(M.allocator(TierId::Slow).tier(), TierId::Slow);
  EXPECT_GT(M.llc().sizeBytes(), 0u);
  // Page table allocates from the machine's allocators.
  ASSERT_TRUE(M.pageTable().mapRegion(0x100000000000ull, HugePageBytes,
                                      TierId::Fast, true));
  EXPECT_EQ(M.allocator(TierId::Fast).usedBytes(), HugePageBytes);
}

TEST(MachineTest, MakeTlbMatchesGeometry) {
  Machine M(nvmDramTestbed());
  Tlb T = M.makeTlb();
  EXPECT_EQ(T.misses(), 0u);
  T.access(0x1000, SmallPageBytes);
  EXPECT_EQ(T.misses(), 1u);
}

TEST(TierHelpersTest, OtherTierAndIndex) {
  EXPECT_EQ(otherTier(TierId::Fast), TierId::Slow);
  EXPECT_EQ(otherTier(TierId::Slow), TierId::Fast);
  EXPECT_EQ(tierIndex(TierId::Fast), 0u);
  EXPECT_EQ(tierIndex(TierId::Slow), 1u);
}

} // namespace
