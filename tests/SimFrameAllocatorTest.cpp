//===----------------------------------------------------------------------===//
// Unit tests for the per-tier physical frame allocator.
//===----------------------------------------------------------------------===//

#include "sim/FrameAllocator.h"

#include <gtest/gtest.h>

#include <set>

using namespace atmem::sim;

TEST(FrameAllocatorTest, StartsEmpty) {
  FrameAllocator Alloc(TierId::Fast, 1 << 20);
  EXPECT_EQ(Alloc.usedBytes(), 0u);
  EXPECT_EQ(Alloc.freeBytes(), 1u << 20);
  EXPECT_EQ(Alloc.tier(), TierId::Fast);
}

TEST(FrameAllocatorTest, SmallAllocationCharges4K) {
  FrameAllocator Alloc(TierId::Slow, 1 << 20);
  auto Frame = Alloc.allocateSmall();
  ASSERT_TRUE(Frame.has_value());
  EXPECT_EQ(Alloc.usedBytes(), SmallPageBytes);
}

TEST(FrameAllocatorTest, HugeAllocationCharges2M) {
  FrameAllocator Alloc(TierId::Slow, 4ull << 20);
  auto Base = Alloc.allocateHuge();
  ASSERT_TRUE(Base.has_value());
  EXPECT_EQ(*Base % FramesPerHugeBlock, 0u);
  EXPECT_EQ(Alloc.usedBytes(), HugePageBytes);
}

TEST(FrameAllocatorTest, SmallAllocationsAreUnique) {
  FrameAllocator Alloc(TierId::Fast, 8ull << 20);
  std::set<uint64_t> Frames;
  for (int I = 0; I < 1024; ++I) {
    auto Frame = Alloc.allocateSmall();
    ASSERT_TRUE(Frame.has_value());
    EXPECT_TRUE(Frames.insert(*Frame).second) << "duplicate frame";
  }
}

TEST(FrameAllocatorTest, HugeAllocationsAreAlignedAndUnique) {
  FrameAllocator Alloc(TierId::Fast, 16ull << 20);
  std::set<uint64_t> Bases;
  for (int I = 0; I < 8; ++I) {
    auto Base = Alloc.allocateHuge();
    ASSERT_TRUE(Base.has_value());
    EXPECT_EQ(*Base % FramesPerHugeBlock, 0u);
    EXPECT_TRUE(Bases.insert(*Base).second);
  }
}

TEST(FrameAllocatorTest, ExhaustionReturnsNullopt) {
  FrameAllocator Alloc(TierId::Fast, 2 * SmallPageBytes);
  EXPECT_TRUE(Alloc.allocateSmall().has_value());
  EXPECT_TRUE(Alloc.allocateSmall().has_value());
  EXPECT_FALSE(Alloc.allocateSmall().has_value());
}

TEST(FrameAllocatorTest, HugeExhaustionRespectsCapacity) {
  FrameAllocator Alloc(TierId::Fast, HugePageBytes + SmallPageBytes);
  EXPECT_TRUE(Alloc.allocateHuge().has_value());
  EXPECT_FALSE(Alloc.allocateHuge().has_value());
  // A small frame still fits in the remaining capacity.
  EXPECT_TRUE(Alloc.allocateSmall().has_value());
}

TEST(FrameAllocatorTest, FreeSmallReturnsCapacity) {
  FrameAllocator Alloc(TierId::Fast, 1ull << 20);
  auto Frame = Alloc.allocateSmall();
  ASSERT_TRUE(Frame);
  Alloc.freeSmall(*Frame);
  EXPECT_EQ(Alloc.usedBytes(), 0u);
}

TEST(FrameAllocatorTest, FreeHugeReturnsCapacity) {
  FrameAllocator Alloc(TierId::Fast, 4ull << 20);
  auto Base = Alloc.allocateHuge();
  ASSERT_TRUE(Base);
  Alloc.freeHuge(*Base);
  EXPECT_EQ(Alloc.usedBytes(), 0u);
}

TEST(FrameAllocatorTest, FreedSmallFrameIsReused) {
  FrameAllocator Alloc(TierId::Fast, 1ull << 20);
  auto Frame = Alloc.allocateSmall();
  ASSERT_TRUE(Frame);
  Alloc.freeSmall(*Frame);
  auto Again = Alloc.allocateSmall();
  ASSERT_TRUE(Again);
  EXPECT_EQ(*Frame, *Again);
}

TEST(FrameAllocatorTest, FreedHugeBlockIsReused) {
  FrameAllocator Alloc(TierId::Fast, 2ull << 20);
  auto Base = Alloc.allocateHuge();
  ASSERT_TRUE(Base);
  Alloc.freeHuge(*Base);
  auto Again = Alloc.allocateHuge();
  ASSERT_TRUE(Again);
  EXPECT_EQ(*Base, *Again);
}

TEST(FrameAllocatorTest, SplitHugeAllowsIndividualFrees) {
  FrameAllocator Alloc(TierId::Fast, 4ull << 20);
  auto Base = Alloc.allocateHuge();
  ASSERT_TRUE(Base);
  Alloc.splitHuge(*Base);
  EXPECT_EQ(Alloc.usedBytes(), HugePageBytes);
  for (uint64_t I = 0; I < FramesPerHugeBlock; ++I)
    Alloc.freeSmall(*Base + I);
  EXPECT_EQ(Alloc.usedBytes(), 0u);
}

TEST(FrameAllocatorTest, SmallAllocationCanCarveFreeHugeBlock) {
  // Exactly one huge block of capacity: after freeing it, small
  // allocations must be able to consume its frames.
  FrameAllocator Alloc(TierId::Fast, HugePageBytes);
  auto Base = Alloc.allocateHuge();
  ASSERT_TRUE(Base);
  Alloc.freeHuge(*Base);
  for (uint64_t I = 0; I < FramesPerHugeBlock; ++I)
    ASSERT_TRUE(Alloc.allocateSmall().has_value()) << "frame " << I;
  EXPECT_FALSE(Alloc.allocateSmall().has_value());
}

TEST(FrameAllocatorTest, MixedAllocationAccounting) {
  FrameAllocator Alloc(TierId::Slow, 8ull << 20);
  auto H = Alloc.allocateHuge();
  auto S1 = Alloc.allocateSmall();
  auto S2 = Alloc.allocateSmall();
  ASSERT_TRUE(H && S1 && S2);
  EXPECT_EQ(Alloc.usedBytes(), HugePageBytes + 2 * SmallPageBytes);
  Alloc.freeSmall(*S1);
  EXPECT_EQ(Alloc.usedBytes(), HugePageBytes + SmallPageBytes);
}
