//===----------------------------------------------------------------------===//
// Unit tests for the simulated page table: mapping, preferred placement,
// the ATMem remap path, and the mbind-style page-move path.
//===----------------------------------------------------------------------===//

#include "sim/PageTable.h"

#include <gtest/gtest.h>

using namespace atmem::sim;

namespace {

class PageTableTest : public ::testing::Test {
protected:
  PageTableTest()
      : Fast(TierId::Fast, 64ull << 20), Slow(TierId::Slow, 256ull << 20),
        PT(Fast, Slow) {}

  FrameAllocator Fast;
  FrameAllocator Slow;
  PageTable PT;
};

constexpr uint64_t Va = 0x100000000000ull; // 2 MiB aligned.

TEST_F(PageTableTest, MapSmallRegionTranslates) {
  ASSERT_TRUE(PT.mapRegion(Va, 4 * SmallPageBytes, TierId::Slow,
                           /*PreferHuge=*/false));
  Translation T;
  ASSERT_TRUE(PT.translate(Va + 5000, T));
  EXPECT_EQ(T.PageBytes, SmallPageBytes);
  EXPECT_EQ(T.Tier, TierId::Slow);
  EXPECT_EQ(T.PageVa, Va + SmallPageBytes);
}

TEST_F(PageTableTest, UnmappedTranslateFails) {
  Translation T;
  EXPECT_FALSE(PT.translate(Va, T));
}

TEST_F(PageTableTest, HugeMappingUsedWhenAligned) {
  ASSERT_TRUE(PT.mapRegion(Va, 2 * HugePageBytes, TierId::Slow,
                           /*PreferHuge=*/true));
  EXPECT_EQ(PT.hugePageCount(), 2u);
  EXPECT_EQ(PT.smallPageCount(), 0u);
  Translation T;
  ASSERT_TRUE(PT.translate(Va + HugePageBytes + 123, T));
  EXPECT_EQ(T.PageBytes, HugePageBytes);
}

TEST_F(PageTableTest, UnalignedTailUsesSmallPages) {
  ASSERT_TRUE(PT.mapRegion(Va, HugePageBytes + 3 * SmallPageBytes,
                           TierId::Slow, /*PreferHuge=*/true));
  EXPECT_EQ(PT.hugePageCount(), 1u);
  EXPECT_EQ(PT.smallPageCount(), 3u);
}

TEST_F(PageTableTest, PreferHugeFalseMapsSmallOnly) {
  ASSERT_TRUE(PT.mapRegion(Va, 2 * HugePageBytes, TierId::Fast,
                           /*PreferHuge=*/false));
  EXPECT_EQ(PT.hugePageCount(), 0u);
  EXPECT_EQ(PT.smallPageCount(), 2 * FramesPerHugeBlock);
}

TEST_F(PageTableTest, MapRegionFailsWithoutCapacity) {
  FrameAllocator Tiny(TierId::Fast, 2 * SmallPageBytes);
  FrameAllocator Big(TierId::Slow, 64ull << 20);
  PageTable Small(Tiny, Big);
  EXPECT_FALSE(Small.mapRegion(Va, 4 * SmallPageBytes, TierId::Fast, false));
  // Nothing was mapped on failure.
  Translation T;
  EXPECT_FALSE(Small.translate(Va, T));
  EXPECT_EQ(Tiny.usedBytes(), 0u);
}

TEST_F(PageTableTest, MappedBytesAccounting) {
  ASSERT_TRUE(PT.mapRegion(Va, HugePageBytes + SmallPageBytes, TierId::Slow,
                           true));
  EXPECT_EQ(PT.mappedBytesOn(TierId::Slow), HugePageBytes + SmallPageBytes);
  EXPECT_EQ(PT.mappedBytesOn(TierId::Fast), 0u);
  PT.unmapRegion(Va, HugePageBytes + SmallPageBytes);
  EXPECT_EQ(PT.mappedBytesOn(TierId::Slow), 0u);
}

TEST_F(PageTableTest, UnmapReleasesFrames) {
  ASSERT_TRUE(PT.mapRegion(Va, 4ull << 20, TierId::Slow, true));
  uint64_t Used = Slow.usedBytes();
  EXPECT_EQ(Used, 4ull << 20);
  PT.unmapRegion(Va, 4ull << 20);
  EXPECT_EQ(Slow.usedBytes(), 0u);
}

TEST_F(PageTableTest, PreferredPlacementOverflowsToSlow) {
  FrameAllocator Tiny(TierId::Fast, HugePageBytes);
  FrameAllocator Big(TierId::Slow, 64ull << 20);
  PageTable Table(Tiny, Big);
  uint64_t OnFast =
      Table.mapRegionPreferred(Va, 3 * HugePageBytes, TierId::Fast, true);
  EXPECT_EQ(OnFast, HugePageBytes);
  EXPECT_EQ(Table.tierOf(Va), TierId::Fast);
  EXPECT_EQ(Table.tierOf(Va + 2 * HugePageBytes), TierId::Slow);
}

TEST_F(PageTableTest, PreferredPlacementAllFitsOnFast) {
  uint64_t OnFast =
      PT.mapRegionPreferred(Va, 2 * HugePageBytes, TierId::Fast, true);
  EXPECT_EQ(OnFast, 2 * HugePageBytes);
}

TEST_F(PageTableTest, RemapRangeMovesTier) {
  ASSERT_TRUE(PT.mapRegion(Va, 2 * HugePageBytes, TierId::Slow, true));
  uint64_t Ptes = 0;
  ASSERT_TRUE(PT.remapRange(Va, 2 * HugePageBytes, TierId::Fast, true,
                            &Ptes));
  EXPECT_EQ(Ptes, 2u); // Two huge PTEs rewritten.
  EXPECT_EQ(PT.tierOf(Va), TierId::Fast);
  EXPECT_EQ(PT.tierOf(Va + HugePageBytes), TierId::Fast);
  EXPECT_EQ(Slow.usedBytes(), 0u);
  EXPECT_EQ(Fast.usedBytes(), 2 * HugePageBytes);
}

TEST_F(PageTableTest, RemapRangeReformsHugePages) {
  // Map small pages only, then remap with huge preference: the target
  // mapping must coalesce into huge pages.
  ASSERT_TRUE(PT.mapRegion(Va, HugePageBytes, TierId::Slow,
                           /*PreferHuge=*/false));
  EXPECT_EQ(PT.smallPageCount(), FramesPerHugeBlock);
  ASSERT_TRUE(PT.remapRange(Va, HugePageBytes, TierId::Fast, true));
  EXPECT_EQ(PT.hugePageCount(), 1u);
  EXPECT_EQ(PT.smallPageCount(), 0u);
}

TEST_F(PageTableTest, RemapPartialRangeSplitsBoundaryHugePages) {
  ASSERT_TRUE(PT.mapRegion(Va, 2 * HugePageBytes, TierId::Slow, true));
  // Remap an inner window missing both huge boundaries.
  uint64_t Window = Va + HugePageBytes / 2;
  ASSERT_TRUE(PT.remapRange(Window, HugePageBytes, TierId::Fast, true));
  EXPECT_EQ(PT.tierOf(Window), TierId::Fast);
  EXPECT_EQ(PT.tierOf(Va), TierId::Slow);
  EXPECT_EQ(PT.tierOf(Va + 2 * HugePageBytes - 1), TierId::Slow);
  // Both straddled huge pages split.
  EXPECT_EQ(PT.hugePageCount(), 0u);
}

TEST_F(PageTableTest, RemapFailsWithoutTargetCapacity) {
  FrameAllocator Tiny(TierId::Fast, HugePageBytes);
  FrameAllocator Big(TierId::Slow, 64ull << 20);
  PageTable Table(Tiny, Big);
  ASSERT_TRUE(Table.mapRegion(Va, 2 * HugePageBytes, TierId::Slow, true));
  EXPECT_FALSE(Table.remapRange(Va, 2 * HugePageBytes, TierId::Fast, true));
  // Range still on the slow tier.
  EXPECT_EQ(Table.tierOf(Va), TierId::Slow);
}

TEST_F(PageTableTest, RemapAlignedRangeWithoutHugePreference) {
  // A huge-aligned, huge-multiple range remapped with PreferHuge=false
  // must split the existing huge mappings and land on small pages.
  ASSERT_TRUE(PT.mapRegion(Va, 2 * HugePageBytes, TierId::Slow, true));
  ASSERT_TRUE(PT.remapRange(Va, 2 * HugePageBytes, TierId::Fast,
                            /*PreferHuge=*/false));
  EXPECT_EQ(PT.hugePageCount(), 0u);
  EXPECT_EQ(PT.smallPageCount(), 2 * FramesPerHugeBlock);
  EXPECT_EQ(PT.tierOf(Va), TierId::Fast);
  EXPECT_EQ(PT.mappedBytesOn(TierId::Fast), 2 * HugePageBytes);
}

TEST_F(PageTableTest, MovePageChangesTier) {
  ASSERT_TRUE(PT.mapRegion(Va, 4 * SmallPageBytes, TierId::Slow, false));
  bool Split = false;
  ASSERT_TRUE(PT.movePage(Va + SmallPageBytes, TierId::Fast, &Split));
  EXPECT_FALSE(Split);
  EXPECT_EQ(PT.tierOf(Va + SmallPageBytes), TierId::Fast);
  EXPECT_EQ(PT.tierOf(Va), TierId::Slow);
}

TEST_F(PageTableTest, MovePageSplitsCoveringHugePage) {
  ASSERT_TRUE(PT.mapRegion(Va, HugePageBytes, TierId::Slow, true));
  EXPECT_EQ(PT.hugePageCount(), 1u);
  bool Split = false;
  ASSERT_TRUE(PT.movePage(Va + 8 * SmallPageBytes, TierId::Fast, &Split));
  EXPECT_TRUE(Split);
  EXPECT_EQ(PT.hugePageCount(), 0u);
  EXPECT_EQ(PT.smallPageCount(), FramesPerHugeBlock);
  EXPECT_EQ(PT.tierOf(Va + 8 * SmallPageBytes), TierId::Fast);
  EXPECT_EQ(PT.tierOf(Va), TierId::Slow);
}

TEST_F(PageTableTest, MovePageToSameTierIsNoop) {
  ASSERT_TRUE(PT.mapRegion(Va, SmallPageBytes, TierId::Fast, false));
  uint64_t Used = Fast.usedBytes();
  ASSERT_TRUE(PT.movePage(Va, TierId::Fast));
  EXPECT_EQ(Fast.usedBytes(), Used);
}

TEST_F(PageTableTest, MovePageFailsWhenTargetFull) {
  FrameAllocator Tiny(TierId::Fast, SmallPageBytes);
  FrameAllocator Big(TierId::Slow, 64ull << 20);
  PageTable Table(Tiny, Big);
  ASSERT_TRUE(Table.mapRegion(Va, 2 * SmallPageBytes, TierId::Slow, false));
  EXPECT_TRUE(Table.movePage(Va, TierId::Fast));
  EXPECT_FALSE(Table.movePage(Va + SmallPageBytes, TierId::Fast));
  EXPECT_EQ(Table.tierOf(Va + SmallPageBytes), TierId::Slow);
}

TEST_F(PageTableTest, MoveEveryPageOfSplitHugeFreesSlowBytes) {
  ASSERT_TRUE(PT.mapRegion(Va, HugePageBytes, TierId::Slow, true));
  for (uint64_t P = 0; P < FramesPerHugeBlock; ++P)
    ASSERT_TRUE(PT.movePage(Va + P * SmallPageBytes, TierId::Fast));
  EXPECT_EQ(Slow.usedBytes(), 0u);
  EXPECT_EQ(Fast.usedBytes(), HugePageBytes);
  EXPECT_EQ(PT.mappedBytesOn(TierId::Fast), HugePageBytes);
}

} // namespace
