//===----------------------------------------------------------------------===//
// Unit tests for the split 4 KiB / 2 MiB TLB model.
//===----------------------------------------------------------------------===//

#include "sim/Tlb.h"

#include "sim/FrameAllocator.h"

#include <gtest/gtest.h>

using namespace atmem::sim;

namespace {

TlbConfig smallConfig() {
  TlbConfig Config;
  Config.SmallEntries = 8;
  Config.SmallWays = 2;
  Config.HugeEntries = 4;
  Config.HugeWays = 2;
  return Config;
}

TEST(TlbArrayTest, FirstAccessMisses) {
  TlbArray Array(8, 2, SmallPageBytes);
  EXPECT_FALSE(Array.access(0x1000));
  EXPECT_EQ(Array.misses(), 1u);
  EXPECT_EQ(Array.hits(), 0u);
}

TEST(TlbArrayTest, RepeatAccessHits) {
  TlbArray Array(8, 2, SmallPageBytes);
  Array.access(0x1000);
  EXPECT_TRUE(Array.access(0x1fff)); // Same page.
  EXPECT_EQ(Array.hits(), 1u);
}

TEST(TlbArrayTest, DifferentPagesMiss) {
  TlbArray Array(8, 2, SmallPageBytes);
  Array.access(0x1000);
  EXPECT_FALSE(Array.access(0x2000));
}

TEST(TlbArrayTest, LruEvictionWithinSet) {
  // 2 sets x 2 ways; pages mapping to the same set: vpn % 2 equal.
  TlbArray Array(4, 2, SmallPageBytes);
  uint64_t P0 = 0 * SmallPageBytes; // set 0
  uint64_t P2 = 2 * SmallPageBytes; // set 0
  uint64_t P4 = 4 * SmallPageBytes; // set 0
  Array.access(P0);
  Array.access(P2);
  Array.access(P0);       // P0 most recent; P2 is LRU.
  Array.access(P4);       // Evicts P2.
  EXPECT_TRUE(Array.access(P0));
  EXPECT_FALSE(Array.access(P2));
}

TEST(TlbArrayTest, FlushPageInvalidatesOnlyThatPage) {
  TlbArray Array(8, 2, SmallPageBytes);
  Array.access(0x1000);
  Array.access(0x2000);
  Array.flushPage(0x1000);
  EXPECT_FALSE(Array.access(0x1000));
  EXPECT_TRUE(Array.access(0x2000));
}

TEST(TlbArrayTest, FlushAllInvalidatesEverything) {
  TlbArray Array(8, 2, SmallPageBytes);
  Array.access(0x1000);
  Array.access(0x2000);
  Array.flushAll();
  EXPECT_FALSE(Array.access(0x1000));
  EXPECT_FALSE(Array.access(0x2000));
}

TEST(TlbArrayTest, CounterReset) {
  TlbArray Array(8, 2, SmallPageBytes);
  Array.access(0x1000);
  Array.access(0x1000);
  Array.resetCounters();
  EXPECT_EQ(Array.hits(), 0u);
  EXPECT_EQ(Array.misses(), 0u);
}

TEST(TlbTest, RoutesBySize) {
  Tlb T(smallConfig());
  EXPECT_FALSE(T.access(0x1000, SmallPageBytes));
  EXPECT_FALSE(T.access(0x1000, HugePageBytes));
  // Small entry hit does not interfere with huge entry and vice versa.
  EXPECT_TRUE(T.access(0x1000, SmallPageBytes));
  EXPECT_TRUE(T.access(0x1000, HugePageBytes));
  EXPECT_EQ(T.misses(), 2u);
  EXPECT_EQ(T.hits(), 2u);
}

TEST(TlbTest, HugeReachExceedsSmallReach) {
  // Accessing 16 MiB through huge pages fits in 4 entries... it does not,
  // but through 4 KiB pages the same footprint thrashes far harder.
  Tlb SmallSide(smallConfig());
  Tlb HugeSide(smallConfig());
  constexpr uint64_t Footprint = 4 * HugePageBytes;
  for (uint64_t Pass = 0; Pass < 4; ++Pass)
    for (uint64_t Off = 0; Off < Footprint; Off += SmallPageBytes) {
      SmallSide.access(Off, SmallPageBytes);
      HugeSide.access(Off, HugePageBytes);
    }
  EXPECT_GT(SmallSide.misses(), 10 * HugeSide.misses());
}

TEST(TlbTest, FlushPageBySize) {
  Tlb T(smallConfig());
  T.access(0x1000, SmallPageBytes);
  T.flushPage(0x1000, SmallPageBytes);
  EXPECT_FALSE(T.access(0x1000, SmallPageBytes));
}

TEST(TlbTest, FlushAllAndReset) {
  Tlb T(smallConfig());
  T.access(0x1000, SmallPageBytes);
  T.access(0x200000, HugePageBytes);
  T.flushAll();
  T.resetCounters();
  EXPECT_FALSE(T.access(0x1000, SmallPageBytes));
  EXPECT_EQ(T.misses(), 1u);
}

TEST(TlbTest, DefaultGeometryFromConfig) {
  TlbConfig Config; // Default x86-like geometry.
  Tlb T(Config);
  // 64 distinct small pages fit; the 65th (aliasing set 0) evicts.
  for (uint64_t P = 0; P < 64; ++P)
    T.access(P * SmallPageBytes, SmallPageBytes);
  EXPECT_EQ(T.misses(), 64u);
  for (uint64_t P = 0; P < 64; ++P)
    T.access(P * SmallPageBytes, SmallPageBytes);
  EXPECT_EQ(T.hits(), 64u);
}

} // namespace
