//===----------------------------------------------------------------------===//
// Tests for the live snapshot endpoint (obs/StatsSocket.h): the
// server/client roundtrip over a UNIX socket, per-connection provider
// invocation, stop/restart semantics, path-length validation, and the
// Runtime integration serving atmem-stats-v1 documents with metrics,
// placement, and the ring head.
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "obs/DecisionLog.h"
#include "obs/Json.h"
#include "obs/StatsSocket.h"
#include "obs/TimeSeries.h"
#include "sim/Machine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include <unistd.h>

using namespace atmem;
using namespace atmem::obs;

namespace {

class StatsSocketTest : public ::testing::Test {
protected:
  void SetUp() override {
    DecisionLog::instance().close();
    TimeSeries::instance().setEnabled(false);
    TimeSeries::instance().clear();
  }
  void TearDown() override {
    DecisionLog::instance().close();
    TimeSeries::instance().setEnabled(false);
    TimeSeries::instance().clear();
  }

  static std::string tempPath(const char *Name) {
    return ::testing::TempDir() + Name;
  }
};

//===----------------------------------------------------------------------===//
// Server basics
//===----------------------------------------------------------------------===//

TEST_F(StatsSocketTest, RoundTripInvokesProviderPerConnection) {
  std::string Path = tempPath("stats_roundtrip.sock");
  std::atomic<int> Calls{0};
  StatsServer Server;
  std::string Error;
  ASSERT_TRUE(Server.start(Path,
                           [&Calls] {
                             int N = ++Calls;
                             return "snapshot-" + std::to_string(N);
                           },
                           &Error))
      << Error;
  EXPECT_TRUE(Server.running());
  EXPECT_EQ(Server.path(), Path);

  std::string Body;
  ASSERT_TRUE(statsSocketFetch(Path, Body, &Error)) << Error;
  EXPECT_EQ(Body, "snapshot-1");
  ASSERT_TRUE(statsSocketFetch(Path, Body, &Error)) << Error;
  EXPECT_EQ(Body, "snapshot-2");
  EXPECT_EQ(Calls.load(), 2);

  Server.stop();
  EXPECT_FALSE(Server.running());
}

TEST_F(StatsSocketTest, StopIsIdempotentAndFetchFailsAfter) {
  std::string Path = tempPath("stats_stop.sock");
  StatsServer Server;
  std::string Error;
  ASSERT_TRUE(Server.start(Path, [] { return std::string("x"); }, &Error))
      << Error;
  Server.stop();
  Server.stop(); // Second stop is a no-op, not a crash.
  EXPECT_FALSE(Server.running());

  // stop() unlinked the socket: clients see a connect failure, not a
  // stale file that hangs.
  std::string Body;
  EXPECT_FALSE(statsSocketFetch(Path, Body, &Error));
  EXPECT_FALSE(Error.empty());
}

TEST_F(StatsSocketTest, ServerRestartsOnTheSamePath) {
  std::string Path = tempPath("stats_restart.sock");
  StatsServer Server;
  std::string Error;
  ASSERT_TRUE(Server.start(Path, [] { return std::string("one"); }, &Error))
      << Error;
  Server.stop();
  ASSERT_TRUE(Server.start(Path, [] { return std::string("two"); }, &Error))
      << Error;
  std::string Body;
  ASSERT_TRUE(statsSocketFetch(Path, Body, &Error)) << Error;
  EXPECT_EQ(Body, "two");
  Server.stop();
}

TEST_F(StatsSocketTest, OverlongPathIsRejectedUpFront) {
  // sockaddr_un caps the path; the server must fail with a diagnostic
  // instead of silently truncating to a different file.
  std::string Path = "/tmp/" + std::string(200, 'x') + ".sock";
  StatsServer Server;
  std::string Error;
  EXPECT_FALSE(Server.start(Path, [] { return std::string("x"); }, &Error));
  EXPECT_FALSE(Server.running());
  EXPECT_FALSE(Error.empty());
}

//===----------------------------------------------------------------------===//
// Runtime integration: the atmem-stats-v1 document
//===----------------------------------------------------------------------===//

TEST_F(StatsSocketTest, RuntimeServesPlacementMetricsAndLastEpoch) {
  std::string Socket = tempPath("stats_runtime.sock");
  core::RuntimeConfig Config;
  Config.Machine = sim::nvmDramTestbed(1.0 / 1024);
  Config.Telemetry.StatsSocketPath = Socket;
  {
    core::Runtime Rt(Config);
    core::TrackedArray<uint64_t> Hot = Rt.allocate<uint64_t>("hot", 1 << 16);

    Rt.profilingStart();
    Rt.beginIteration();
    uint64_t State = 7;
    for (int I = 0; I < 50000; ++I) {
      State = State * 6364136223846793005ull + 1442695040888963407ull;
      Hot[(State >> 33) & ((1 << 16) - 1)] += 1;
    }
    Rt.endIteration();
    Rt.profilingStop();
    Rt.optimize();

    std::string Body;
    std::string Error;
    ASSERT_TRUE(statsSocketFetch(Socket, Body, &Error)) << Error;

    JsonValue Doc;
    ASSERT_TRUE(parseJson(Body, Doc, &Error)) << Error;
    const JsonValue *Schema = Doc.findString("schema");
    ASSERT_NE(Schema, nullptr);
    EXPECT_EQ(Schema->StringVal, "atmem-stats-v1");

    const JsonValue *Epoch = Doc.findNumber("epoch");
    ASSERT_NE(Epoch, nullptr);
    EXPECT_EQ(Epoch->NumberVal, 1.0);

    // No ring is open: the head is all zeros but still present.
    const JsonValue *Ring = Doc.find("ring");
    ASSERT_NE(Ring, nullptr);
    ASSERT_NE(Ring->findNumber("next_seq"), nullptr);
    EXPECT_EQ(Ring->findNumber("next_seq")->NumberVal, 0.0);

    const JsonValue *Last = Doc.find("last_epoch");
    ASSERT_NE(Last, nullptr);
    ASSERT_NE(Last->findNumber("epoch"), nullptr);
    EXPECT_EQ(Last->findNumber("epoch")->NumberVal, 1.0);
    const JsonValue *SlowMiss = Last->findNumber("slow_miss_fraction");
    ASSERT_NE(SlowMiss, nullptr);
    EXPECT_GE(SlowMiss->NumberVal, 0.0);
    EXPECT_LE(SlowMiss->NumberVal, 1.0);

    const JsonValue *Metrics = Doc.find("metrics");
    ASSERT_NE(Metrics, nullptr);
    EXPECT_NE(Metrics->find("counters"), nullptr);

    const JsonValue *Placement = Doc.find("placement");
    ASSERT_NE(Placement, nullptr);
    ASSERT_TRUE(Placement->isArray());
    ASSERT_EQ(Placement->Array.size(), 1u);
    const JsonValue &Obj = Placement->Array[0];
    ASSERT_NE(Obj.findString("name"), nullptr);
    EXPECT_EQ(Obj.findString("name")->StringVal, "hot");
    const JsonValue *Fraction = Obj.findNumber("fast_fraction");
    ASSERT_NE(Fraction, nullptr);
    EXPECT_GE(Fraction->NumberVal, 0.0);
    EXPECT_LE(Fraction->NumberVal, 1.0);
  }

  // The Runtime destructor stopped the server and unlinked the socket.
  std::string Body;
  std::string Error;
  EXPECT_FALSE(statsSocketFetch(Socket, Body, &Error));
}

} // namespace
