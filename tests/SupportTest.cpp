//===----------------------------------------------------------------------===//
// Unit tests for the support library: PRNG, statistics, string utilities,
// table printing, options parsing, and logging.
//===----------------------------------------------------------------------===//

#include "support/Logging.h"
#include "support/Options.h"
#include "support/Prng.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "support/Topology.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

using namespace atmem;

//===----------------------------------------------------------------------===//
// Prng
//===----------------------------------------------------------------------===//

TEST(SplitMix64Test, DeterministicForSeed) {
  SplitMix64 A(42);
  SplitMix64 B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 A(1);
  SplitMix64 B(2);
  EXPECT_NE(A.next(), B.next());
}

TEST(SplitMix64Test, KnownFirstValueIsStable) {
  // Regression pin: dataset generation depends on this stream.
  SplitMix64 Gen(0);
  uint64_t First = Gen.next();
  SplitMix64 Gen2(0);
  EXPECT_EQ(First, Gen2.next());
  EXPECT_NE(First, Gen.next());
}

TEST(Xoshiro256Test, DeterministicForSeed) {
  Xoshiro256 A(7);
  Xoshiro256 B(7);
  for (int I = 0; I < 1000; ++I)
    ASSERT_EQ(A.next(), B.next());
}

TEST(Xoshiro256Test, DoubleInUnitInterval) {
  Xoshiro256 Rng(3);
  for (int I = 0; I < 10000; ++I) {
    double V = Rng.nextDouble();
    ASSERT_GE(V, 0.0);
    ASSERT_LT(V, 1.0);
  }
}

TEST(Xoshiro256Test, DoubleMeanNearHalf) {
  Xoshiro256 Rng(11);
  double Sum = 0.0;
  constexpr int N = 100000;
  for (int I = 0; I < N; ++I)
    Sum += Rng.nextDouble();
  EXPECT_NEAR(Sum / N, 0.5, 0.01);
}

TEST(Xoshiro256Test, BoundedStaysInRange) {
  Xoshiro256 Rng(5);
  for (uint64_t Bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int I = 0; I < 1000; ++I)
      ASSERT_LT(Rng.nextBounded(Bound), Bound);
  }
}

TEST(Xoshiro256Test, BoundedOneAlwaysZero) {
  Xoshiro256 Rng(5);
  for (int I = 0; I < 100; ++I)
    ASSERT_EQ(Rng.nextBounded(1), 0u);
}

TEST(Xoshiro256Test, BoundedCoversSmallRange) {
  Xoshiro256 Rng(9);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 1000; ++I)
    Seen.insert(Rng.nextBounded(8));
  EXPECT_EQ(Seen.size(), 8u);
}

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

TEST(StatisticsTest, MeanBasics) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({4.0}), 4.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(StatisticsTest, GeomeanBasics) {
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
  EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(StatisticsTest, StddevBasics) {
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
  EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.138, 1e-3);
}

TEST(StatisticsTest, PercentileEndpoints) {
  std::vector<double> V = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(V, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(V, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(V, 50.0), 3.0);
}

TEST(StatisticsTest, PercentileInterpolates) {
  std::vector<double> V = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(V, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(V, 75.0), 7.5);
}

TEST(StatisticsTest, PercentileUnsortedInput) {
  std::vector<double> V = {9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(V, 50.0), 5.0);
}

TEST(StatisticsTest, PercentileEmptyAndSingle) {
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile({3.0}, 90.0), 3.0);
}

TEST(StatisticsTest, TwoMeansSeparatesBimodal) {
  std::vector<double> V = {1.0, 1.1, 0.9, 1.05, 10.0, 10.2, 9.8};
  double Threshold = twoMeansThreshold(V);
  EXPECT_GT(Threshold, 1.2);
  EXPECT_LT(Threshold, 9.5);
}

TEST(StatisticsTest, TwoMeansUniformReturnsValue) {
  std::vector<double> V = {4.0, 4.0, 4.0};
  EXPECT_DOUBLE_EQ(twoMeansThreshold(V), 4.0);
}

TEST(StatisticsTest, TwoMeansDegenerate) {
  EXPECT_DOUBLE_EQ(twoMeansThreshold({}), 0.0);
  EXPECT_DOUBLE_EQ(twoMeansThreshold({1.0}), 0.0);
}

TEST(StatisticsTest, LargestGapFindsCliff) {
  std::vector<double> V = {100.0, 99.0, 98.0, 10.0, 9.0, 8.0};
  double Threshold = largestGapThreshold(V);
  EXPECT_GT(Threshold, 10.0);
  EXPECT_LT(Threshold, 98.0);
}

TEST(StatisticsTest, LargestGapDegenerate) {
  EXPECT_DOUBLE_EQ(largestGapThreshold({}), 0.0);
  EXPECT_DOUBLE_EQ(largestGapThreshold({5.0}), 0.0);
}

TEST(StatisticsTest, RunningStatTracksMinMaxMean) {
  RunningStat S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_DOUBLE_EQ(S.mean(), 0.0);
  S.add(2.0);
  S.add(4.0);
  S.add(9.0);
  EXPECT_EQ(S.count(), 3u);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  EXPECT_DOUBLE_EQ(S.min(), 2.0);
  EXPECT_DOUBLE_EQ(S.max(), 9.0);
}

TEST(StatisticsTest, RunningStatNegativeValues) {
  RunningStat S;
  S.add(-5.0);
  S.add(5.0);
  EXPECT_DOUBLE_EQ(S.min(), -5.0);
  EXPECT_DOUBLE_EQ(S.mean(), 0.0);
}

TEST(StatisticsTest, RunningStatVarianceMatchesBatchStddev) {
  std::vector<double> Values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStat S;
  for (double V : Values)
    S.add(V);
  EXPECT_NEAR(S.stddev(), stddev(Values), 1e-12);
  EXPECT_NEAR(S.variance(), stddev(Values) * stddev(Values), 1e-12);
}

TEST(StatisticsTest, RunningStatVarianceDegenerate) {
  RunningStat S;
  EXPECT_DOUBLE_EQ(S.variance(), 0.0);
  EXPECT_DOUBLE_EQ(S.stddev(), 0.0);
  S.add(3.0);
  EXPECT_DOUBLE_EQ(S.variance(), 0.0); // one value: no spread defined
  S.add(3.0);
  EXPECT_DOUBLE_EQ(S.variance(), 0.0); // identical values: zero spread
}

TEST(StatisticsTest, RunningStatWelfordStableForLargeMean) {
  // Classic catastrophic-cancellation case: tiny spread around a huge
  // mean. The naive sum-of-squares formula loses all precision here;
  // Welford keeps it.
  RunningStat S;
  for (double Offset : {0.0, 1.0, 2.0})
    S.add(1e9 + Offset);
  EXPECT_NEAR(S.variance(), 1.0, 1e-6);
}

//===----------------------------------------------------------------------===//
// StringUtils
//===----------------------------------------------------------------------===//

TEST(StringUtilsTest, FormatBytes) {
  EXPECT_EQ(formatBytes(512), "512 B");
  EXPECT_EQ(formatBytes(2048), "2.00 KiB");
  EXPECT_EQ(formatBytes(3ull << 20), "3.00 MiB");
  EXPECT_EQ(formatBytes(5ull << 30), "5.00 GiB");
}

TEST(StringUtilsTest, FormatSeconds) {
  EXPECT_EQ(formatSeconds(2.5), "2.500 s");
  EXPECT_EQ(formatSeconds(0.0123), "12.30 ms");
  EXPECT_EQ(formatSeconds(4.2e-6), "4.20 us");
  EXPECT_EQ(formatSeconds(5e-9), "5.0 ns");
}

TEST(StringUtilsTest, FormatHelpers) {
  EXPECT_EQ(formatSpeedup(2.0), "2.00x");
  EXPECT_EQ(formatPercent(0.125), "12.5%");
  EXPECT_EQ(formatDouble(3.14159, 3), "3.142");
}

TEST(StringUtilsTest, SplitString) {
  auto Parts = splitString("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 3u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[1], "b");
  EXPECT_EQ(Parts[2], "c");
  EXPECT_TRUE(splitString("", ',').empty());
}

TEST(StringUtilsTest, StartsWith) {
  EXPECT_TRUE(startsWith("--flag", "--"));
  EXPECT_FALSE(startsWith("-", "--"));
  EXPECT_TRUE(startsWith("abc", ""));
}

TEST(StringUtilsTest, ParseUnsigned) {
  EXPECT_EQ(parseUnsigned("0"), 0u);
  EXPECT_EQ(parseUnsigned("123456789"), 123456789u);
}

TEST(StringUtilsTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(parseDoubleOrDie("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(parseDoubleOrDie("-2"), -2.0);
}

//===----------------------------------------------------------------------===//
// TablePrinter
//===----------------------------------------------------------------------===//

TEST(TablePrinterTest, RendersAlignedColumns) {
  TablePrinter Table({"name", "value"});
  Table.addRow({"x", "1"});
  Table.addRow({"longer", "22"});
  std::string Out = Table.render();
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("longer"), std::string::npos);
  // Header rule is present.
  EXPECT_NE(Out.find("---"), std::string::npos);
}

TEST(TablePrinterTest, RowCount) {
  TablePrinter Table({"a"});
  EXPECT_EQ(Table.rowCount(), 0u);
  Table.addRow({"1"});
  Table.addRow({"2"});
  EXPECT_EQ(Table.rowCount(), 2u);
}

TEST(TablePrinterTest, ColumnWidthFollowsWidestCell) {
  TablePrinter Table({"h", "k"});
  Table.addRow({"wide-cell", "x"});
  std::string Out = Table.render();
  // The header row pads "h" to the width of "wide-cell" plus separator.
  EXPECT_EQ(Out.substr(0, 11), "h          ");
}

//===----------------------------------------------------------------------===//
// OptionParser
//===----------------------------------------------------------------------===//

TEST(OptionParserTest, DefaultsApplyWithoutArgs) {
  OptionParser Parser("tool");
  Parser.addString("name", "alpha", "a name");
  Parser.addUnsigned("count", 7, "a count");
  Parser.addDouble("ratio", 0.5, "a ratio");
  Parser.addFlag("verbose", "talk more");
  const char *Argv[] = {"tool"};
  ASSERT_TRUE(Parser.parse(1, Argv));
  EXPECT_EQ(Parser.getString("name"), "alpha");
  EXPECT_EQ(Parser.getUnsigned("count"), 7u);
  EXPECT_DOUBLE_EQ(Parser.getDouble("ratio"), 0.5);
  EXPECT_FALSE(Parser.getFlag("verbose"));
}

TEST(OptionParserTest, EqualsAndSpaceForms) {
  OptionParser Parser("tool");
  Parser.addString("a", "", "");
  Parser.addUnsigned("b", 0, "");
  const char *Argv[] = {"tool", "--a=hello", "--b", "42"};
  ASSERT_TRUE(Parser.parse(4, Argv));
  EXPECT_EQ(Parser.getString("a"), "hello");
  EXPECT_EQ(Parser.getUnsigned("b"), 42u);
}

TEST(OptionParserTest, FlagPresenceSetsTrue) {
  OptionParser Parser("tool");
  Parser.addFlag("on", "");
  const char *Argv[] = {"tool", "--on"};
  ASSERT_TRUE(Parser.parse(2, Argv));
  EXPECT_TRUE(Parser.getFlag("on"));
}

TEST(OptionParserTest, UnknownOptionFails) {
  OptionParser Parser("tool");
  const char *Argv[] = {"tool", "--nope"};
  EXPECT_FALSE(Parser.parse(2, Argv));
}

TEST(OptionParserTest, HelpReturnsFalse) {
  OptionParser Parser("tool");
  const char *Argv[] = {"tool", "--help"};
  EXPECT_FALSE(Parser.parse(2, Argv));
}

TEST(OptionParserTest, MissingValueFails) {
  OptionParser Parser("tool");
  Parser.addString("x", "", "");
  const char *Argv[] = {"tool", "--x"};
  EXPECT_FALSE(Parser.parse(2, Argv));
}

TEST(OptionParserTest, UsageListsOptions) {
  OptionParser Parser("my tool");
  Parser.addString("alpha", "d", "the alpha option");
  std::string Usage = Parser.usage();
  EXPECT_NE(Usage.find("--alpha"), std::string::npos);
  EXPECT_NE(Usage.find("the alpha option"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Logging
//===----------------------------------------------------------------------===//

TEST(LoggingTest, LevelRoundTrip) {
  LogLevel Saved = logLevel();
  setLogLevel(LogLevel::Debug);
  EXPECT_EQ(logLevel(), LogLevel::Debug);
  setLogLevel(Saved);
}

//===----------------------------------------------------------------------===//
// Topology
//===----------------------------------------------------------------------===//

TEST(TopologyTest, ParseCpuListHandlesSysfsShapes) {
  std::vector<int> Cpus;
  ASSERT_TRUE(support::Topology::parseCpuList("0-3", Cpus));
  EXPECT_EQ(Cpus, (std::vector<int>{0, 1, 2, 3}));
  ASSERT_TRUE(support::Topology::parseCpuList("0-3,8,10-11", Cpus));
  EXPECT_EQ(Cpus, (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  ASSERT_TRUE(support::Topology::parseCpuList("5", Cpus));
  EXPECT_EQ(Cpus, (std::vector<int>{5}));
  // Offline nodes legitimately publish an empty cpulist.
  ASSERT_TRUE(support::Topology::parseCpuList("", Cpus));
  EXPECT_TRUE(Cpus.empty());
  // Overlapping ranges deduplicate, unordered input sorts.
  ASSERT_TRUE(support::Topology::parseCpuList("4,1-2,2-5", Cpus));
  EXPECT_EQ(Cpus, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(TopologyTest, ParseCpuListRejectsMalformedInput) {
  std::vector<int> Cpus;
  EXPECT_FALSE(support::Topology::parseCpuList("a", Cpus));
  EXPECT_FALSE(support::Topology::parseCpuList("1-", Cpus));
  EXPECT_FALSE(support::Topology::parseCpuList("3-1", Cpus));
  EXPECT_FALSE(support::Topology::parseCpuList("1,,2", Cpus));
  EXPECT_FALSE(support::Topology::parseCpuList("1,2,", Cpus));
  EXPECT_FALSE(support::Topology::parseCpuList("-3", Cpus));
  EXPECT_FALSE(support::Topology::parseCpuList("1 2", Cpus));
  // Implausibly large cpu ids are rejected rather than overflowed.
  EXPECT_FALSE(support::Topology::parseCpuList("99999999999", Cpus));
}

TEST(TopologyTest, SingleNodeOwnsEveryHardwareThread) {
  support::Topology T = support::Topology::singleNode(6);
  EXPECT_EQ(T.numNodes(), 1u);
  EXPECT_FALSE(T.multiNode());
  EXPECT_EQ(T.hardwareThreads(), 6u);
  EXPECT_EQ(T.nodeCpus(0).size(), 6u);
  EXPECT_TRUE(T.nodeCpus(1).empty()) << "out-of-range node must be empty";
  for (int C = 0; C < 6; ++C)
    EXPECT_EQ(T.nodeOfCpu(C), 0u);
  // Every shard of every total lands on the only node.
  for (uint32_t S = 0; S < 8; ++S)
    EXPECT_EQ(T.nodeOfShard(S, 8), 0u);
}

TEST(TopologyTest, DefaultConstructedIsMinimalSingleNode) {
  support::Topology T;
  EXPECT_EQ(T.numNodes(), 1u);
  EXPECT_FALSE(T.multiNode());
  EXPECT_GE(T.hardwareThreads(), 1u);
  EXPECT_EQ(T.nodeOfShard(3, 4), 0u);
}

TEST(TopologyTest, FromNodeCpusMapsCpusAndShards) {
  support::Topology T =
      support::Topology::fromNodeCpus({{0, 1}, {2, 3}, {4, 5}});
  EXPECT_EQ(T.numNodes(), 3u);
  EXPECT_TRUE(T.multiNode());
  EXPECT_EQ(T.nodeOfCpu(0), 0u);
  EXPECT_EQ(T.nodeOfCpu(3), 1u);
  EXPECT_EQ(T.nodeOfCpu(5), 2u);
  // Unknown cpus (hotplug holes, -1 from sched_getcpu) map to node 0.
  EXPECT_EQ(T.nodeOfCpu(-1), 0u);
  EXPECT_EQ(T.nodeOfCpu(99), 0u);
  // Block distribution: 6 shards over 3 nodes = 2 per node, in order.
  EXPECT_EQ(T.nodeOfShard(0, 6), 0u);
  EXPECT_EQ(T.nodeOfShard(1, 6), 0u);
  EXPECT_EQ(T.nodeOfShard(2, 6), 1u);
  EXPECT_EQ(T.nodeOfShard(3, 6), 1u);
  EXPECT_EQ(T.nodeOfShard(4, 6), 2u);
  EXPECT_EQ(T.nodeOfShard(5, 6), 2u);
  // Fewer shards than nodes still produces a total mapping, and
  // out-of-range shard ids clamp instead of reading past the node list.
  EXPECT_EQ(T.nodeOfShard(0, 2), 0u);
  EXPECT_LT(T.nodeOfShard(1, 2), 3u);
  EXPECT_LT(T.nodeOfShard(9, 2), 3u);
  EXPECT_EQ(T.nodeOfShard(0, 0), 0u);
}

TEST(TopologyTest, FromNodeCpusDropsMemoryOnlyNodesAndDegrades) {
  // Memory-only nodes (empty cpulist) get no shards; a layout that is
  // nothing but memory-only nodes degrades to single-node.
  support::Topology T = support::Topology::fromNodeCpus({{}, {0, 1}, {}});
  EXPECT_EQ(T.numNodes(), 1u);
  EXPECT_EQ(T.nodeCpus(0), (std::vector<int>{0, 1}));
  support::Topology Degraded = support::Topology::fromNodeCpus({{}, {}});
  EXPECT_EQ(Degraded.numNodes(), 1u);
  EXPECT_GE(Degraded.nodeCpus(0).size(), 1u);
}

TEST(TopologyTest, DetectSmokeProducesUsableLayout) {
  // Whatever this host looks like, the probe must yield a total layout:
  // at least one node, every node non-empty, hardwareThreads >= 1.
  bool Ok = true;
  support::Topology T = support::Topology::detect(&Ok);
  EXPECT_GE(T.numNodes(), 1u);
  EXPECT_GE(T.hardwareThreads(), 1u);
  for (uint32_t N = 0; N < T.numNodes(); ++N)
    EXPECT_FALSE(T.nodeCpus(N).empty()) << "node " << N;
  for (uint32_t S = 0; S < 16; ++S)
    EXPECT_LT(T.nodeOfShard(S, 16), T.numNodes());
}

TEST(TopologyTest, PinToNonexistentCpusFailsWithoutSideEffects) {
  // Mocked layouts may name cpus the host lacks; pinning is best-effort
  // and must simply report failure.
  EXPECT_FALSE(support::pinThreadToCpus({}));
  EXPECT_FALSE(support::pinThreadToCpus({-1}));
  // currentCpu is either unavailable (-1) or a real cpu id.
  EXPECT_GE(support::currentCpu(), -1);
}
