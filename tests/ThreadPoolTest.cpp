//===----------------------------------------------------------------------===//
// Unit tests for the migration thread pool.
//===----------------------------------------------------------------------===//

#include "mem/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <vector>

using namespace atmem::mem;

namespace {

TEST(ThreadPoolTest, AtLeastOneWorker) {
  ThreadPool Pool(0);
  EXPECT_GE(Pool.threadCount(), 1u);
}

TEST(ThreadPoolTest, RequestedWorkerCount) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.threadCount(), 4u);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Touched(1000);
  Pool.parallelFor(0, 1000, [&](uint64_t Begin, uint64_t End) {
    for (uint64_t I = Begin; I < End; ++I)
      ++Touched[I];
  });
  for (int I = 0; I < 1000; ++I)
    ASSERT_EQ(Touched[I].load(), 1) << "index " << I;
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool Pool(2);
  std::atomic<int> Calls{0};
  Pool.parallelFor(5, 5, [&](uint64_t, uint64_t) { ++Calls; });
  EXPECT_EQ(Calls.load(), 0);
}

TEST(ThreadPoolTest, RangeSmallerThanWorkers) {
  ThreadPool Pool(8);
  std::atomic<uint64_t> Sum{0};
  Pool.parallelFor(0, 3, [&](uint64_t Begin, uint64_t End) {
    for (uint64_t I = Begin; I < End; ++I)
      Sum += I + 1;
  });
  EXPECT_EQ(Sum.load(), 6u); // 1 + 2 + 3.
}

TEST(ThreadPoolTest, SlicesAreContiguousAndOrderedWithinSlice) {
  ThreadPool Pool(3);
  std::vector<int> Data(300, 0);
  Pool.parallelFor(0, 300, [&](uint64_t Begin, uint64_t End) {
    for (uint64_t I = Begin; I < End; ++I)
      Data[I] = static_cast<int>(I);
  });
  for (int I = 0; I < 300; ++I)
    ASSERT_EQ(Data[I], I);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool Pool(4);
  for (int Round = 0; Round < 50; ++Round) {
    std::atomic<uint64_t> Count{0};
    Pool.parallelFor(0, 64, [&](uint64_t Begin, uint64_t End) {
      Count += End - Begin;
    });
    ASSERT_EQ(Count.load(), 64u);
  }
}

TEST(ThreadPoolTest, ActuallyRunsConcurrently) {
  // Rendezvous: all four slices must be in flight at the same time for
  // any of them to finish (bounded by a timeout so scheduler hiccups fail
  // the expectation instead of hanging the suite).
  ThreadPool Pool(4);
  std::mutex Mutex;
  std::condition_variable AllArrived;
  int Arrived = 0;
  bool SawFullOverlap = false;
  Pool.parallelFor(0, 4, [&](uint64_t, uint64_t) {
    std::unique_lock<std::mutex> Lock(Mutex);
    if (++Arrived == 4)
      SawFullOverlap = true;
    AllArrived.notify_all();
    AllArrived.wait_for(Lock, std::chrono::seconds(5),
                        [&] { return Arrived == 4; });
  });
  EXPECT_TRUE(SawFullOverlap);
}

TEST(ThreadPoolTest, ThreadedCoversRangeExactlyOnce) {
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Touched(1000);
  Pool.parallelForThreaded(
      0, 1000, /*ChunkSize=*/64,
      [&](uint32_t ThreadIdx, uint64_t Begin, uint64_t End) {
        EXPECT_LT(ThreadIdx, Pool.threadCount());
        for (uint64_t I = Begin; I < End; ++I)
          ++Touched[I];
      });
  for (int I = 0; I < 1000; ++I)
    ASSERT_EQ(Touched[I].load(), 1) << "index " << I;
}

TEST(ThreadPoolTest, ThreadedEmptyRangeIsNoop) {
  ThreadPool Pool(2);
  std::atomic<int> Calls{0};
  Pool.parallelForThreaded(7, 7, 16,
                           [&](uint32_t, uint64_t, uint64_t) { ++Calls; });
  Pool.parallelForThreaded(9, 7, 16,
                           [&](uint32_t, uint64_t, uint64_t) { ++Calls; });
  EXPECT_EQ(Calls.load(), 0);
}

TEST(ThreadPoolTest, ThreadedRangeSmallerThanChunkIsOneChunk) {
  ThreadPool Pool(4);
  std::atomic<int> Calls{0};
  std::atomic<uint64_t> Sum{0};
  Pool.parallelForThreaded(10, 13, /*ChunkSize=*/100,
                           [&](uint32_t, uint64_t Begin, uint64_t End) {
                             ++Calls;
                             for (uint64_t I = Begin; I < End; ++I)
                               Sum += I;
                           });
  EXPECT_EQ(Calls.load(), 1);
  EXPECT_EQ(Sum.load(), 10u + 11 + 12);
}

TEST(ThreadPoolTest, ThreadedMoreWorkersThanItems) {
  // 8 workers, 3 single-item chunks: only 3 participants are enqueued and
  // every thread index stays below the participant cap.
  ThreadPool Pool(8);
  std::vector<std::atomic<int>> Touched(3);
  Pool.parallelForThreaded(0, 3, /*ChunkSize=*/1,
                           [&](uint32_t ThreadIdx, uint64_t Begin,
                               uint64_t End) {
                             EXPECT_LT(ThreadIdx, 3u);
                             for (uint64_t I = Begin; I < End; ++I)
                               ++Touched[I];
                           });
  for (int I = 0; I < 3; ++I)
    ASSERT_EQ(Touched[I].load(), 1) << "index " << I;
}

TEST(ThreadPoolTest, ThreadedDefaultChunkSizeCoversRange) {
  ThreadPool Pool(3);
  std::atomic<uint64_t> Count{0};
  Pool.parallelForThreaded(0, 12345, /*ChunkSize=*/0,
                           [&](uint32_t, uint64_t Begin, uint64_t End) {
                             Count += End - Begin;
                           });
  EXPECT_EQ(Count.load(), 12345u);
}

TEST(ThreadPoolTest, ThreadedChunksAlignToChunkSize) {
  // Dynamic scheduling still hands out fixed-size, contiguous, aligned
  // chunks; only the final chunk may be short.
  ThreadPool Pool(4);
  constexpr uint64_t ChunkSize = 32;
  std::mutex Mutex;
  std::vector<std::pair<uint64_t, uint64_t>> Chunks;
  Pool.parallelForThreaded(0, 1000, ChunkSize,
                           [&](uint32_t, uint64_t Begin, uint64_t End) {
                             std::lock_guard<std::mutex> Lock(Mutex);
                             Chunks.emplace_back(Begin, End);
                           });
  for (const auto &[Begin, End] : Chunks) {
    EXPECT_EQ(Begin % ChunkSize, 0u);
    EXPECT_TRUE(End == Begin + ChunkSize || End == 1000u);
  }
  EXPECT_EQ(Chunks.size(), (1000 + ChunkSize - 1) / ChunkSize);
}

TEST(ThreadPoolTest, LargeByteRangeSplits) {
  ThreadPool Pool(4);
  std::vector<uint8_t> Src(1 << 20, 0xAB);
  std::vector<uint8_t> Dst(1 << 20, 0);
  Pool.parallelFor(0, Src.size(), [&](uint64_t Begin, uint64_t End) {
    std::copy(Src.begin() + Begin, Src.begin() + End, Dst.begin() + Begin);
  });
  EXPECT_EQ(Src, Dst);
}

} // namespace
