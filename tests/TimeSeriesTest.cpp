//===----------------------------------------------------------------------===//
// Tests for the per-epoch time series (obs/TimeSeries.h): the enable
// gate, the JSONL and OpenMetrics serializers (every line must parse and
// every field must round-trip), the file writers and the exportIfConfigured
// hook, and the Runtime integration — one sample per optimize() call with
// the gauges a plot would be built from.
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "obs/Export.h"
#include "obs/Json.h"
#include "obs/Telemetry.h"
#include "obs/TimeSeries.h"
#include "sim/Machine.h"

#include <gtest/gtest.h>

#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

using namespace atmem;
using namespace atmem::obs;

namespace {

/// The sample store is process-wide like the metric registry: every test
/// starts and ends with it disabled and empty.
class TimeSeriesTest : public ::testing::Test {
protected:
  void SetUp() override {
    TimeSeries::instance().setEnabled(false);
    TimeSeries::instance().clear();
  }
  void TearDown() override {
    TimeSeries::instance().setEnabled(false);
    TimeSeries::instance().clear();
  }

  static std::string tempPath(const char *Name) {
    return ::testing::TempDir() + Name;
  }
};

EpochSample sampleOne() {
  EpochSample S;
  S.Epoch = 1;
  S.Accesses = 1000;
  S.MissesFast = 40;
  S.MissesSlow = 120;
  S.SlowMissFraction = 0.75;
  S.DrainMissesPerSec = 1.5e6;
  S.MigrationBytes = 1 << 20;
  S.MigrationRanges = 3;
  S.Retries = 1;
  S.Rollbacks = 0;
  S.MigrateSimSec = 0.0125;
  S.LookaheadStaged = 2;
  S.LookaheadCancelled = 1;
  S.LookaheadOverlapSec = 0.5;
  S.FastDataRatio = 0.25;
  S.OptimizeWallUs = 842.0;
  return S;
}

std::vector<std::string> splitLines(const std::string &Text) {
  std::vector<std::string> Lines;
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line))
    if (!Line.empty())
      Lines.push_back(Line);
  return Lines;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

double number(const JsonValue &Doc, const char *Key) {
  const JsonValue *V = Doc.findNumber(Key);
  EXPECT_NE(V, nullptr) << Key;
  return V ? V->NumberVal : -1.0;
}

//===----------------------------------------------------------------------===//
// Store semantics
//===----------------------------------------------------------------------===//

TEST_F(TimeSeriesTest, DisabledRecordIsDropped) {
  ASSERT_FALSE(TimeSeries::instance().enabled());
  TimeSeries::instance().record(sampleOne());
  EXPECT_TRUE(TimeSeries::instance().snapshot().empty());
}

TEST_F(TimeSeriesTest, EnabledRecordAccumulatesInOrder) {
  TimeSeries::instance().setEnabled(true);
  EpochSample S = sampleOne();
  TimeSeries::instance().record(S);
  S.Epoch = 2;
  S.Accesses = 2000;
  TimeSeries::instance().record(S);

  std::vector<EpochSample> Samples = TimeSeries::instance().snapshot();
  ASSERT_EQ(Samples.size(), 2u);
  EXPECT_EQ(Samples[0].Epoch, 1u);
  EXPECT_EQ(Samples[1].Epoch, 2u);
  EXPECT_EQ(Samples[1].Accesses, 2000u);

  TimeSeries::instance().clear();
  EXPECT_TRUE(TimeSeries::instance().snapshot().empty());
}

//===----------------------------------------------------------------------===//
// Serializers
//===----------------------------------------------------------------------===//

TEST_F(TimeSeriesTest, JsonlEveryLineParsesAndFieldsRoundTrip) {
  EpochSample S = sampleOne();
  EpochSample S2 = S;
  S2.Epoch = 2;
  S2.SlowMissFraction = 0.125;
  std::vector<std::string> Lines = splitLines(timeSeriesJsonl({S, S2}));
  ASSERT_EQ(Lines.size(), 3u); // Header + one line per epoch.

  JsonValue Header;
  std::string Error;
  ASSERT_TRUE(parseJson(Lines[0], Header, &Error)) << Error;
  const JsonValue *Schema = Header.findString("schema");
  ASSERT_NE(Schema, nullptr);
  EXPECT_EQ(Schema->StringVal, "atmem-timeseries-v1");
  EXPECT_EQ(number(Header, "epochs"), 2.0);

  JsonValue Doc;
  ASSERT_TRUE(parseJson(Lines[1], Doc, &Error)) << Error;
  EXPECT_EQ(number(Doc, "epoch"), 1.0);
  EXPECT_EQ(number(Doc, "accesses"), 1000.0);
  EXPECT_EQ(number(Doc, "misses_fast"), 40.0);
  EXPECT_EQ(number(Doc, "misses_slow"), 120.0);
  EXPECT_DOUBLE_EQ(number(Doc, "slow_miss_fraction"), 0.75);
  EXPECT_DOUBLE_EQ(number(Doc, "drain_misses_per_sec"), 1.5e6);
  EXPECT_EQ(number(Doc, "migration_bytes"), 1048576.0);
  EXPECT_EQ(number(Doc, "migration_ranges"), 3.0);
  EXPECT_EQ(number(Doc, "retries"), 1.0);
  EXPECT_EQ(number(Doc, "rollbacks"), 0.0);
  EXPECT_DOUBLE_EQ(number(Doc, "migrate_sim_sec"), 0.0125);
  EXPECT_EQ(number(Doc, "lookahead_staged"), 2.0);
  EXPECT_EQ(number(Doc, "lookahead_cancelled"), 1.0);
  EXPECT_DOUBLE_EQ(number(Doc, "lookahead_overlap_sec"), 0.5);
  EXPECT_DOUBLE_EQ(number(Doc, "fast_data_ratio"), 0.25);
  EXPECT_DOUBLE_EQ(number(Doc, "optimize_wall_us"), 842.0);

  JsonValue Doc2;
  ASSERT_TRUE(parseJson(Lines[2], Doc2, &Error)) << Error;
  EXPECT_EQ(number(Doc2, "epoch"), 2.0);
  EXPECT_DOUBLE_EQ(number(Doc2, "slow_miss_fraction"), 0.125);
}

TEST_F(TimeSeriesTest, OpenMetricsLabelsEveryEpochAndTerminates) {
  EpochSample S = sampleOne();
  EpochSample S2 = S;
  S2.Epoch = 2;
  std::string Text = timeSeriesOpenMetrics({S, S2});

  EXPECT_NE(Text.find("# TYPE atmem_epoch_slow_miss_fraction gauge\n"),
            std::string::npos);
  EXPECT_NE(Text.find("atmem_epoch_slow_miss_fraction{epoch=\"1\"} 0.75\n"),
            std::string::npos);
  EXPECT_NE(Text.find("atmem_epoch_slow_miss_fraction{epoch=\"2\"} 0.75\n"),
            std::string::npos);
  EXPECT_NE(Text.find("atmem_epoch_accesses{epoch=\"1\"} 1000\n"),
            std::string::npos);
  EXPECT_NE(Text.find("atmem_epoch_optimize_wall_us{epoch=\"1\"} 842\n"),
            std::string::npos);
  // The OpenMetrics spec requires the EOF marker as the last line.
  ASSERT_GE(Text.size(), 6u);
  EXPECT_EQ(Text.substr(Text.size() - 6), "# EOF\n");
}

//===----------------------------------------------------------------------===//
// Serializer edge cases
//===----------------------------------------------------------------------===//

TEST_F(TimeSeriesTest, EmptySeriesSerializesAndParses) {
  std::string Jsonl = timeSeriesJsonl({});
  std::vector<std::string> Lines = splitLines(Jsonl);
  ASSERT_EQ(Lines.size(), 1u); // Header only.
  EXPECT_NE(Lines[0].find("\"epochs\":0"), std::string::npos);

  std::vector<EpochSample> Parsed;
  std::string Error;
  ASSERT_TRUE(parseTimeSeriesJsonl(Jsonl, Parsed, &Error)) << Error;
  EXPECT_TRUE(Parsed.empty());

  // Every family still emits its TYPE line, and the terminator stands.
  std::string Om = timeSeriesOpenMetrics({});
  EXPECT_NE(Om.find("# TYPE atmem_epoch_accesses gauge\n"),
            std::string::npos);
  EXPECT_EQ(Om.substr(Om.size() - 6), "# EOF\n");
}

TEST_F(TimeSeriesTest, SingleEpochRoundTrips) {
  std::vector<EpochSample> Parsed;
  std::string Error;
  ASSERT_TRUE(
      parseTimeSeriesJsonl(timeSeriesJsonl({sampleOne()}), Parsed, &Error))
      << Error;
  ASSERT_EQ(Parsed.size(), 1u);
  EXPECT_EQ(Parsed[0].Epoch, 1u);
  EXPECT_EQ(Parsed[0].Accesses, 1000u);
  EXPECT_DOUBLE_EQ(Parsed[0].SlowMissFraction, 0.75);
  EXPECT_DOUBLE_EQ(Parsed[0].OptimizeWallUs, 842.0);
}

TEST_F(TimeSeriesTest, NonFiniteRatioFieldsSerializeAsZero) {
  EpochSample S = sampleOne();
  S.SlowMissFraction = std::numeric_limits<double>::quiet_NaN();
  S.DrainMissesPerSec = std::numeric_limits<double>::infinity();
  S.FastDataRatio = -std::numeric_limits<double>::infinity();

  std::vector<std::string> Lines = splitLines(timeSeriesJsonl({S}));
  ASSERT_EQ(Lines.size(), 2u);
  JsonValue Doc;
  std::string Error;
  ASSERT_TRUE(parseJson(Lines[1], Doc, &Error)) << Error;
  EXPECT_DOUBLE_EQ(number(Doc, "slow_miss_fraction"), 0.0);
  EXPECT_DOUBLE_EQ(number(Doc, "drain_misses_per_sec"), 0.0);
  EXPECT_DOUBLE_EQ(number(Doc, "fast_data_ratio"), 0.0);

  // The OpenMetrics exposition must stay numeric too — no "nan"/"inf".
  std::string Om = timeSeriesOpenMetrics({S});
  EXPECT_EQ(Om.find("nan"), std::string::npos);
  EXPECT_EQ(Om.find("inf"), std::string::npos);
  EXPECT_NE(Om.find("atmem_epoch_slow_miss_fraction{epoch=\"1\"} 0\n"),
            std::string::npos);
}

TEST_F(TimeSeriesTest, IterationWallUsSerializesAndDefaultsWhenAbsent) {
  EpochSample S = sampleOne();
  S.IterationWallUs = 1234.5;
  std::vector<EpochSample> Parsed;
  std::string Error;
  ASSERT_TRUE(parseTimeSeriesJsonl(timeSeriesJsonl({S}), Parsed, &Error))
      << Error;
  ASSERT_EQ(Parsed.size(), 1u);
  EXPECT_DOUBLE_EQ(Parsed[0].IterationWallUs, 1234.5);

  // Logs written before the field existed still load, defaulting to 0.
  std::string Old = "{\"schema\":\"atmem-timeseries-v1\",\"epochs\":1}\n"
                    "{\"epoch\":1,\"accesses\":10}\n";
  Parsed.clear();
  ASSERT_TRUE(parseTimeSeriesJsonl(Old, Parsed, &Error)) << Error;
  ASSERT_EQ(Parsed.size(), 1u);
  EXPECT_DOUBLE_EQ(Parsed[0].IterationWallUs, 0.0);
  EXPECT_EQ(Parsed[0].Accesses, 10u);
}

TEST_F(TimeSeriesTest, ParseRejectsMissingHeaderAndBadLines) {
  std::vector<EpochSample> Parsed;
  std::string Error;
  EXPECT_FALSE(parseTimeSeriesJsonl("", Parsed, &Error));
  EXPECT_FALSE(
      parseTimeSeriesJsonl("{\"epoch\":1}\n", Parsed, &Error));
  EXPECT_FALSE(parseTimeSeriesJsonl(
      "{\"schema\":\"atmem-timeseries-v1\",\"epochs\":1}\nnot json\n",
      Parsed, &Error));
  EXPECT_FALSE(parseTimeSeriesJsonl(
      "{\"schema\":\"atmem-timeseries-v1\",\"epochs\":1}\n"
      "{\"accesses\":5}\n",
      Parsed, &Error)); // An epoch line without "epoch".
}

TEST_F(TimeSeriesTest, OpenMetricsLabelEscaping) {
  EXPECT_EQ(openMetricsEscapeLabel("plain"), "plain");
  EXPECT_EQ(openMetricsEscapeLabel("a\\b"), "a\\\\b");
  EXPECT_EQ(openMetricsEscapeLabel("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(openMetricsEscapeLabel("two\nlines"), "two\\nlines");

  std::string Om = timeSeriesOpenMetrics({sampleOne()}, "run \"a\"\n1");
  EXPECT_NE(Om.find("atmem_epoch_accesses{run=\"run \\\"a\\\"\\n1\","
                    "epoch=\"1\"} 1000\n"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// File writers and the export hook
//===----------------------------------------------------------------------===//

TEST_F(TimeSeriesTest, WritersEmitTheRecordedSeries) {
  TimeSeries::instance().setEnabled(true);
  TimeSeries::instance().record(sampleOne());

  std::string Jsonl = tempPath("timeseries.jsonl");
  std::string Metrics = tempPath("timeseries.om");
  std::string Error;
  ASSERT_TRUE(writeTimeSeriesJsonl(Jsonl, &Error)) << Error;
  ASSERT_TRUE(writeTimeSeriesOpenMetrics(Metrics, &Error)) << Error;

  EXPECT_EQ(readFile(Jsonl),
            timeSeriesJsonl(TimeSeries::instance().snapshot()));
  EXPECT_EQ(readFile(Metrics),
            timeSeriesOpenMetrics(TimeSeries::instance().snapshot()));
}

TEST_F(TimeSeriesTest, ExportIfConfiguredWritesBothFormats) {
  TimeSeries::instance().setEnabled(true);
  TimeSeries::instance().record(sampleOne());

  TelemetryConfig Config;
  Config.TimeSeriesPath = tempPath("ts_export.jsonl");
  Config.OpenMetricsPath = tempPath("ts_export.om");
  ASSERT_TRUE(exportIfConfigured(Config));

  std::vector<std::string> Lines = splitLines(readFile(Config.TimeSeriesPath));
  ASSERT_EQ(Lines.size(), 2u);
  EXPECT_NE(Lines[0].find("atmem-timeseries-v1"), std::string::npos);
  std::string Metrics = readFile(Config.OpenMetricsPath);
  EXPECT_NE(Metrics.find("# TYPE atmem_epoch_accesses gauge"),
            std::string::npos);
  EXPECT_NE(Metrics.find("# EOF"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Runtime integration: one sample per optimize()
//===----------------------------------------------------------------------===//

TEST_F(TimeSeriesTest, RuntimeCapturesOneSamplePerOptimize) {
  TimeSeries::instance().setEnabled(true);

  core::RuntimeConfig Config;
  Config.Machine = sim::nvmDramTestbed(1.0 / 1024);
  core::Runtime Rt(Config);
  core::TrackedArray<uint64_t> Hot = Rt.allocate<uint64_t>("hot", 1 << 16);

  for (int Epoch = 0; Epoch < 2; ++Epoch) {
    Rt.profilingStart();
    Rt.beginIteration();
    uint64_t State = 9001;
    for (int I = 0; I < 50000; ++I) {
      State = State * 6364136223846793005ull + 1442695040888963407ull;
      Hot[(State >> 33) & ((1 << 16) - 1)] += 1;
    }
    Rt.endIteration();
    Rt.profilingStop();
    Rt.optimize();
  }

  std::vector<EpochSample> Samples = TimeSeries::instance().snapshot();
  ASSERT_EQ(Samples.size(), 2u);
  EXPECT_EQ(Samples[0].Epoch, 1u);
  EXPECT_EQ(Samples[1].Epoch, 2u);
  // The first epoch saw a cold slow tier: accesses flowed, every tier
  // miss was slow, and the optimize pass took measurable wall time.
  EXPECT_GT(Samples[0].Accesses, 0u);
  EXPECT_GT(Samples[0].MissesSlow, 0u);
  EXPECT_DOUBLE_EQ(Samples[0].SlowMissFraction, 1.0);
  EXPECT_GT(Samples[0].OptimizeWallUs, 0.0);
  // It also migrated the hot object toward the fast tier, which the
  // second sample's placement gauge must reflect.
  EXPECT_GT(Samples[0].MigrationBytes, 0u);
  EXPECT_GT(Samples[0].MigrationRanges, 0u);
  EXPECT_GT(Samples[1].FastDataRatio, 0.0);
  EXPECT_LE(Samples[1].FastDataRatio, 1.0);
}

TEST_F(TimeSeriesTest, RuntimeSkipsCaptureWhenDisabled) {
  ASSERT_FALSE(TimeSeries::instance().enabled());

  core::RuntimeConfig Config;
  Config.Machine = sim::nvmDramTestbed(1.0 / 1024);
  core::Runtime Rt(Config);
  core::TrackedArray<uint64_t> Arr = Rt.allocate<uint64_t>("v", 1 << 14);

  Rt.profilingStart();
  Rt.beginIteration();
  for (size_t I = 0; I < Arr.size(); ++I)
    Arr[I] = I;
  Rt.endIteration();
  Rt.profilingStop();
  Rt.optimize();

  EXPECT_TRUE(TimeSeries::instance().snapshot().empty());
}

} // namespace
