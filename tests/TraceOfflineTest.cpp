//===----------------------------------------------------------------------===//
// Tests for the trace-recording subsystem, the offline (full-information)
// profiler, binary CSR serialization, and the interleaved placement
// policy.
//===----------------------------------------------------------------------===//

#include "analyzer/Analyzer.h"
#include "baseline/Experiment.h"
#include "core/Runtime.h"
#include "graph/CsrBinaryIO.h"
#include "graph/Generators.h"
#include "profiler/OfflineProfiler.h"
#include "profiler/TraceFile.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace atmem;

namespace {

std::string tempPath(const char *Name) {
  return testing::TempDir() + Name;
}

//===----------------------------------------------------------------------===//
// TraceFile
//===----------------------------------------------------------------------===//

TEST(TraceFileTest, WriteReadRoundTrip) {
  std::string Path = tempPath("trace_roundtrip.bin");
  prof::TraceWriter Writer;
  ASSERT_TRUE(Writer.open(Path));
  for (uint64_t I = 0; I < 1000; ++I)
    Writer.record(I * 64);
  EXPECT_EQ(Writer.eventCount(), 1000u);
  ASSERT_TRUE(Writer.finish());

  prof::TraceReader Reader;
  ASSERT_TRUE(Reader.open(Path));
  EXPECT_EQ(Reader.eventCount(), 1000u);
  uint64_t Next = 0;
  ASSERT_TRUE(Reader.forEach([&](uint64_t Va) {
    EXPECT_EQ(Va, Next * 64);
    ++Next;
  }));
  EXPECT_EQ(Next, 1000u);
  std::remove(Path.c_str());
}

TEST(TraceFileTest, LargeTraceCrossesFlushBoundaries) {
  std::string Path = tempPath("trace_large.bin");
  prof::TraceWriter Writer;
  ASSERT_TRUE(Writer.open(Path));
  constexpr uint64_t N = 200000; // Exceeds the 64K flush threshold.
  for (uint64_t I = 0; I < N; ++I)
    Writer.record(I);
  ASSERT_TRUE(Writer.finish());
  prof::TraceReader Reader;
  ASSERT_TRUE(Reader.open(Path));
  uint64_t Count = 0;
  ASSERT_TRUE(Reader.forEach([&](uint64_t) { ++Count; }));
  EXPECT_EQ(Count, N);
  std::remove(Path.c_str());
}

TEST(TraceFileTest, MissingFileFailsToOpen) {
  prof::TraceReader Reader;
  EXPECT_FALSE(Reader.open("/nonexistent/trace.bin"));
}

TEST(TraceFileTest, BadMagicRejected) {
  std::string Path = tempPath("trace_badmagic.bin");
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(File, nullptr);
  uint64_t Junk[4] = {0xdeadbeef, 0, 0, 0};
  std::fwrite(Junk, sizeof(Junk), 1, File);
  std::fclose(File);
  prof::TraceReader Reader;
  EXPECT_FALSE(Reader.open(Path));
  std::remove(Path.c_str());
}

TEST(TraceFileTest, TruncatedFileDetected) {
  std::string Path = tempPath("trace_trunc.bin");
  prof::TraceWriter Writer;
  ASSERT_TRUE(Writer.open(Path));
  for (uint64_t I = 0; I < 100; ++I)
    Writer.record(I);
  ASSERT_TRUE(Writer.finish());
  // Chop off the last 40 bytes.
  std::FILE *File = std::fopen(Path.c_str(), "rb+");
  ASSERT_NE(File, nullptr);
  std::fseek(File, 0, SEEK_END);
  long Size = std::ftell(File);
  std::fclose(File);
  ASSERT_EQ(truncate(Path.c_str(), Size - 40), 0);

  prof::TraceReader Reader;
  ASSERT_TRUE(Reader.open(Path));
  uint64_t Count = 0;
  EXPECT_FALSE(Reader.forEach([&](uint64_t) { ++Count; }));
  EXPECT_LT(Count, 100u);
  std::remove(Path.c_str());
}

TEST(TraceFileTest, RecordWithoutOpenIsNoop) {
  prof::TraceWriter Writer;
  Writer.record(42);
  EXPECT_EQ(Writer.eventCount(), 0u);
  EXPECT_FALSE(Writer.finish());
}

//===----------------------------------------------------------------------===//
// OfflineProfiler
//===----------------------------------------------------------------------===//

class OfflineProfilerTest : public ::testing::Test {
protected:
  OfflineProfilerTest()
      : M(sim::nvmDramTestbed(1.0 / 1024)), Registry(M) {}

  sim::Machine M;
  mem::DataObjectRegistry Registry;
};

TEST_F(OfflineProfilerTest, ExactCounts) {
  mem::DataObject &Obj =
      Registry.create("a", 1 << 20, mem::InitialPlacement::Slow, 65536);
  prof::OfflineProfiler Offline(Registry);
  for (int I = 0; I < 100; ++I)
    Offline.notifyMiss(Obj.va());
  for (int I = 0; I < 37; ++I)
    Offline.notifyMiss(Obj.va() + 65536);
  EXPECT_EQ(Offline.missCount(), 137u);
  prof::ObjectProfile Profile = Offline.profileFor(Obj.id());
  EXPECT_DOUBLE_EQ(Profile.EstimatedMisses[0], 100.0);
  EXPECT_DOUBLE_EQ(Profile.EstimatedMisses[1], 37.0);
  EXPECT_EQ(Offline.period(), 1u);
}

TEST_F(OfflineProfilerTest, LoadTraceAccumulates) {
  mem::DataObject &Obj =
      Registry.create("a", 1 << 20, mem::InitialPlacement::Slow, 65536);
  std::string Path = tempPath("offline_trace.bin");
  prof::TraceWriter Writer;
  ASSERT_TRUE(Writer.open(Path));
  for (int I = 0; I < 500; ++I)
    Writer.record(Obj.va() + (I % 4) * 65536);
  ASSERT_TRUE(Writer.finish());

  prof::OfflineProfiler Offline(Registry);
  ASSERT_TRUE(Offline.loadTrace(Path));
  prof::ObjectProfile Profile = Offline.profileFor(Obj.id());
  EXPECT_DOUBLE_EQ(Profile.EstimatedMisses[0], 125.0);
  EXPECT_DOUBLE_EQ(Profile.EstimatedMisses[3], 125.0);
  std::remove(Path.c_str());
}

TEST_F(OfflineProfilerTest, WorksAsAnalyzerSource) {
  mem::DataObject &Obj =
      Registry.create("a", 1 << 20, mem::InitialPlacement::Slow, 65536);
  prof::OfflineProfiler Offline(Registry);
  // A hot head: chunk 0 gets 100x the misses of the rest.
  for (int I = 0; I < 10000; ++I)
    Offline.notifyMiss(Obj.va());
  for (uint32_t C = 1; C < Obj.numChunks(); ++C)
    for (int I = 0; I < 100; ++I)
      Offline.notifyMiss(Obj.va() + static_cast<uint64_t>(C) * 65536);
  analyzer::Analyzer Anal;
  auto Classes = Anal.classify(Registry, Offline);
  ASSERT_EQ(Classes.size(), 1u);
  EXPECT_TRUE(Classes[0].Local.Critical[0]);
}

/// The headline property: an offline (full-information) placement and the
/// sampled+patched ATMem placement select strongly overlapping chunk
/// sets, quantifying that the tree promotion recovers most of what
/// sampling misses (paper Objective II).
TEST_F(OfflineProfilerTest, SampledPlacementApproximatesOfflinePlacement) {
  core::RuntimeConfig Config;
  Config.Machine = sim::nvmDramTestbed(1.0 / 1024);
  core::Runtime Rt(Config);
  auto Hot = Rt.allocate<uint64_t>("hot", 1 << 15);
  auto Cold = Rt.allocate<uint64_t>("cold", 1 << 18);

  prof::OfflineProfiler Offline(Rt.registry());
  std::string Path = tempPath("objective2_trace.bin");
  prof::TraceWriter Writer;
  ASSERT_TRUE(Writer.open(Path));
  Rt.setMissTrace(&Writer);
  Rt.profilingStart();
  Rt.beginIteration();
  uint64_t State = 9;
  for (int I = 0; I < 400000; ++I) {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    Hot[(State >> 33) & ((1 << 15) - 1)] += 1;
    if (I % 8 == 0)
      Cold[(State >> 20) & ((1 << 18) - 1)] += 1;
  }
  Rt.endIteration();
  Rt.profilingStop();
  Rt.setMissTrace(nullptr);
  ASSERT_TRUE(Writer.finish());
  ASSERT_TRUE(Offline.loadTrace(Path));

  analyzer::Analyzer Anal;
  auto Sampled = Anal.classify(Rt.registry(), Rt.profiler());
  auto Exact = Anal.classify(Rt.registry(), Offline);

  // Placement quality = fraction of the *true* (offline-counted) misses
  // covered by the selected chunks. Individual marginal chunks may
  // differ between the sources (sampling noise reorders the near-ties),
  // but the sampled placement must capture nearly as much real traffic
  // as the full-information one (Objective II).
  auto coverage = [&](const std::vector<analyzer::ObjectClassification>
                          &Classes) {
    double Covered = 0.0, Total = 0.0;
    for (const auto &Class : Classes) {
      prof::ObjectProfile Truth = Offline.profileFor(Class.Object);
      for (uint32_t C = 0; C < Class.numChunks(); ++C) {
        Total += Truth.EstimatedMisses[C];
        if (Class.isSelected(C))
          Covered += Truth.EstimatedMisses[C];
      }
    }
    return Total == 0.0 ? 0.0 : Covered / Total;
  };
  double SampledCoverage = coverage(Sampled);
  double ExactCoverage = coverage(Exact);
  EXPECT_GT(ExactCoverage, 0.5);
  EXPECT_GT(SampledCoverage, 0.8 * ExactCoverage);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Binary CSR IO
//===----------------------------------------------------------------------===//

TEST(CsrBinaryIOTest, RoundTripUnweighted) {
  graph::PowerLawParams Params;
  Params.NumVertices = 2000;
  Params.AverageDegree = 8;
  graph::CsrGraph G = graph::generatePowerLaw(Params);
  std::string Path = tempPath("csr_roundtrip.bin");
  ASSERT_TRUE(graph::writeCsrBinary(G, Path));
  auto Loaded = graph::readCsrBinary(Path);
  ASSERT_TRUE(Loaded.has_value());
  EXPECT_EQ(Loaded->rowOffsets(), G.rowOffsets());
  EXPECT_EQ(Loaded->cols(), G.cols());
  EXPECT_FALSE(Loaded->hasWeights());
  std::remove(Path.c_str());
}

TEST(CsrBinaryIOTest, RoundTripWeighted) {
  graph::CsrGraph G = graph::buildCsr(4, {{0, 1}, {1, 2}, {2, 3}});
  G = graph::withRandomWeights(G, 100, 3);
  std::string Path = tempPath("csr_weighted.bin");
  ASSERT_TRUE(graph::writeCsrBinary(G, Path));
  auto Loaded = graph::readCsrBinary(Path);
  ASSERT_TRUE(Loaded.has_value());
  EXPECT_EQ(Loaded->weights(), G.weights());
  std::remove(Path.c_str());
}

TEST(CsrBinaryIOTest, CorruptionDetected) {
  graph::CsrGraph G = graph::buildCsr(8, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  std::string Path = tempPath("csr_corrupt.bin");
  ASSERT_TRUE(graph::writeCsrBinary(G, Path));
  // Flip a payload byte past the header.
  std::FILE *File = std::fopen(Path.c_str(), "rb+");
  ASSERT_NE(File, nullptr);
  std::fseek(File, sizeof(graph::CsrBinaryHeader) + 12, SEEK_SET);
  std::fputc(0x5A, File);
  std::fclose(File);
  EXPECT_FALSE(graph::readCsrBinary(Path).has_value());
  std::remove(Path.c_str());
}

TEST(CsrBinaryIOTest, BadMagicRejected) {
  std::string Path = tempPath("csr_badmagic.bin");
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(File, nullptr);
  const char Junk[64] = "not a csr file";
  std::fwrite(Junk, sizeof(Junk), 1, File);
  std::fclose(File);
  EXPECT_FALSE(graph::readCsrBinary(Path).has_value());
  std::remove(Path.c_str());
}

TEST(CsrBinaryIOTest, MissingFileFails) {
  EXPECT_FALSE(graph::readCsrBinary("/nonexistent/graph.csr").has_value());
}

TEST(CsrBinaryIOTest, DigestIsOrderSensitive) {
  uint64_t A = graph::fnv1aDigest("ab", 2);
  uint64_t B = graph::fnv1aDigest("ba", 2);
  EXPECT_NE(A, B);
  EXPECT_EQ(graph::fnv1aDigest("ab", 2), A);
}

//===----------------------------------------------------------------------===//
// Interleaved placement
//===----------------------------------------------------------------------===//

TEST(InterleavedPlacementTest, SplitsPagesRoughlyEvenly) {
  sim::Machine M(sim::nvmDramTestbed(1.0 / 1024));
  mem::DataObjectRegistry Registry(M);
  mem::DataObject &Obj =
      Registry.create("a", 16 << 20, mem::InitialPlacement::Interleaved);
  double FastFraction =
      static_cast<double>(M.pageTable().mappedBytesOn(sim::TierId::Fast)) /
      static_cast<double>(Obj.mappedBytes());
  EXPECT_NEAR(FastFraction, 0.5, 0.05);
}

TEST(InterleavedPlacementTest, FallsBackWhenOneTierFills) {
  // Fast tier holds only 2 MiB; an 8 MiB interleaved region must still
  // map fully, overflowing onto the slow tier.
  sim::FrameAllocator Fast(sim::TierId::Fast, 2ull << 20);
  sim::FrameAllocator Slow(sim::TierId::Slow, 64ull << 20);
  sim::PageTable PT(Fast, Slow);
  uint64_t Va = 0x100000000000ull;
  uint64_t OnFast = PT.mapRegionInterleaved(Va, 8ull << 20, true);
  EXPECT_EQ(OnFast, 2ull << 20);
  EXPECT_EQ(PT.mappedBytesOn(sim::TierId::Fast) +
                PT.mappedBytesOn(sim::TierId::Slow),
            8ull << 20);
}

TEST(InterleavedPlacementTest, PolicyNameRegistered) {
  EXPECT_STREQ(baseline::policyName(baseline::Policy::Interleaved),
               "interleaved");
  EXPECT_FALSE(baseline::policyUsesAtmem(baseline::Policy::Interleaved));
}

TEST(InterleavedPlacementTest, ExperimentRunsUnderInterleave) {
  graph::PowerLawParams Params;
  Params.NumVertices = 4000;
  Params.AverageDegree = 8;
  graph::CsrGraph G = graph::generatePowerLaw(Params);
  baseline::RunConfig Config;
  Config.KernelName = "bfs";
  Config.Graph = &G;
  Config.Machine = sim::nvmDramTestbed(1.0 / 1024);
  Config.PolicyKind = baseline::Policy::Interleaved;
  baseline::RunResult Result = baseline::runExperiment(Config);
  EXPECT_GT(Result.FastDataRatio, 0.3);
  EXPECT_LT(Result.FastDataRatio, 0.7);
  EXPECT_GT(Result.MeasuredIterSec, 0.0);
}

} // namespace
