//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// atmem_doctor: post-hoc placement-health triage. Feeds any combination
/// of run artifacts — per-epoch time-series JSONL, metrics snapshot,
/// atdl/atdr decision log, health event log — through the same streaming
/// detectors the runtime runs live (obs/Health.h), then renders a triage
/// report that cross-links every finding to its offending epochs and,
/// when a decision log is present, to the why-chain of an implicated
/// chunk (obs/DecisionExplain.h).
///
/// Benchmark batches run several runtimes in one process, so a
/// time-series file may contain several runs back to back: the epoch
/// counter resetting to 1 starts a new segment, and each segment is
/// replayed independently. Decision-log epochs are process-wide and
/// monotonic, so segments align to the log positionally via cumulative
/// epoch offsets.
///
/// Exit codes: 0 healthy, 4 warning findings, 5 critical findings,
/// 2 usage error, 1 unreadable/invalid input.
///
/// Examples:
///   atmem_doctor --timeseries run.jsonl
///   atmem_doctor --timeseries run.jsonl --decision-log run.atdl
///   atmem_doctor --metrics m.json --health-log run.health.jsonl --json
///
//===----------------------------------------------------------------------===//

#include "obs/DecisionExplain.h"
#include "obs/DecisionLog.h"
#include "obs/Export.h"
#include "obs/Health.h"
#include "obs/Json.h"
#include "obs/RingLog.h"
#include "obs/TimeSeries.h"
#include "support/Options.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

using namespace atmem;

namespace {

enum ExitCodes {
  ExitHealthy = 0,
  ExitInvalid = 1,
  ExitUsage = 2,
  ExitWarning = 4,
  ExitCritical = 5,
};

/// One triage finding: a detector event lifted to report form, stamped
/// with the process-wide (decision-log) epoch and its run segment.
struct Finding {
  obs::HealthSeverity Severity = obs::HealthSeverity::Info;
  obs::HealthDetector Detector = obs::HealthDetector::SlowMissRegression;
  uint64_t Segment = 0;     ///< 1-based run segment in the time series.
  uint64_t Epoch = 0;       ///< Epoch within the segment (1-based).
  uint64_t GlobalEpoch = 0; ///< Segment base + Epoch (decision-log epoch).
  double Value = 0.0;
  double Threshold = 0.0;
  std::string Detail;
  std::string Source;   ///< Which artifact produced it.
  std::string WhyChain; ///< Decision-log causal chain ("" when unlinked).
};

std::string readFileToString(const std::string &Path, std::string *Error) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    if (Error)
      *Error = "cannot open '" + Path + "'";
    return "";
  }
  std::string Out;
  char Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
    Out.append(Buf, N);
  bool Bad = std::ferror(File) != 0;
  std::fclose(File);
  if (Bad) {
    if (Error)
      *Error = "read failure on '" + Path + "'";
    return "";
  }
  return Out;
}

/// Splits \p Samples into per-run segments: a sample whose epoch does not
/// exceed its predecessor's starts a new runtime's series.
std::vector<std::vector<obs::EpochSample>>
segmentSamples(const std::vector<obs::EpochSample> &Samples) {
  std::vector<std::vector<obs::EpochSample>> Segments;
  for (const obs::EpochSample &S : Samples) {
    if (Segments.empty() || (!Segments.back().empty() &&
                             S.Epoch <= Segments.back().back().Epoch))
      Segments.emplace_back();
    Segments.back().push_back(S);
  }
  return Segments;
}

/// Object-id -> interned-name map from the artifact's ObjectEpoch records
/// (migration events carry only the id).
std::map<uint32_t, std::string>
objectNames(const obs::DecisionArtifact &Artifact) {
  std::map<uint32_t, std::string> Names;
  for (const obs::DecisionRecord &R : Artifact.Records)
    if (R.Kind == obs::DecisionKind::ObjectEpoch)
      Names[R.Object.Object] = Artifact.name(R.Object.NameId);
  return Names;
}

/// Links \p F to the decision log: picks a migration event committed at
/// the finding's global epoch (the busiest range for storms, any for the
/// rest) and renders its chunk's why-chain.
void attachWhyChain(Finding &F, const obs::DecisionArtifact &Artifact,
                    const std::map<uint32_t, std::string> &Names) {
  const obs::MigrationEventRecord *Best = nullptr;
  for (const obs::DecisionRecord &R : Artifact.Records) {
    if (R.Kind != obs::DecisionKind::MigrationEvent ||
        R.Migration.Epoch != F.GlobalEpoch)
      continue;
    if (R.Migration.Phase != obs::DecisionPhase::Committed &&
        R.Migration.Phase != obs::DecisionPhase::Planned)
      continue;
    if (!Best || R.Migration.NumChunks > Best->NumChunks)
      Best = &R.Migration;
  }
  if (!Best)
    return;
  auto It = Names.find(Best->Object);
  if (It == Names.end() || It->second.empty())
    return;
  obs::WhyQuery Query;
  Query.Object = It->second;
  Query.Chunk = Best->FirstChunk;
  Query.Epoch = static_cast<int64_t>(F.GlobalEpoch);
  std::string Chain, Error;
  if (obs::explainChunk(Artifact, Query, Chain, &Error))
    F.WhyChain = Chain;
}

/// Decision-log-only replay: no time series means no miss-rate or wall
/// clock, so synthesize per-epoch samples carrying only the migration
/// lifecycle counts the storm and ping-pong detectors consume (the
/// regression/waste/overhead/stale detectors stay quiet — documented
/// limitation of this mode).
std::vector<obs::EpochSample>
samplesFromArtifact(const obs::DecisionArtifact &Artifact) {
  std::map<uint64_t, obs::EpochSample> ByEpoch;
  for (const obs::DecisionRecord &R : Artifact.Records) {
    if (R.Kind != obs::DecisionKind::MigrationEvent)
      continue;
    obs::EpochSample &S = ByEpoch[R.Migration.Epoch];
    S.Epoch = R.Migration.Epoch;
    switch (R.Migration.Phase) {
    case obs::DecisionPhase::Committed:
      ++S.MigrationRanges;
      break;
    case obs::DecisionPhase::Retried:
      ++S.Retries;
      break;
    case obs::DecisionPhase::RolledBack:
      ++S.Rollbacks;
      break;
    case obs::DecisionPhase::StagedAhead:
      ++S.LookaheadStaged;
      break;
    case obs::DecisionPhase::PrefetchCancelled:
      ++S.LookaheadCancelled;
      break;
    default:
      break;
    }
  }
  std::vector<obs::EpochSample> Out;
  if (ByEpoch.empty())
    return Out;
  // Epochs with no migration traffic still happened; fill the gaps so
  // baselines and windows advance at true epoch cadence.
  uint64_t First = ByEpoch.begin()->first;
  uint64_t Last = ByEpoch.rbegin()->first;
  for (uint64_t E = First; E <= Last; ++E) {
    obs::EpochSample S;
    auto It = ByEpoch.find(E);
    if (It != ByEpoch.end())
      S = It->second;
    S.Epoch = E;
    Out.push_back(S);
  }
  return Out;
}

std::string escapeJson(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
      continue;
    }
    Out += C;
  }
  return Out;
}

const char *severityTag(obs::HealthSeverity S) {
  switch (S) {
  case obs::HealthSeverity::Info:
    return "INFO";
  case obs::HealthSeverity::Warn:
    return "WARN";
  case obs::HealthSeverity::Critical:
    return "CRIT";
  }
  return "?";
}

} // namespace

int main(int Argc, const char **Argv) {
  OptionParser Parser(
      "atmem_doctor: post-hoc placement-health triage. Replays the "
      "runtime's streaming anomaly detectors (slow-miss regression, "
      "migration storm, ping-pong, lookahead waste, overhead budget, "
      "stale placement) over recorded artifacts and cross-links findings "
      "to decision-log why-chains.\n"
      "Exit codes: 0 healthy, 4 warning findings, 5 critical findings, "
      "2 usage error, 1 unreadable or invalid input.");
  Parser.addString("timeseries", "",
                   "atmem-timeseries-v1 JSONL to replay ('' skips); epoch "
                   "resets start a new run segment");
  Parser.addString("metrics", "",
                   "atmem-metrics-v1 snapshot: health.* counters and "
                   "health.slo.* verdicts are folded into the report");
  Parser.addString("decision-log", "",
                   "atdl-v1 file or atdr-v1 ring: links findings to "
                   "why-chains; replayed alone it drives the migration "
                   "detectors");
  Parser.addString("health-log", "",
                   "atmem-health-v1 event log from the live monitor, "
                   "folded into the report");
  Parser.addString("health-knobs", "",
                   "detector tuning overrides, comma-separated knob=value "
                   "(see docs/observability.md)");
  Parser.addFlag("json", "machine-readable atmem-doctor-v1 report on stdout");
  if (!Parser.parse(Argc, Argv))
    return ExitUsage;

  std::string TsPath = Parser.getString("timeseries");
  std::string MetricsPath = Parser.getString("metrics");
  std::string LogPath = Parser.getString("decision-log");
  std::string HealthLogPath = Parser.getString("health-log");
  bool Json = Parser.getFlag("json");
  if (TsPath.empty() && MetricsPath.empty() && LogPath.empty() &&
      HealthLogPath.empty()) {
    std::fprintf(stderr, "error: nothing to triage (pass --timeseries, "
                         "--metrics, --decision-log and/or --health-log)\n");
    return ExitUsage;
  }

  obs::HealthConfig Config;
  std::string Error;
  if (!parseHealthKnobs(Parser.getString("health-knobs"), Config, &Error)) {
    std::fprintf(stderr, "error: --health-knobs: %s\n", Error.c_str());
    return ExitUsage;
  }

  std::vector<std::string> Notes;
  std::vector<Finding> Findings;
  obs::SloStatus Worst[obs::NumHealthDetectors] = {};
  bool HaveReplay = false;

  // Decision log first: segments of the time series align against it.
  obs::DecisionArtifact Artifact;
  bool HaveArtifact = false;
  std::map<uint32_t, std::string> Names;
  if (!LogPath.empty()) {
    obs::RingRecoveryStats Recovery;
    bool WasRing = false;
    if (!obs::readDecisionLogAny(LogPath, Artifact, &Error, &Recovery,
                                 &WasRing)) {
      std::fprintf(stderr, "error: decision log '%s': %s\n", LogPath.c_str(),
                   Error.c_str());
      return ExitInvalid;
    }
    HaveArtifact = true;
    Names = objectNames(Artifact);
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf), "decision log '%s': %zu records%s",
                  LogPath.c_str(), Artifact.Records.size(),
                  WasRing ? " (salvaged from ring)" : "");
    Notes.push_back(Buf);
  }

  auto Absorb = [&](const obs::HealthReport &Report, uint64_t Segment,
                    uint64_t EpochBase, const char *Source) {
    HaveReplay = true;
    for (uint32_t D = 0; D < obs::NumHealthDetectors; ++D)
      Worst[D] = std::max(Worst[D], Report.Worst[D]);
    for (const obs::HealthEvent &E : Report.Events) {
      Finding F;
      F.Severity = E.Severity;
      F.Detector = E.Detector;
      F.Segment = Segment;
      F.Epoch = E.Epoch;
      F.GlobalEpoch = EpochBase + E.Epoch;
      F.Value = E.Value;
      F.Threshold = E.Threshold;
      F.Detail = E.Detail;
      F.Source = Source;
      if (HaveArtifact && E.Severity != obs::HealthSeverity::Info)
        attachWhyChain(F, Artifact, Names);
      Findings.push_back(std::move(F));
    }
  };

  if (!TsPath.empty()) {
    std::string Text = readFileToString(TsPath, &Error);
    if (Text.empty() && !Error.empty()) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return ExitInvalid;
    }
    std::vector<obs::EpochSample> Samples;
    if (!obs::parseTimeSeriesJsonl(Text, Samples, &Error)) {
      std::fprintf(stderr, "error: timeseries '%s': %s\n", TsPath.c_str(),
                   Error.c_str());
      return ExitInvalid;
    }
    std::vector<std::vector<obs::EpochSample>> Segments =
        segmentSamples(Samples);
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf),
                  "timeseries '%s': %zu epochs in %zu run segment%s",
                  TsPath.c_str(), Samples.size(), Segments.size(),
                  Segments.size() == 1 ? "" : "s");
    Notes.push_back(Buf);
    uint64_t EpochBase = 0;
    for (size_t I = 0; I < Segments.size(); ++I) {
      obs::HealthReport Report = obs::replayHealth(
          Config, Segments[I], HaveArtifact ? &Artifact : nullptr, EpochBase);
      Absorb(Report, I + 1, EpochBase, "timeseries");
      EpochBase += Segments[I].size();
    }
  } else if (HaveArtifact) {
    // No time series: replay what the decision log alone can drive.
    Notes.push_back("no timeseries: replaying migration detectors only "
                    "(miss-rate, waste-ratio, overhead and staleness "
                    "signals need --timeseries)");
    // The synthesized samples carry true process-wide log epochs, so a
    // base of 0 reports them 1:1.
    std::vector<obs::EpochSample> Samples = samplesFromArtifact(Artifact);
    obs::HealthReport Report =
        obs::replayHealth(Config, Samples, &Artifact, 0);
    Absorb(Report, 1, 0, "decision-log");
  }

  if (!HealthLogPath.empty()) {
    std::string Text = readFileToString(HealthLogPath, &Error);
    if (Text.empty() && !Error.empty()) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return ExitInvalid;
    }
    std::vector<obs::HealthEvent> Events;
    if (!obs::parseHealthLog(Text, Events, &Error)) {
      std::fprintf(stderr, "error: health log '%s': %s\n",
                   HealthLogPath.c_str(), Error.c_str());
      return ExitInvalid;
    }
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf), "health log '%s': %zu events",
                  HealthLogPath.c_str(), Events.size());
    Notes.push_back(Buf);
    for (const obs::HealthEvent &E : Events) {
      Finding F;
      F.Severity = E.Severity;
      F.Detector = E.Detector;
      F.Segment = 0;
      F.Epoch = E.Epoch;
      F.GlobalEpoch = E.Epoch;
      F.Value = E.Value;
      F.Threshold = E.Threshold;
      F.Detail = E.Detail;
      F.Source = "health-log";
      if (E.Severity == obs::HealthSeverity::Warn)
        Worst[static_cast<uint32_t>(E.Detector)] =
            std::max(Worst[static_cast<uint32_t>(E.Detector)],
                     obs::SloStatus::Yellow);
      else if (E.Severity == obs::HealthSeverity::Critical)
        Worst[static_cast<uint32_t>(E.Detector)] = obs::SloStatus::Red;
      if (HaveArtifact && E.Severity != obs::HealthSeverity::Info)
        attachWhyChain(F, Artifact, Names);
      Findings.push_back(std::move(F));
    }
  }

  if (!MetricsPath.empty()) {
    obs::JsonValue Doc;
    if (!obs::parseJsonFile(MetricsPath, Doc, &Error)) {
      std::fprintf(stderr, "error: metrics '%s': %s\n", MetricsPath.c_str(),
                   Error.c_str());
      return ExitInvalid;
    }
    if (!obs::validateMetricsJson(Doc, &Error)) {
      std::fprintf(stderr, "error: metrics '%s': %s\n", MetricsPath.c_str(),
                   Error.c_str());
      return ExitInvalid;
    }
    const obs::JsonValue *Gauges = Doc.find("gauges");
    uint64_t Verdicts = 0;
    for (uint32_t D = 0; D < obs::NumHealthDetectors; ++D) {
      std::string Key =
          std::string("health.slo.") +
          obs::healthDetectorName(static_cast<obs::HealthDetector>(D));
      const obs::JsonValue *V = Gauges ? Gauges->findNumber(Key) : nullptr;
      if (!V)
        continue;
      ++Verdicts;
      if (V->NumberVal >= 2.0)
        Worst[D] = obs::SloStatus::Red;
      else if (V->NumberVal >= 1.0)
        Worst[D] = std::max(Worst[D], obs::SloStatus::Yellow);
    }
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf),
                  "metrics '%s': %" PRIu64 " stored health.slo.* verdicts",
                  MetricsPath.c_str(), Verdicts);
    Notes.push_back(Buf);
    (void)HaveReplay;
  }

  // Verdict: the worst surviving detector status decides the exit code.
  obs::SloStatus Overall = obs::SloStatus::Green;
  for (uint32_t D = 0; D < obs::NumHealthDetectors; ++D)
    Overall = std::max(Overall, Worst[D]);
  int Exit = Overall == obs::SloStatus::Red      ? ExitCritical
             : Overall == obs::SloStatus::Yellow ? ExitWarning
                                                 : ExitHealthy;

  if (Json) {
    std::string Out = "{\"schema\":\"atmem-doctor-v1\",\"overall\":\"";
    Out += obs::sloStatusName(Overall);
    Out += "\",\"slo\":{";
    for (uint32_t D = 0; D < obs::NumHealthDetectors; ++D) {
      if (D)
        Out += ",";
      Out += "\"";
      Out += obs::healthDetectorName(static_cast<obs::HealthDetector>(D));
      Out += "\":\"";
      Out += obs::sloStatusName(Worst[D]);
      Out += "\"";
    }
    Out += "},\"findings\":[";
    for (size_t I = 0; I < Findings.size(); ++I) {
      const Finding &F = Findings[I];
      char Buf[256];
      std::snprintf(Buf, sizeof(Buf),
                    "%s{\"severity\":\"%s\",\"detector\":\"%s\","
                    "\"segment\":%" PRIu64 ",\"epoch\":%" PRIu64
                    ",\"global_epoch\":%" PRIu64
                    ",\"value\":%.6f,\"threshold\":%.6f,",
                    I ? "," : "", obs::healthSeverityName(F.Severity),
                    obs::healthDetectorName(F.Detector), F.Segment, F.Epoch,
                    F.GlobalEpoch, F.Value, F.Threshold);
      Out += Buf;
      Out += "\"source\":\"" + escapeJson(F.Source) + "\",";
      Out += "\"detail\":\"" + escapeJson(F.Detail) + "\",";
      Out += "\"why\":\"" + escapeJson(F.WhyChain) + "\"}";
    }
    Out += "]}\n";
    std::fputs(Out.c_str(), stdout);
    return Exit;
  }

  std::printf("atmem_doctor triage\n===================\n");
  for (const std::string &Note : Notes)
    std::printf("  %s\n", Note.c_str());
  std::printf("\nSLO verdicts\n");
  for (uint32_t D = 0; D < obs::NumHealthDetectors; ++D)
    std::printf("  %-22s %s\n",
                obs::healthDetectorName(static_cast<obs::HealthDetector>(D)),
                obs::sloStatusName(Worst[D]));
  if (Findings.empty()) {
    std::printf("\nNo findings: run looks healthy.\n");
  } else {
    std::printf("\nFindings (%zu)\n", Findings.size());
    for (const Finding &F : Findings) {
      if (F.Segment != 0)
        std::printf("  [%s] %s: segment %" PRIu64 " epoch %" PRIu64
                    " (log epoch %" PRIu64 "): %s "
                    "(value %.3f, threshold %.3f, from %s)\n",
                    severityTag(F.Severity),
                    obs::healthDetectorName(F.Detector), F.Segment, F.Epoch,
                    F.GlobalEpoch, F.Detail.c_str(), F.Value, F.Threshold,
                    F.Source.c_str());
      else
        std::printf("  [%s] %s: epoch %" PRIu64 ": %s "
                    "(value %.3f, threshold %.3f, from %s)\n",
                    severityTag(F.Severity),
                    obs::healthDetectorName(F.Detector), F.Epoch,
                    F.Detail.c_str(), F.Value, F.Threshold, F.Source.c_str());
      if (!F.WhyChain.empty()) {
        std::printf("        why-chain of an implicated chunk:\n");
        size_t Pos = 0;
        while (Pos < F.WhyChain.size()) {
          size_t End = F.WhyChain.find('\n', Pos);
          if (End == std::string::npos)
            End = F.WhyChain.size();
          std::printf("        | %s\n",
                      F.WhyChain.substr(Pos, End - Pos).c_str());
          Pos = End + 1;
        }
      }
    }
  }
  std::printf("\noverall: %s\n", obs::sloStatusName(Overall));
  return Exit;
}
