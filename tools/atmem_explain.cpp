//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// atmem_explain: provenance queries over a placement-decision flight
/// recorder file (written by atmem_run/benches via --decision-log).
///
/// Examples:
///   atmem_explain run.atdl --summary
///   atmem_explain run.atdl --why obj=rank chunk=17 iter=3
///   atmem_explain run.atdl --heatmap obj=rank
///   atmem_explain run.atdl --diff other.atdl
///   atmem_explain run.atdl --jsonl decisions.jsonl
///
//===----------------------------------------------------------------------===//

#include "obs/DecisionExplain.h"
#include "obs/DecisionLog.h"
#include "obs/RingLog.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace atmem;

namespace {

int usage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage: %s <decision-log.bin | ring-base-path> [action]\n"
      "\n"
      "accepts flat atdl-v1 logs and crash-resilient atdr-v1 rings\n"
      "(pass the ring base path or any <base>.NNNNNN segment file)\n"
      "\n"
      "actions (default: --summary):\n"
      "  --summary                     per-epoch, per-object overview\n"
      "  --why obj=NAME chunk=N [iter=K]\n"
      "                                causal chain of one placement "
      "decision\n"
      "                                (iter defaults to the last epoch)\n"
      "  --heatmap obj=NAME [cols=N]   chunk-state heatmap over epochs\n"
      "  --diff OTHER.bin              placement differences vs another "
      "run\n"
      "  --jsonl OUT.jsonl             export all records as JSON lines\n",
      Prog);
  return 2;
}

/// Parses a "key=value" token; returns false when the key does not match.
bool keyValue(const char *Arg, const char *Key, std::string &Out) {
  size_t KeyLen = std::strlen(Key);
  if (std::strncmp(Arg, Key, KeyLen) != 0 || Arg[KeyLen] != '=')
    return false;
  Out = Arg + KeyLen + 1;
  return true;
}

bool parseUnsigned(const std::string &Text, uint64_t &Out) {
  if (Text.empty())
    return false;
  char *End = nullptr;
  Out = std::strtoull(Text.c_str(), &End, 10);
  return End && *End == '\0';
}

} // namespace

int main(int Argc, const char **Argv) {
  if (Argc < 2 || std::strcmp(Argv[1], "--help") == 0 ||
      std::strcmp(Argv[1], "-h") == 0)
    return usage(Argv[0]);

  std::string LogPath = Argv[1];
  obs::DecisionArtifact Artifact;
  obs::RingRecoveryStats Recovery;
  bool WasRing = false;
  std::string Error;
  // Flat atdl files and atdr rings (base path or any segment) are both
  // accepted; rings go through the crash-recovery reader, so a log from a
  // killed run explains its complete epochs like any other.
  if (!obs::readDecisionLogAny(LogPath, Artifact, &Error, &Recovery,
                               &WasRing)) {
    std::fprintf(stderr, "error: %s: %s\n", LogPath.c_str(), Error.c_str());
    return 1;
  }
  if (WasRing && !Recovery.CleanClose)
    std::fprintf(stderr,
                 "note: %s: crash-recovered ring (%llu epochs salvaged, "
                 "%llu tail records of the in-flight epoch dropped)\n",
                 LogPath.c_str(),
                 static_cast<unsigned long long>(Recovery.SalvagedEpochs),
                 static_cast<unsigned long long>(Recovery.DroppedTail));
  if (!obs::validateDecisionLog(Artifact, &Error)) {
    std::fprintf(stderr, "error: %s: invalid decision log: %s\n",
                 LogPath.c_str(), Error.c_str());
    return 1;
  }

  std::string Action = Argc >= 3 ? Argv[2] : "--summary";
  std::vector<const char *> Rest(Argv + std::min(Argc, 3), Argv + Argc);

  if (Action == "--summary") {
    std::fputs(obs::summarizeDecisions(Artifact).c_str(), stdout);
    return 0;
  }

  if (Action == "--why") {
    obs::WhyQuery Query;
    bool HaveChunk = false;
    for (const char *Arg : Rest) {
      std::string Value;
      if (keyValue(Arg, "obj", Query.Object))
        continue;
      if (keyValue(Arg, "chunk", Value)) {
        uint64_t N;
        if (!parseUnsigned(Value, N)) {
          std::fprintf(stderr, "error: bad chunk '%s'\n", Value.c_str());
          return 2;
        }
        Query.Chunk = static_cast<uint32_t>(N);
        HaveChunk = true;
        continue;
      }
      if (keyValue(Arg, "iter", Value) || keyValue(Arg, "epoch", Value)) {
        uint64_t N;
        if (!parseUnsigned(Value, N)) {
          std::fprintf(stderr, "error: bad iter '%s'\n", Value.c_str());
          return 2;
        }
        Query.Epoch = static_cast<int64_t>(N);
        continue;
      }
      std::fprintf(stderr, "error: unknown --why argument '%s'\n", Arg);
      return 2;
    }
    if (Query.Object.empty() || !HaveChunk) {
      std::fprintf(stderr,
                   "error: --why needs obj=NAME and chunk=N arguments\n");
      return 2;
    }
    std::string Out;
    if (!obs::explainChunk(Artifact, Query, Out, &Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    std::fputs(Out.c_str(), stdout);
    return 0;
  }

  if (Action == "--heatmap") {
    std::string Object;
    uint64_t Cols = 96;
    for (const char *Arg : Rest) {
      std::string Value;
      if (keyValue(Arg, "obj", Object))
        continue;
      if (keyValue(Arg, "cols", Value) && parseUnsigned(Value, Cols) &&
          Cols > 0)
        continue;
      std::fprintf(stderr, "error: unknown --heatmap argument '%s'\n", Arg);
      return 2;
    }
    if (Object.empty()) {
      std::fprintf(stderr, "error: --heatmap needs an obj=NAME argument\n");
      return 2;
    }
    std::fputs(obs::renderHeatmap(Artifact, Object,
                                  static_cast<uint32_t>(Cols))
                   .c_str(),
               stdout);
    return 0;
  }

  if (Action == "--diff") {
    if (Rest.empty()) {
      std::fprintf(stderr, "error: --diff needs a second log path\n");
      return 2;
    }
    obs::DecisionArtifact Other;
    if (!obs::readDecisionLogAny(Rest[0], Other, &Error)) {
      std::fprintf(stderr, "error: %s: %s\n", Rest[0], Error.c_str());
      return 1;
    }
    if (!obs::validateDecisionLog(Other, &Error)) {
      std::fprintf(stderr, "error: %s: invalid decision log: %s\n", Rest[0],
                   Error.c_str());
      return 1;
    }
    std::string Diff = obs::diffDecisions(Artifact, Other);
    std::fputs(Diff.c_str(), stdout);
    // Scriptable: exit 0 on identical placement, 3 on any difference.
    return Diff.find("identical") != std::string::npos ? 0 : 3;
  }

  if (Action == "--jsonl") {
    if (Rest.empty()) {
      std::fprintf(stderr, "error: --jsonl needs an output path\n");
      return 2;
    }
    if (!obs::writeDecisionJsonl(Artifact, Rest[0], &Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    std::printf("wrote %zu records to %s\n", Artifact.Records.size(),
                Rest[0]);
    return 0;
  }

  std::fprintf(stderr, "error: unknown action '%s'\n", Action.c_str());
  return usage(Argv[0]);
}
