//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// atmem_graphgen: generates the synthetic evaluation datasets (or custom
/// R-MAT / power-law graphs) and saves them as checksummed binary CSR or
/// text edge lists, so repeated experiment campaigns skip regeneration
/// and external tools can consume the same inputs.
///
/// Examples:
///   atmem_graphgen --dataset=friendster --out=friendster.csr
///   atmem_graphgen --family=rmat --scale-log2=18 --out=big.csr
///   atmem_graphgen --family=powerlaw --vertices=100000 --gamma=2.1
///                  --format=edgelist --out=plaw.txt
///   atmem_graphgen --verify=friendster.csr
///
//===----------------------------------------------------------------------===//

#include "graph/CsrBinaryIO.h"
#include "graph/Datasets.h"
#include "graph/EdgeListIO.h"
#include "graph/Generators.h"
#include "support/Options.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace atmem;

int main(int Argc, const char **Argv) {
  OptionParser Parser("atmem_graphgen: generate and serialize the "
                      "framework's synthetic graphs");
  Parser.addString("dataset", "",
                   "named dataset to generate (pokec, rmat24, twitter, "
                   "rmat27, friendster)");
  Parser.addString("family", "",
                   "custom generator instead of a named dataset: "
                   "rmat | powerlaw");
  Parser.addUnsigned("scale-log2", 16, "rmat: log2 of the vertex count");
  Parser.addUnsigned("vertices", 1 << 16, "powerlaw: vertex count");
  Parser.addDouble("degree", 16.0, "average degree");
  Parser.addDouble("gamma", 2.2, "powerlaw: degree exponent");
  Parser.addUnsigned("seed", 1, "generator seed");
  Parser.addDouble("dataset-scale", graph::DefaultScaleDivisor,
                   "scale divisor for named datasets");
  Parser.addUnsigned("weights", 0,
                     "attach random edge weights in [1, N] (0 = none)");
  Parser.addString("format", "csr", "output format: csr | edgelist");
  Parser.addString("out", "", "output path");
  Parser.addString("verify", "",
                   "instead of generating: load a binary CSR file, check "
                   "its digest, and print its statistics");
  if (!Parser.parse(Argc, Argv))
    return 1;

  if (std::string Path = Parser.getString("verify"); !Path.empty()) {
    auto Loaded = graph::readCsrBinary(Path);
    if (!Loaded) {
      std::fprintf(stderr, "error: '%s' failed to load or its digest does "
                           "not match\n",
                   Path.c_str());
      return 1;
    }
    std::printf("%s: OK — %u vertices, %llu edges, %s, top-1%% degree "
                "share %.2f\n",
                Path.c_str(), Loaded->numVertices(),
                static_cast<unsigned long long>(Loaded->numEdges()),
                Loaded->hasWeights() ? "weighted" : "unweighted",
                Loaded->topDegreeEdgeShare(0.01));
    return 0;
  }

  std::string Out = Parser.getString("out");
  if (Out.empty()) {
    std::fprintf(stderr, "error: --out is required when generating\n");
    return 1;
  }

  graph::CsrGraph Graph;
  if (std::string Name = Parser.getString("dataset"); !Name.empty()) {
    if (!graph::isKnownDataset(Name)) {
      std::fprintf(stderr, "error: unknown dataset '%s'\n", Name.c_str());
      return 1;
    }
    Graph =
        graph::makeDataset(Name, Parser.getDouble("dataset-scale")).Graph;
  } else if (std::string Family = Parser.getString("family");
             Family == "rmat") {
    graph::RmatParams Params;
    Params.Scale = static_cast<uint32_t>(Parser.getUnsigned("scale-log2"));
    Params.EdgeFactor = Parser.getDouble("degree");
    Params.Seed = Parser.getUnsigned("seed");
    Graph = graph::generateRmat(Params);
  } else if (Family == "powerlaw") {
    graph::PowerLawParams Params;
    Params.NumVertices =
        static_cast<uint32_t>(Parser.getUnsigned("vertices"));
    Params.AverageDegree = Parser.getDouble("degree");
    Params.Gamma = Parser.getDouble("gamma");
    Params.Seed = Parser.getUnsigned("seed");
    Graph = graph::generatePowerLaw(Params);
  } else {
    std::fprintf(stderr,
                 "error: pass --dataset=<name> or --family=rmat|powerlaw\n");
    return 1;
  }

  if (uint64_t MaxWeight = Parser.getUnsigned("weights"); MaxWeight > 0)
    Graph = graph::withRandomWeights(Graph,
                                     static_cast<uint32_t>(MaxWeight),
                                     Parser.getUnsigned("seed"));

  bool Ok;
  std::string Format = Parser.getString("format");
  if (Format == "csr") {
    Ok = graph::writeCsrBinary(Graph, Out);
  } else if (Format == "edgelist") {
    Ok = graph::writeEdgeList(Graph, Out);
  } else {
    std::fprintf(stderr, "error: unknown format '%s'\n", Format.c_str());
    return 1;
  }
  if (!Ok) {
    std::fprintf(stderr, "error: writing '%s' failed\n", Out.c_str());
    return 1;
  }
  std::printf("wrote %s: %u vertices, %llu edges (%s)\n", Out.c_str(),
              Graph.numVertices(),
              static_cast<unsigned long long>(Graph.numEdges()),
              Format.c_str());
  return 0;
}
