//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// atmem_obs_check: validates telemetry artifacts against the schemas the
/// runtime emits (obs/Export.h is the single source of truth). CI runs it
/// on the files produced by `atmem_run --metrics-out --trace-out`; exit
/// status is non-zero on the first violation, with the reason on stderr.
///
/// Examples:
///   atmem_obs_check --metrics m.json
///   atmem_obs_check --metrics m.json --trace t.json
///
//===----------------------------------------------------------------------===//

#include "obs/Export.h"
#include "obs/Json.h"
#include "support/Options.h"

#include <cstdio>

using namespace atmem;

namespace {

bool checkFile(const std::string &Path, const char *What,
               bool (*Validate)(const obs::JsonValue &, std::string *)) {
  obs::JsonValue Doc;
  std::string Error;
  if (!obs::parseJsonFile(Path, Doc, &Error)) {
    std::fprintf(stderr, "error: %s '%s': %s\n", What, Path.c_str(),
                 Error.c_str());
    return false;
  }
  if (!Validate(Doc, &Error)) {
    std::fprintf(stderr, "error: %s '%s': %s\n", What, Path.c_str(),
                 Error.c_str());
    return false;
  }
  std::printf("%s '%s': ok\n", What, Path.c_str());
  return true;
}

} // namespace

int main(int Argc, const char **Argv) {
  OptionParser Parser("atmem_obs_check: validate telemetry JSON artifacts "
                      "(metrics snapshots and Chrome trace exports)");
  Parser.addString("metrics", "",
                   "atmem-metrics-v1 snapshot to validate ('' skips)");
  Parser.addString("trace", "",
                   "Chrome trace-event JSON to validate ('' skips)");
  if (!Parser.parse(Argc, Argv))
    return 1;

  std::string MetricsPath = Parser.getString("metrics");
  std::string TracePath = Parser.getString("trace");
  if (MetricsPath.empty() && TracePath.empty()) {
    std::fprintf(stderr, "error: nothing to check (pass --metrics and/or "
                         "--trace)\n");
    return 1;
  }

  bool Ok = true;
  if (!MetricsPath.empty())
    Ok = checkFile(MetricsPath, "metrics", obs::validateMetricsJson) && Ok;
  if (!TracePath.empty())
    Ok = checkFile(TracePath, "trace", obs::validateTraceJson) && Ok;
  return Ok ? 0 : 1;
}
