//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// atmem_obs_check: validates telemetry artifacts against the schemas the
/// runtime emits (obs/Export.h and obs/DecisionLog.h are the single source
/// of truth). CI runs it on the files produced by `atmem_run --metrics-out
/// --trace-out --decision-log`; exit status is non-zero on the first
/// violation, with the reason on stderr.
///
/// Examples:
///   atmem_obs_check --metrics m.json
///   atmem_obs_check --metrics m.json --trace t.json
///   atmem_obs_check --decision-log run.atdl --metrics m.json
///
//===----------------------------------------------------------------------===//

#include "obs/DecisionLog.h"
#include "obs/Export.h"
#include "obs/Json.h"
#include "support/Options.h"

#include <cstdio>

using namespace atmem;

namespace {

bool checkFile(const std::string &Path, const char *What,
               bool (*Validate)(const obs::JsonValue &, std::string *)) {
  obs::JsonValue Doc;
  std::string Error;
  if (!obs::parseJsonFile(Path, Doc, &Error)) {
    std::fprintf(stderr, "error: %s '%s': %s\n", What, Path.c_str(),
                 Error.c_str());
    return false;
  }
  if (!Validate(Doc, &Error)) {
    std::fprintf(stderr, "error: %s '%s': %s\n", What, Path.c_str(),
                 Error.c_str());
    return false;
  }
  std::printf("%s '%s': ok\n", What, Path.c_str());
  return true;
}

/// Decodes and validates a decision-log file: magic/version header,
/// monotone epoch ids, resolvable name references, record-count trailer.
/// When \p MetricsPath names a metrics snapshot from the same run, the
/// log's aggregate counts are cross-checked against its migration.* and
/// analyzer.* counters.
bool checkDecisionLog(const std::string &Path,
                      const std::string &MetricsPath) {
  obs::DecisionArtifact Artifact;
  std::string Error;
  if (!obs::readDecisionLog(Path, Artifact, &Error)) {
    std::fprintf(stderr, "error: decision log '%s': %s\n", Path.c_str(),
                 Error.c_str());
    return false;
  }
  obs::DecisionLogStats Stats;
  if (!obs::validateDecisionLog(Artifact, &Error, &Stats)) {
    std::fprintf(stderr, "error: decision log '%s': %s\n", Path.c_str(),
                 Error.c_str());
    return false;
  }
  std::printf("decision log '%s': ok (%zu records, %llu epochs, "
              "%llu objects, %llu chunk decisions, %llu promoted)\n",
              Path.c_str(), Artifact.Records.size(),
              static_cast<unsigned long long>(Stats.Epochs),
              static_cast<unsigned long long>(Stats.Objects),
              static_cast<unsigned long long>(Stats.Chunks),
              static_cast<unsigned long long>(Stats.PromotedChunks));

  if (MetricsPath.empty())
    return true;
  obs::JsonValue Metrics;
  if (!obs::parseJsonFile(MetricsPath, Metrics, &Error)) {
    std::fprintf(stderr, "error: metrics '%s': %s\n", MetricsPath.c_str(),
                 Error.c_str());
    return false;
  }
  if (!obs::crossCheckDecisionMetrics(Artifact, Metrics, &Error)) {
    std::fprintf(stderr,
                 "error: decision log '%s' vs metrics '%s': %s\n",
                 Path.c_str(), MetricsPath.c_str(), Error.c_str());
    return false;
  }
  std::printf("decision log '%s' vs metrics '%s': counters consistent\n",
              Path.c_str(), MetricsPath.c_str());
  return true;
}

} // namespace

int main(int Argc, const char **Argv) {
  OptionParser Parser("atmem_obs_check: validate telemetry artifacts "
                      "(metrics snapshots, Chrome trace exports, and "
                      "placement-decision flight recorder files)");
  Parser.addString("metrics", "",
                   "atmem-metrics-v1 snapshot to validate ('' skips); with "
                   "--decision-log, also cross-checked against the log");
  Parser.addString("trace", "",
                   "Chrome trace-event JSON to validate ('' skips)");
  Parser.addString("decision-log", "",
                   "atdl-v1 decision log to validate ('' skips)");
  if (!Parser.parse(Argc, Argv))
    return 1;

  std::string MetricsPath = Parser.getString("metrics");
  std::string TracePath = Parser.getString("trace");
  std::string DecisionPath = Parser.getString("decision-log");
  if (MetricsPath.empty() && TracePath.empty() && DecisionPath.empty()) {
    std::fprintf(stderr, "error: nothing to check (pass --metrics, "
                         "--trace and/or --decision-log)\n");
    return 1;
  }

  bool Ok = true;
  if (!MetricsPath.empty())
    Ok = checkFile(MetricsPath, "metrics", obs::validateMetricsJson) && Ok;
  if (!TracePath.empty())
    Ok = checkFile(TracePath, "trace", obs::validateTraceJson) && Ok;
  if (!DecisionPath.empty())
    Ok = checkDecisionLog(DecisionPath, MetricsPath) && Ok;
  return Ok ? 0 : 1;
}
