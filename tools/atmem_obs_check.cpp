//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// atmem_obs_check: validates telemetry artifacts against the schemas the
/// runtime emits (obs/Export.h and obs/DecisionLog.h are the single source
/// of truth). CI runs it on the files produced by `atmem_run --metrics-out
/// --trace-out --decision-log`; exit status is non-zero on the first
/// violation, with the reason on stderr.
///
/// --decision-log accepts both flat atdl-v1 files and atdr-v1 rings (pass
/// the ring base path or any segment file); rings are salvaged by the
/// crash-recovery reader first and the salvage statistics are reported.
///
/// Unhealthy decision logs exit with a code naming the failure class, so
/// scripts can tell a crash-truncated log from a file that was never a
/// decision log at all (see ExitCodes below; also listed in --help).
///
/// Examples:
///   atmem_obs_check --metrics m.json
///   atmem_obs_check --metrics m.json --trace t.json
///   atmem_obs_check --decision-log run.atdl --metrics m.json
///   atmem_obs_check --decision-log run.atdr   # ring base path
///
//===----------------------------------------------------------------------===//

#include "obs/DecisionLog.h"
#include "obs/Export.h"
#include "obs/Health.h"
#include "obs/Json.h"
#include "obs/RingLog.h"
#include "obs/TimeSeries.h"
#include "support/Options.h"

#include <cstdio>
#include <string>

using namespace atmem;

namespace {

/// Exit codes, most specific wins when several checks fail. Documented in
/// the --help text; keep the two in sync.
enum ExitCodes {
  ExitOk = 0,         ///< Every requested artifact is valid.
  ExitInvalid = 1,    ///< Schema/validation/cross-check failure.
  ExitUsage = 2,      ///< Bad flags or nothing to check.
  ExitEmpty = 3,      ///< Decision log empty (or header-only).
  ExitHeaderless = 4, ///< Decision log lacks the ATDL header entirely.
  ExitTruncated = 5,  ///< Decision log cut off mid-record (torn write).
  ExitCorrupt = 6,    ///< Decision log decodes but violates invariants.
  ExitUnreadable = 7, ///< Decision log cannot be opened/read.
};

int exitCodeFor(obs::DecisionLogHealth Health) {
  switch (Health) {
  case obs::DecisionLogHealth::Ok:
    return ExitOk;
  case obs::DecisionLogHealth::Empty:
    return ExitEmpty;
  case obs::DecisionLogHealth::Headerless:
    return ExitHeaderless;
  case obs::DecisionLogHealth::Truncated:
    return ExitTruncated;
  case obs::DecisionLogHealth::Corrupt:
    return ExitCorrupt;
  case obs::DecisionLogHealth::Unreadable:
    return ExitUnreadable;
  }
  return ExitInvalid;
}

bool checkFile(const std::string &Path, const char *What,
               bool (*Validate)(const obs::JsonValue &, std::string *)) {
  obs::JsonValue Doc;
  std::string Error;
  if (!obs::parseJsonFile(Path, Doc, &Error)) {
    std::fprintf(stderr, "error: %s '%s': %s\n", What, Path.c_str(),
                 Error.c_str());
    return false;
  }
  if (!Validate(Doc, &Error)) {
    std::fprintf(stderr, "error: %s '%s': %s\n", What, Path.c_str(),
                 Error.c_str());
    return false;
  }
  std::printf("%s '%s': ok\n", What, Path.c_str());
  return true;
}

/// Decodes and validates a decision log — a flat atdl-v1 file or an
/// atdr-v1 ring, dispatched transparently. Flat files that fail get a
/// health diagnosis (empty / headerless / truncated / corrupt /
/// unreadable) and the matching exit code via \p ExitCode. When
/// \p MetricsPath names a metrics snapshot from the same run, the log's
/// aggregate counts are cross-checked against its migration.* and
/// analyzer.* counters.
bool checkDecisionLog(const std::string &Path, const std::string &MetricsPath,
                      int &ExitCode) {
  obs::DecisionArtifact Artifact;
  obs::RingRecoveryStats Recovery;
  bool WasRing = false;
  std::string Error;
  if (!obs::readDecisionLogAny(Path, Artifact, &Error, &Recovery, &WasRing)) {
    std::string Detail;
    obs::DecisionLogHealth Health =
        WasRing ? obs::DecisionLogHealth::Unreadable
                : obs::diagnoseDecisionLog(Path, &Detail);
    if (Detail.empty())
      Detail = Error;
    std::fprintf(stderr, "error: decision log '%s': %s: %s\n", Path.c_str(),
                 obs::decisionLogHealthName(Health), Detail.c_str());
    ExitCode = exitCodeFor(Health);
    return false;
  }
  obs::DecisionLogStats Stats;
  if (!obs::validateDecisionLog(Artifact, &Error, &Stats)) {
    std::string Detail;
    obs::DecisionLogHealth Health =
        WasRing ? obs::DecisionLogHealth::Corrupt
                : obs::diagnoseDecisionLog(Path, &Detail);
    std::fprintf(stderr, "error: decision log '%s': %s: %s\n", Path.c_str(),
                 obs::decisionLogHealthName(Health), Error.c_str());
    ExitCode = exitCodeFor(Health);
    return false;
  }
  if (WasRing)
    std::printf("decision ring '%s': salvaged %llu epochs from %llu "
                "segments (%llu frames, %llu torn, %llu dropped head, "
                "%llu dropped tail, %s close)\n",
                Path.c_str(),
                static_cast<unsigned long long>(Recovery.SalvagedEpochs),
                static_cast<unsigned long long>(Recovery.Segments),
                static_cast<unsigned long long>(Recovery.FramesRead),
                static_cast<unsigned long long>(Recovery.TornFrames),
                static_cast<unsigned long long>(Recovery.DroppedHead),
                static_cast<unsigned long long>(Recovery.DroppedTail),
                Recovery.CleanClose ? "clean" : "crash");
  std::printf("decision log '%s': ok (%zu records, %llu epochs, "
              "%llu objects, %llu chunk decisions, %llu promoted)\n",
              Path.c_str(), Artifact.Records.size(),
              static_cast<unsigned long long>(Stats.Epochs),
              static_cast<unsigned long long>(Stats.Objects),
              static_cast<unsigned long long>(Stats.Chunks),
              static_cast<unsigned long long>(Stats.PromotedChunks));

  if (MetricsPath.empty())
    return true;
  obs::JsonValue Metrics;
  if (!obs::parseJsonFile(MetricsPath, Metrics, &Error)) {
    std::fprintf(stderr, "error: metrics '%s': %s\n", MetricsPath.c_str(),
                 Error.c_str());
    return false;
  }
  if (!obs::crossCheckDecisionMetrics(Artifact, Metrics, &Error)) {
    std::fprintf(stderr,
                 "error: decision log '%s' vs metrics '%s': %s\n",
                 Path.c_str(), MetricsPath.c_str(), Error.c_str());
    return false;
  }
  std::printf("decision log '%s' vs metrics '%s': counters consistent\n",
              Path.c_str(), MetricsPath.c_str());
  return true;
}

std::string readFileToString(const std::string &Path, std::string *Error) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    if (Error)
      *Error = "cannot open '" + Path + "'";
    return "";
  }
  std::string Out;
  char Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
    Out.append(Buf, N);
  bool Bad = std::ferror(File) != 0;
  std::fclose(File);
  if (Bad) {
    if (Error)
      *Error = "read failure on '" + Path + "'";
    return "";
  }
  return Out;
}

/// Validates an atmem-timeseries-v1 JSONL file: schema header, per-line
/// parse, monotone epochs (a reset to a non-increasing epoch starts a new
/// run segment — bench batches share one file), and field-range checks on
/// the ratio fields the serializer guarantees are finite and bounded.
bool checkTimeSeries(const std::string &Path) {
  std::string Error;
  std::string Text = readFileToString(Path, &Error);
  if (Text.empty() && !Error.empty()) {
    std::fprintf(stderr, "error: timeseries '%s': %s\n", Path.c_str(),
                 Error.c_str());
    return false;
  }
  std::vector<obs::EpochSample> Samples;
  if (!obs::parseTimeSeriesJsonl(Text, Samples, &Error)) {
    std::fprintf(stderr, "error: timeseries '%s': %s\n", Path.c_str(),
                 Error.c_str());
    return false;
  }
  auto Fail = [&](size_t Index, const std::string &Message) {
    std::fprintf(stderr, "error: timeseries '%s': sample %zu: %s\n",
                 Path.c_str(), Index, Message.c_str());
    return false;
  };
  uint64_t Prev = 0;
  size_t Segments = 0;
  for (size_t I = 0; I < Samples.size(); ++I) {
    const obs::EpochSample &S = Samples[I];
    if (S.Epoch == 0)
      return Fail(I, "epoch is 0 (epochs are 1-based)");
    if (I == 0 || S.Epoch <= Prev) {
      // New run segment: it must restart at epoch 1.
      if (S.Epoch != 1)
        return Fail(I, "epoch " + std::to_string(S.Epoch) +
                           " does not continue " + std::to_string(Prev) +
                           " and does not restart a segment at 1");
      ++Segments;
    } else if (S.Epoch != Prev + 1) {
      return Fail(I, "epoch jumps from " + std::to_string(Prev) + " to " +
                         std::to_string(S.Epoch));
    }
    Prev = S.Epoch;
    if (S.SlowMissFraction < 0.0 || S.SlowMissFraction > 1.0)
      return Fail(I, "slow_miss_fraction outside [0,1]");
    if (S.FastDataRatio < 0.0 || S.FastDataRatio > 1.0)
      return Fail(I, "fast_data_ratio outside [0,1]");
    if (S.OptimizeWallUs < 0.0 || S.IterationWallUs < 0.0)
      return Fail(I, "negative wall-clock field");
    if (S.DrainMissesPerSec < 0.0 || S.MigrateSimSec < 0.0 ||
        S.LookaheadOverlapSec < 0.0)
      return Fail(I, "negative rate or duration field");
    if (S.MissesFast + S.MissesSlow > S.Accesses)
      return Fail(I, "tier misses exceed accesses");
  }
  std::printf("timeseries '%s': ok (%zu epochs, %zu run segment%s)\n",
              Path.c_str(), Samples.size(), Segments,
              Segments == 1 ? "" : "s");
  return true;
}

/// Validates an OpenMetrics exposition file: at least one # TYPE family
/// and the mandatory "# EOF" terminator as the final line.
bool checkOpenMetrics(const std::string &Path) {
  std::string Error;
  std::string Text = readFileToString(Path, &Error);
  if (Text.empty()) {
    std::fprintf(stderr, "error: openmetrics '%s': %s\n", Path.c_str(),
                 Error.empty() ? "empty file" : Error.c_str());
    return false;
  }
  if (Text.find("# TYPE ") == std::string::npos) {
    std::fprintf(stderr, "error: openmetrics '%s': no # TYPE family\n",
                 Path.c_str());
    return false;
  }
  // Strip one trailing newline, then require the last line be "# EOF".
  std::string Body = Text;
  if (!Body.empty() && Body.back() == '\n')
    Body.pop_back();
  size_t LastLine = Body.rfind('\n');
  std::string Last =
      LastLine == std::string::npos ? Body : Body.substr(LastLine + 1);
  if (Last != "# EOF") {
    std::fprintf(stderr,
                 "error: openmetrics '%s': missing \"# EOF\" terminator "
                 "(file may be truncated)\n",
                 Path.c_str());
    return false;
  }
  std::printf("openmetrics '%s': ok\n", Path.c_str());
  return true;
}

/// Validates an atmem-health-v1 event log, mapping failures onto the
/// decision-log triage classes: unreadable I/O is ExitUnreadable, a
/// missing schema header is ExitHeaderless, and a malformed event line is
/// ExitCorrupt. A header-only log is healthy (a clean run has no events).
bool checkHealthLog(const std::string &Path, int &ExitCode) {
  std::string Error;
  std::string Text = readFileToString(Path, &Error);
  if (Text.empty() && !Error.empty()) {
    std::fprintf(stderr, "error: health log '%s': %s\n", Path.c_str(),
                 Error.c_str());
    ExitCode = ExitUnreadable;
    return false;
  }
  std::vector<obs::HealthEvent> Events;
  if (!obs::parseHealthLog(Text, Events, &Error)) {
    bool NoHeader = Text.empty() ||
                    Error.find("schema") != std::string::npos;
    std::fprintf(stderr, "error: health log '%s': %s\n", Path.c_str(),
                 Error.c_str());
    ExitCode = NoHeader ? ExitHeaderless : ExitCorrupt;
    return false;
  }
  uint64_t Warn = 0, Critical = 0;
  for (const obs::HealthEvent &E : Events) {
    if (E.Severity == obs::HealthSeverity::Warn)
      ++Warn;
    else if (E.Severity == obs::HealthSeverity::Critical)
      ++Critical;
  }
  std::printf("health log '%s': ok (%zu events, %llu warn, %llu critical)\n",
              Path.c_str(), Events.size(),
              static_cast<unsigned long long>(Warn),
              static_cast<unsigned long long>(Critical));
  return true;
}

} // namespace

int main(int Argc, const char **Argv) {
  OptionParser Parser(
      "atmem_obs_check: validate telemetry artifacts (metrics snapshots, "
      "Chrome trace exports, placement-decision flight recorder files or "
      "rings, per-epoch time-series JSONL, OpenMetrics expositions, and "
      "health event logs).\n"
      "Exit codes: 0 all artifacts valid; 1 schema/validation/cross-check "
      "failure; 2 usage error; decision-log and health-log classes: "
      "3 empty, 4 headerless (not such a log), 5 truncated (torn write), "
      "6 corrupt (decodes but violates invariants), 7 unreadable (I/O).");
  Parser.addString("metrics", "",
                   "atmem-metrics-v1 snapshot to validate ('' skips); with "
                   "--decision-log, also cross-checked against the log");
  Parser.addString("trace", "",
                   "Chrome trace-event JSON to validate ('' skips)");
  Parser.addString("decision-log", "",
                   "atdl-v1 decision log or atdr-v1 ring (base path or any "
                   "segment) to validate ('' skips)");
  Parser.addString("timeseries", "",
                   "atmem-timeseries-v1 per-epoch JSONL to validate "
                   "('' skips)");
  Parser.addString("openmetrics", "",
                   "OpenMetrics exposition file to validate ('' skips)");
  Parser.addString("health-log", "",
                   "atmem-health-v1 event log to validate ('' skips)");
  if (!Parser.parse(Argc, Argv))
    return ExitUsage;

  std::string MetricsPath = Parser.getString("metrics");
  std::string TracePath = Parser.getString("trace");
  std::string DecisionPath = Parser.getString("decision-log");
  std::string TimeSeriesPath = Parser.getString("timeseries");
  std::string OpenMetricsPath = Parser.getString("openmetrics");
  std::string HealthLogPath = Parser.getString("health-log");
  if (MetricsPath.empty() && TracePath.empty() && DecisionPath.empty() &&
      TimeSeriesPath.empty() && OpenMetricsPath.empty() &&
      HealthLogPath.empty()) {
    std::fprintf(stderr,
                 "error: nothing to check (pass --metrics, --trace, "
                 "--decision-log, --timeseries, --openmetrics and/or "
                 "--health-log)\n");
    return ExitUsage;
  }

  bool Ok = true;
  int ExitCode = ExitInvalid;
  if (!MetricsPath.empty())
    Ok = checkFile(MetricsPath, "metrics", obs::validateMetricsJson) && Ok;
  if (!TracePath.empty())
    Ok = checkFile(TracePath, "trace", obs::validateTraceJson) && Ok;
  if (!TimeSeriesPath.empty())
    Ok = checkTimeSeries(TimeSeriesPath) && Ok;
  if (!OpenMetricsPath.empty())
    Ok = checkOpenMetrics(OpenMetricsPath) && Ok;
  if (!HealthLogPath.empty()) {
    int HealthExit = ExitInvalid;
    if (!checkHealthLog(HealthLogPath, HealthExit)) {
      Ok = false;
      ExitCode = HealthExit;
    }
  }
  if (!DecisionPath.empty()) {
    int LogExit = ExitInvalid;
    if (!checkDecisionLog(DecisionPath, MetricsPath, LogExit)) {
      Ok = false;
      ExitCode = LogExit; // The health class is the most specific signal.
    }
  }
  return Ok ? ExitOk : ExitCode;
}
