//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// atmem_obs_check: validates telemetry artifacts against the schemas the
/// runtime emits (obs/Export.h and obs/DecisionLog.h are the single source
/// of truth). CI runs it on the files produced by `atmem_run --metrics-out
/// --trace-out --decision-log`; exit status is non-zero on the first
/// violation, with the reason on stderr.
///
/// --decision-log accepts both flat atdl-v1 files and atdr-v1 rings (pass
/// the ring base path or any segment file); rings are salvaged by the
/// crash-recovery reader first and the salvage statistics are reported.
///
/// Unhealthy decision logs exit with a code naming the failure class, so
/// scripts can tell a crash-truncated log from a file that was never a
/// decision log at all (see ExitCodes below; also listed in --help).
///
/// Examples:
///   atmem_obs_check --metrics m.json
///   atmem_obs_check --metrics m.json --trace t.json
///   atmem_obs_check --decision-log run.atdl --metrics m.json
///   atmem_obs_check --decision-log run.atdr   # ring base path
///
//===----------------------------------------------------------------------===//

#include "obs/DecisionLog.h"
#include "obs/Export.h"
#include "obs/Json.h"
#include "obs/RingLog.h"
#include "support/Options.h"

#include <cstdio>

using namespace atmem;

namespace {

/// Exit codes, most specific wins when several checks fail. Documented in
/// the --help text; keep the two in sync.
enum ExitCodes {
  ExitOk = 0,         ///< Every requested artifact is valid.
  ExitInvalid = 1,    ///< Schema/validation/cross-check failure.
  ExitUsage = 2,      ///< Bad flags or nothing to check.
  ExitEmpty = 3,      ///< Decision log empty (or header-only).
  ExitHeaderless = 4, ///< Decision log lacks the ATDL header entirely.
  ExitTruncated = 5,  ///< Decision log cut off mid-record (torn write).
  ExitCorrupt = 6,    ///< Decision log decodes but violates invariants.
  ExitUnreadable = 7, ///< Decision log cannot be opened/read.
};

int exitCodeFor(obs::DecisionLogHealth Health) {
  switch (Health) {
  case obs::DecisionLogHealth::Ok:
    return ExitOk;
  case obs::DecisionLogHealth::Empty:
    return ExitEmpty;
  case obs::DecisionLogHealth::Headerless:
    return ExitHeaderless;
  case obs::DecisionLogHealth::Truncated:
    return ExitTruncated;
  case obs::DecisionLogHealth::Corrupt:
    return ExitCorrupt;
  case obs::DecisionLogHealth::Unreadable:
    return ExitUnreadable;
  }
  return ExitInvalid;
}

bool checkFile(const std::string &Path, const char *What,
               bool (*Validate)(const obs::JsonValue &, std::string *)) {
  obs::JsonValue Doc;
  std::string Error;
  if (!obs::parseJsonFile(Path, Doc, &Error)) {
    std::fprintf(stderr, "error: %s '%s': %s\n", What, Path.c_str(),
                 Error.c_str());
    return false;
  }
  if (!Validate(Doc, &Error)) {
    std::fprintf(stderr, "error: %s '%s': %s\n", What, Path.c_str(),
                 Error.c_str());
    return false;
  }
  std::printf("%s '%s': ok\n", What, Path.c_str());
  return true;
}

/// Decodes and validates a decision log — a flat atdl-v1 file or an
/// atdr-v1 ring, dispatched transparently. Flat files that fail get a
/// health diagnosis (empty / headerless / truncated / corrupt /
/// unreadable) and the matching exit code via \p ExitCode. When
/// \p MetricsPath names a metrics snapshot from the same run, the log's
/// aggregate counts are cross-checked against its migration.* and
/// analyzer.* counters.
bool checkDecisionLog(const std::string &Path, const std::string &MetricsPath,
                      int &ExitCode) {
  obs::DecisionArtifact Artifact;
  obs::RingRecoveryStats Recovery;
  bool WasRing = false;
  std::string Error;
  if (!obs::readDecisionLogAny(Path, Artifact, &Error, &Recovery, &WasRing)) {
    std::string Detail;
    obs::DecisionLogHealth Health =
        WasRing ? obs::DecisionLogHealth::Unreadable
                : obs::diagnoseDecisionLog(Path, &Detail);
    if (Detail.empty())
      Detail = Error;
    std::fprintf(stderr, "error: decision log '%s': %s: %s\n", Path.c_str(),
                 obs::decisionLogHealthName(Health), Detail.c_str());
    ExitCode = exitCodeFor(Health);
    return false;
  }
  obs::DecisionLogStats Stats;
  if (!obs::validateDecisionLog(Artifact, &Error, &Stats)) {
    std::string Detail;
    obs::DecisionLogHealth Health =
        WasRing ? obs::DecisionLogHealth::Corrupt
                : obs::diagnoseDecisionLog(Path, &Detail);
    std::fprintf(stderr, "error: decision log '%s': %s: %s\n", Path.c_str(),
                 obs::decisionLogHealthName(Health), Error.c_str());
    ExitCode = exitCodeFor(Health);
    return false;
  }
  if (WasRing)
    std::printf("decision ring '%s': salvaged %llu epochs from %llu "
                "segments (%llu frames, %llu torn, %llu dropped head, "
                "%llu dropped tail, %s close)\n",
                Path.c_str(),
                static_cast<unsigned long long>(Recovery.SalvagedEpochs),
                static_cast<unsigned long long>(Recovery.Segments),
                static_cast<unsigned long long>(Recovery.FramesRead),
                static_cast<unsigned long long>(Recovery.TornFrames),
                static_cast<unsigned long long>(Recovery.DroppedHead),
                static_cast<unsigned long long>(Recovery.DroppedTail),
                Recovery.CleanClose ? "clean" : "crash");
  std::printf("decision log '%s': ok (%zu records, %llu epochs, "
              "%llu objects, %llu chunk decisions, %llu promoted)\n",
              Path.c_str(), Artifact.Records.size(),
              static_cast<unsigned long long>(Stats.Epochs),
              static_cast<unsigned long long>(Stats.Objects),
              static_cast<unsigned long long>(Stats.Chunks),
              static_cast<unsigned long long>(Stats.PromotedChunks));

  if (MetricsPath.empty())
    return true;
  obs::JsonValue Metrics;
  if (!obs::parseJsonFile(MetricsPath, Metrics, &Error)) {
    std::fprintf(stderr, "error: metrics '%s': %s\n", MetricsPath.c_str(),
                 Error.c_str());
    return false;
  }
  if (!obs::crossCheckDecisionMetrics(Artifact, Metrics, &Error)) {
    std::fprintf(stderr,
                 "error: decision log '%s' vs metrics '%s': %s\n",
                 Path.c_str(), MetricsPath.c_str(), Error.c_str());
    return false;
  }
  std::printf("decision log '%s' vs metrics '%s': counters consistent\n",
              Path.c_str(), MetricsPath.c_str());
  return true;
}

} // namespace

int main(int Argc, const char **Argv) {
  OptionParser Parser(
      "atmem_obs_check: validate telemetry artifacts (metrics snapshots, "
      "Chrome trace exports, and placement-decision flight recorder files "
      "or rings).\n"
      "Exit codes: 0 all artifacts valid; 1 schema/validation/cross-check "
      "failure; 2 usage error; decision-log health classes: 3 empty, "
      "4 headerless (not a decision log), 5 truncated (torn write), "
      "6 corrupt (decodes but violates invariants), 7 unreadable (I/O).");
  Parser.addString("metrics", "",
                   "atmem-metrics-v1 snapshot to validate ('' skips); with "
                   "--decision-log, also cross-checked against the log");
  Parser.addString("trace", "",
                   "Chrome trace-event JSON to validate ('' skips)");
  Parser.addString("decision-log", "",
                   "atdl-v1 decision log or atdr-v1 ring (base path or any "
                   "segment) to validate ('' skips)");
  if (!Parser.parse(Argc, Argv))
    return ExitUsage;

  std::string MetricsPath = Parser.getString("metrics");
  std::string TracePath = Parser.getString("trace");
  std::string DecisionPath = Parser.getString("decision-log");
  if (MetricsPath.empty() && TracePath.empty() && DecisionPath.empty()) {
    std::fprintf(stderr, "error: nothing to check (pass --metrics, "
                         "--trace and/or --decision-log)\n");
    return ExitUsage;
  }

  bool Ok = true;
  int ExitCode = ExitInvalid;
  if (!MetricsPath.empty())
    Ok = checkFile(MetricsPath, "metrics", obs::validateMetricsJson) && Ok;
  if (!TracePath.empty())
    Ok = checkFile(TracePath, "trace", obs::validateTraceJson) && Ok;
  if (!DecisionPath.empty()) {
    int LogExit = ExitInvalid;
    if (!checkDecisionLog(DecisionPath, MetricsPath, LogExit)) {
      Ok = false;
      ExitCode = LogExit; // The health class is the most specific signal.
    }
  }
  return Ok ? ExitOk : ExitCode;
}
