//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// atmem_replay: deterministic re-execution of recorded placement
/// decisions, with optional learned-ranker A/B comparison.
///
/// The tool reconstructs every epoch's analyzer inputs from an atdl/atdr
/// decision log, re-runs the Eq. 1-5 heuristic on them, and verifies the
/// replayed selection against the recorded verdicts (atmem_explain --diff
/// semantics: any drift exits 3). With --model it additionally runs the
/// learned ranker on the identical inputs and reports fast-tier hit
/// fraction, plan agreement, and migration churn for both policies.
///
/// Examples:
///   atmem_replay run.atdl
///   atmem_replay run.atdl --model ranker.json --budget 262144
///   atmem_replay run.atdl --model ranker.json --json
///
//===----------------------------------------------------------------------===//

#include "analyzer/ReplayHarness.h"
#include "obs/RingLog.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

using namespace atmem;

namespace {

int usage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage: %s <decision-log.atdl | ring-base-path> [options]\n"
      "\n"
      "replays a recorded decision log through the analyzer and checks\n"
      "the replayed heuristic against the recorded placements; with a\n"
      "model, A/B-compares the learned ranker on identical inputs\n"
      "\n"
      "options:\n"
      "  --model FILE.json   atmem-ranker-v1 weights to A/B against\n"
      "  --budget BYTES      cap every epoch's plan (default: unbudgeted)\n"
      "  --json              emit the report as JSON instead of text\n"
      "  --no-drift-gate     report drift but do not exit 3 on it\n"
      "\n"
      "exit status: 0 ok, 2 usage, 1 read/parse failure, 3 placement "
      "drift\n",
      Prog);
  return 2;
}

bool parseUnsigned(const char *Text, uint64_t &Out) {
  if (!Text || !*Text)
    return false;
  char *End = nullptr;
  Out = std::strtoull(Text, &End, 10);
  return End && *End == '\0';
}

} // namespace

int main(int Argc, const char **Argv) {
  if (Argc < 2 || std::strcmp(Argv[1], "--help") == 0 ||
      std::strcmp(Argv[1], "-h") == 0)
    return usage(Argv[0]);

  std::string LogPath = Argv[1];
  std::string ModelPath;
  uint64_t BudgetBytes = 0;
  bool Json = false;
  bool DriftGate = true;
  for (int I = 2; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--model") == 0 && I + 1 < Argc) {
      ModelPath = Argv[++I];
    } else if (std::strcmp(Argv[I], "--budget") == 0 && I + 1 < Argc) {
      if (!parseUnsigned(Argv[++I], BudgetBytes)) {
        std::fprintf(stderr, "atmem_replay: bad --budget '%s'\n", Argv[I]);
        return 2;
      }
    } else if (std::strcmp(Argv[I], "--json") == 0) {
      Json = true;
    } else if (std::strcmp(Argv[I], "--no-drift-gate") == 0) {
      DriftGate = false;
    } else {
      return usage(Argv[0]);
    }
  }

  obs::DecisionArtifact Artifact;
  std::string Error;
  if (!obs::readDecisionLogAny(LogPath, Artifact, &Error)) {
    std::fprintf(stderr, "atmem_replay: %s: %s\n", LogPath.c_str(),
                 Error.c_str());
    return 1;
  }

  std::vector<analyzer::ReplayEpoch> Epochs;
  if (!analyzer::replayEpochsFromArtifact(Artifact, Epochs, &Error)) {
    std::fprintf(stderr, "atmem_replay: %s: %s\n", LogPath.c_str(),
                 Error.c_str());
    return 1;
  }

  std::shared_ptr<const analyzer::RankerModel> Model;
  if (!ModelPath.empty()) {
    analyzer::RankerModel Loaded;
    if (!analyzer::loadRankerModel(ModelPath, Loaded, &Error)) {
      std::fprintf(stderr, "atmem_replay: %s: %s\n", ModelPath.c_str(),
                   Error.c_str());
      return 1;
    }
    Model = std::make_shared<analyzer::RankerModel>(Loaded);
  }

  analyzer::AnalyzerConfig Config;
  analyzer::ReplayReport Report =
      analyzer::replayCompare(Epochs, Config, Model, BudgetBytes);

  std::string Text = Json ? analyzer::replayReportJson(Report)
                          : analyzer::replayReportText(Report);
  std::fputs(Text.c_str(), stdout);

  if (DriftGate && Report.Drift.Mismatches > 0)
    return 3;
  return 0;
}
