//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// atmem_run: command-line driver for the framework. Loads a named
/// synthetic dataset or a user-provided edge list, runs one of the six
/// kernels under a chosen placement policy on a chosen testbed, and
/// prints a placement/timing report. This is the "try it on your own
/// graph" entry point of the repository.
///
/// Examples:
///   atmem_run --kernel=pr --dataset=twitter
///   atmem_run --kernel=bfs --edge-list=web.txt --testbed=mcdram
///   atmem_run --kernel=sssp --dataset=rmat27 --policy=atmem-mbind
///
//===----------------------------------------------------------------------===//

#include "apps/Kernel.h"
#include "baseline/Experiment.h"
#include "fault/FaultInjection.h"
#include "graph/Datasets.h"
#include "graph/EdgeListIO.h"
#include "obs/Export.h"
#include "support/Options.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace atmem;

namespace {

bool parsePolicy(const std::string &Name, baseline::Policy &Out) {
  const std::pair<const char *, baseline::Policy> Table[] = {
      {"all-slow", baseline::Policy::AllSlow},
      {"all-fast", baseline::Policy::AllFast},
      {"preferred-fast", baseline::Policy::PreferredFast},
      {"interleaved", baseline::Policy::Interleaved},
      {"atmem", baseline::Policy::Atmem},
      {"atmem-mbind", baseline::Policy::AtmemMbind},
      {"atmem-sampled-only", baseline::Policy::AtmemSampledOnly},
      {"coarse-grained", baseline::Policy::CoarseGrained},
  };
  for (const auto &[Label, Policy] : Table)
    if (Name == Label) {
      Out = Policy;
      return true;
    }
  return false;
}

} // namespace

int main(int Argc, const char **Argv) {
  OptionParser Parser(
      "atmem_run: run a graph kernel under an ATMem placement policy on a "
      "simulated heterogeneous-memory testbed");
  Parser.addString("kernel", "pr", "bfs | sssp | pr | bc | cc | spmv | tc | kcore");
  Parser.addString("dataset", "rmat24",
                   "named dataset (pokec, rmat24, twitter, rmat27, "
                   "friendster); ignored when --edge-list is given");
  Parser.addString("edge-list", "",
                   "path to a 'src dst' text edge list to load instead of "
                   "a named dataset");
  Parser.addString("testbed", "nvm", "nvm (Optane+DRAM) | mcdram (KNL)");
  Parser.addString("policy", "atmem",
                   "all-slow | all-fast | preferred-fast | interleaved | atmem | "
                   "atmem-mbind | atmem-sampled-only | coarse-grained");
  Parser.addDouble("scale", graph::DefaultScaleDivisor,
                   "dataset/machine scale divisor for named datasets");
  Parser.addUnsigned("iterations", 1, "measured iterations to average");
  Parser.addUnsigned("sim-threads", 1,
                     "tracked-execution engine threads (1 = serial engine)");
  Parser.addFlag("compare", "also run the all-slow baseline and the "
                            "all-fast (or preferred-fast) reference");
  Parser.addFlag("tlb", "replay the measured iteration through the "
                        "simulated TLB and report misses");
  Parser.addString("metrics-out", "",
                   "write a telemetry metrics snapshot (atmem-metrics-v1 "
                   "JSON) to this path; also enables collection");
  Parser.addString("trace-out", "",
                   "write a Chrome trace-event JSON (open in Perfetto or "
                   "chrome://tracing) to this path; also enables collection");
  Parser.addString("decision-log", "",
                   "record every placement decision (theta terms, weights, "
                   "TR', migration lifecycle) to this binary flight-recorder "
                   "file; inspect with atmem_explain");
  Parser.addString("decision-log-ring", "",
                   "record placement decisions into a crash-resilient mmap "
                   "ring (segments <path>.NNNNNN under a byte cap) instead "
                   "of an unbounded file; survives SIGKILL losing at most "
                   "the in-flight epoch");
  Parser.addUnsigned("ring-segment-bytes", 0,
                     "ring segment size in bytes (0 = default 256 KiB)");
  Parser.addUnsigned("ring-max-bytes", 0,
                     "hard cap across all ring segments (0 = default 4 MiB)");
  Parser.addString("timeseries-out", "",
                   "write per-epoch gauge snapshots as JSONL to this path "
                   "(atmem-timeseries-v1; plot with extract_results.py "
                   "--timeseries)");
  Parser.addString("openmetrics-out", "",
                   "write the per-epoch series as OpenMetrics text to this "
                   "path");
  Parser.addString("stats-socket", "",
                   "serve live metrics/placement/ring-head JSON snapshots "
                   "on this UNIX socket path (inspect with atmem_top)");
  Parser.addFlag("health",
                 "arm the online placement-health monitor (detector states "
                 "reach the metrics export and the stats-socket panel)");
  Parser.addString("health-log", "",
                   "append health events as atmem-health-v1 JSONL to this "
                   "path (implies --health; triage with atmem_doctor)");
  Parser.addString("health-knobs", "",
                   "detector tuning overrides, comma-separated knob=value "
                   "(see docs/observability.md)");
  Parser.addFlag("reoptimize",
                 "re-profile and re-optimize around every measured "
                 "iteration (one decision-log epoch per iteration) instead "
                 "of the single second-iteration optimize");
  Parser.addString("ranker-model", "",
                   "re-score every placement verdict with this "
                   "atmem-ranker-v1 JSON model (train with atmem_train); "
                   "load failures fall back to the Eq. 1-5 heuristic");
  Parser.addString("fault-spec", "", fault::faultSpecHelp());
  if (!Parser.parse(Argc, Argv))
    return 1;

  if (std::string SpecError;
      !fault::armFromEnvironment(&SpecError)) {
    std::fprintf(stderr, "error: bad ATMEM_FAULT_SPEC: %s\n",
                 SpecError.c_str());
    return 1;
  }
  if (std::string Spec = Parser.getString("fault-spec"); !Spec.empty()) {
    std::string SpecError;
    if (!fault::armFromSpec(Spec, &SpecError)) {
      std::fprintf(stderr, "error: bad --fault-spec: %s\n",
                   SpecError.c_str());
      return 1;
    }
  }

  std::string KernelName = Parser.getString("kernel");
  if (!apps::isKnownKernel(KernelName)) {
    std::fprintf(stderr, "error: unknown kernel '%s'\n", KernelName.c_str());
    return 1;
  }
  baseline::Policy PolicyKind;
  if (!parsePolicy(Parser.getString("policy"), PolicyKind)) {
    std::fprintf(stderr, "error: unknown policy '%s'\n",
                 Parser.getString("policy").c_str());
    return 1;
  }
  bool Mcdram = Parser.getString("testbed") == "mcdram";
  if (!Mcdram && Parser.getString("testbed") != "nvm") {
    std::fprintf(stderr, "error: unknown testbed '%s'\n",
                 Parser.getString("testbed").c_str());
    return 1;
  }
  double Scale = Parser.getDouble("scale");

  obs::TelemetryConfig Telemetry;
  Telemetry.MetricsPath = Parser.getString("metrics-out");
  Telemetry.TracePath = Parser.getString("trace-out");
  Telemetry.DecisionLogPath = Parser.getString("decision-log");
  Telemetry.DecisionLogRingPath = Parser.getString("decision-log-ring");
  Telemetry.RingSegmentBytes = Parser.getUnsigned("ring-segment-bytes");
  Telemetry.RingMaxBytes = Parser.getUnsigned("ring-max-bytes");
  Telemetry.TimeSeriesPath = Parser.getString("timeseries-out");
  Telemetry.OpenMetricsPath = Parser.getString("openmetrics-out");
  Telemetry.StatsSocketPath = Parser.getString("stats-socket");
  Telemetry.HealthLogPath = Parser.getString("health-log");
  Telemetry.HealthEnabled = Parser.getFlag("health");
  if (std::string Knobs = Parser.getString("health-knobs"); !Knobs.empty()) {
    std::string KnobError;
    if (!obs::parseHealthKnobs(Knobs, Telemetry.Health, &KnobError)) {
      std::fprintf(stderr, "error: bad --health-knobs: %s\n",
                   KnobError.c_str());
      return 1;
    }
  }
  Telemetry.Enabled = Telemetry.anyOutput() || Telemetry.HealthEnabled;

  // Load or generate the graph.
  graph::CsrGraph Graph;
  std::string GraphName;
  if (std::string Path = Parser.getString("edge-list"); !Path.empty()) {
    auto Loaded = graph::readEdgeList(Path);
    if (!Loaded) {
      std::fprintf(stderr, "error: cannot read edge list '%s'\n",
                   Path.c_str());
      return 1;
    }
    Graph = std::move(*Loaded);
    GraphName = Path;
  } else {
    std::string Name = Parser.getString("dataset");
    if (!graph::isKnownDataset(Name)) {
      std::fprintf(stderr, "error: unknown dataset '%s'\n", Name.c_str());
      return 1;
    }
    Graph = graph::makeDataset(Name, Scale).Graph;
    GraphName = Name;
  }
  std::printf("graph: %s (%u vertices, %llu edges)\n", GraphName.c_str(),
              Graph.numVertices(),
              static_cast<unsigned long long>(Graph.numEdges()));

  sim::MachineConfig Machine = Mcdram
                                   ? sim::mcdramDramTestbed(1.0 / Scale)
                                   : sim::nvmDramTestbed(1.0 / Scale);
  std::printf("testbed: %s (fast %s %s, slow %s %s)\n",
              Machine.Name.c_str(), Machine.Fast.Name.c_str(),
              formatBytes(Machine.Fast.CapacityBytes).c_str(),
              Machine.Slow.Name.c_str(),
              formatBytes(Machine.Slow.CapacityBytes).c_str());

  auto Run = [&](baseline::Policy P) {
    baseline::RunConfig Config;
    Config.KernelName = KernelName;
    Config.Graph = &Graph;
    Config.Machine = Machine;
    Config.PolicyKind = P;
    Config.MeasuredIterations =
        static_cast<uint32_t>(Parser.getUnsigned("iterations"));
    Config.MeasureTlb = Parser.getFlag("tlb");
    Config.SimThreads = static_cast<uint32_t>(
        std::max<uint64_t>(Parser.getUnsigned("sim-threads"), 1));
    Config.OptimizeEachIteration = Parser.getFlag("reoptimize");
    Config.Telemetry = Telemetry;
    Config.RankerModelPath = Parser.getString("ranker-model");
    return baseline::runExperiment(Config);
  };

  TablePrinter Table({"policy", "iteration time", "fast-tier ratio",
                      "migrated", "migration time", "TLB misses"});
  auto AddRow = [&](baseline::Policy P, const baseline::RunResult &R) {
    Table.addRow({baseline::policyName(P),
                  formatSeconds(R.MeasuredIterSec),
                  formatPercent(R.FastDataRatio),
                  formatBytes(R.Migration.BytesMoved),
                  R.Migration.BytesMoved
                      ? formatSeconds(R.Migration.SimSeconds)
                      : "-",
                  Parser.getFlag("tlb") ? std::to_string(R.TlbMisses)
                                        : "-"});
  };

  baseline::RunResult Main = Run(PolicyKind);
  if (Parser.getFlag("compare")) {
    baseline::Policy Reference = Mcdram ? baseline::Policy::PreferredFast
                                        : baseline::Policy::AllFast;
    baseline::RunResult Slow = Run(baseline::Policy::AllSlow);
    baseline::RunResult Ref = Run(Reference);
    AddRow(baseline::Policy::AllSlow, Slow);
    AddRow(PolicyKind, Main);
    AddRow(Reference, Ref);
    Table.print();
    std::printf("\n%s vs all-slow: %s; vs %s: %s\n",
                baseline::policyName(PolicyKind),
                formatSpeedup(Slow.MeasuredIterSec / Main.MeasuredIterSec)
                    .c_str(),
                baseline::policyName(Reference),
                formatSpeedup(Ref.MeasuredIterSec / Main.MeasuredIterSec)
                    .c_str());
  } else {
    AddRow(PolicyKind, Main);
    Table.print();
  }
  if (Main.IterStats.count() > 1)
    std::printf("iteration spread: stddev %s over %zu iterations\n",
                formatSeconds(Main.IterStats.stddev()).c_str(),
                Main.IterStats.count());
  std::printf("checksum: %llu\n",
              static_cast<unsigned long long>(Main.Checksum));
  if (!obs::exportIfConfigured(Telemetry))
    return 1;
  if (!Telemetry.MetricsPath.empty())
    std::printf("metrics written to %s\n", Telemetry.MetricsPath.c_str());
  if (!Telemetry.TracePath.empty())
    std::printf("trace written to %s\n", Telemetry.TracePath.c_str());
  if (!Telemetry.DecisionLogPath.empty())
    std::printf("decision log written to %s\n",
                Telemetry.DecisionLogPath.c_str());
  if (!Telemetry.DecisionLogRingPath.empty())
    std::printf("decision ring written to %s.NNNNNN\n",
                Telemetry.DecisionLogRingPath.c_str());
  if (!Telemetry.TimeSeriesPath.empty())
    std::printf("time series written to %s\n",
                Telemetry.TimeSeriesPath.c_str());
  if (!Telemetry.OpenMetricsPath.empty())
    std::printf("openmetrics written to %s\n",
                Telemetry.OpenMetricsPath.c_str());
  if (!Telemetry.HealthLogPath.empty())
    std::printf("health log written to %s\n",
                Telemetry.HealthLogPath.c_str());
  return 0;
}
