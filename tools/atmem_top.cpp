//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// atmem_top: live inspection of a running ATMem process through its
/// --stats-socket endpoint. One-shot by default (fetch, render, exit);
/// --watch re-fetches on an interval like top(1). --raw dumps the JSON
/// snapshot untouched for scripts.
///
/// Rendered view: per-object tier residency bars, the last epoch's
/// counters (slow-miss fraction, migration bytes/ranges/retries/
/// rollbacks), cumulative migration totals from the metric registry, the
/// decision ring's head position when a ring is enabled, and — when the
/// target runs with --health — a health panel listing every detector
/// that is (or ever was) off green.
///
/// Examples:
///   atmem_top --socket /tmp/atmem.sock
///   atmem_top --socket /tmp/atmem.sock --watch 2
///   atmem_top --socket /tmp/atmem.sock --raw
///
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "obs/StatsSocket.h"
#include "support/Options.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <string>
#include <thread>

using namespace atmem;

namespace {

double numberOr(const obs::JsonValue *Obj, const char *Key, double Default) {
  if (!Obj)
    return Default;
  const obs::JsonValue *V = Obj->findNumber(Key);
  return V ? V->NumberVal : Default;
}

/// A tier-residency bar: '#' for the fast-tier share, '.' for the rest.
std::string residencyBar(double Fraction, uint32_t Width) {
  if (Fraction < 0.0)
    Fraction = 0.0;
  if (Fraction > 1.0)
    Fraction = 1.0;
  auto Fast = static_cast<uint32_t>(Fraction * Width + 0.5);
  return std::string(Fast, '#') + std::string(Width - Fast, '.');
}

/// Renders one fetched snapshot.
bool render(const std::string &Body) {
  obs::JsonValue Doc;
  std::string Error;
  if (!obs::parseJson(Body, Doc, &Error)) {
    std::fprintf(stderr, "error: malformed snapshot: %s\n", Error.c_str());
    return false;
  }
  const obs::JsonValue *Schema = Doc.findString("schema");
  if (!Schema || Schema->StringVal != "atmem-stats-v1") {
    std::fprintf(stderr, "error: not an atmem-stats-v1 snapshot\n");
    return false;
  }

  std::printf("epoch %llu",
              static_cast<unsigned long long>(numberOr(&Doc, "epoch", 0)));
  if (const obs::JsonValue *Ring = Doc.find("ring"))
    std::printf("   ring head seg %llu off %llu seq %llu",
                static_cast<unsigned long long>(
                    numberOr(Ring, "segment", 0)),
                static_cast<unsigned long long>(numberOr(Ring, "offset", 0)),
                static_cast<unsigned long long>(
                    numberOr(Ring, "next_seq", 0)));
  std::printf("\n");

  if (const obs::JsonValue *Last = Doc.find("last_epoch")) {
    std::printf("last epoch: slow-miss %5.1f%%  migrated %s in %llu ranges"
                "  retries %llu  rollbacks %llu  fast-data %5.1f%%  "
                "optimize %.0f us\n",
                numberOr(Last, "slow_miss_fraction", 0) * 100.0,
                formatBytes(static_cast<uint64_t>(
                                numberOr(Last, "migration_bytes", 0)))
                    .c_str(),
                static_cast<unsigned long long>(
                    numberOr(Last, "migration_ranges", 0)),
                static_cast<unsigned long long>(numberOr(Last, "retries", 0)),
                static_cast<unsigned long long>(
                    numberOr(Last, "rollbacks", 0)),
                numberOr(Last, "fast_data_ratio", 0) * 100.0,
                numberOr(Last, "optimize_wall_us", 0));
  }

  if (const obs::JsonValue *Health = Doc.find("health")) {
    const obs::JsonValue *Overall = Health->findString("overall");
    const obs::JsonValue *Events = Health->find("events");
    std::printf("health: %s  (info %llu  warn %llu  critical %llu)\n",
                Overall ? Overall->StringVal.c_str() : "?",
                static_cast<unsigned long long>(numberOr(Events, "info", 0)),
                static_cast<unsigned long long>(numberOr(Events, "warn", 0)),
                static_cast<unsigned long long>(
                    numberOr(Events, "critical", 0)));
    const obs::JsonValue *Detectors = Health->find("detectors");
    if (Detectors && Detectors->isArray())
      for (const obs::JsonValue &Det : Detectors->Array) {
        const obs::JsonValue *Name = Det.findString("name");
        const obs::JsonValue *Status = Det.findString("status");
        const obs::JsonValue *Detail = Det.findString("detail");
        // Quiet detectors stay off the panel; only active or previously
        // tripped ones earn a line.
        const obs::JsonValue *Worst = Det.findString("worst");
        bool Interesting =
            (Status && Status->StringVal != "green") ||
            (Worst && Worst->StringVal != "green");
        if (!Interesting)
          continue;
        std::printf("  %-22s %-6s (worst %-6s ev %llu @epoch %llu)%s%s\n",
                    Name ? Name->StringVal.c_str() : "?",
                    Status ? Status->StringVal.c_str() : "?",
                    Worst ? Worst->StringVal.c_str() : "?",
                    static_cast<unsigned long long>(
                        numberOr(&Det, "events", 0)),
                    static_cast<unsigned long long>(
                        numberOr(&Det, "last_epoch", 0)),
                    Detail && !Detail->StringVal.empty() ? "  " : "",
                    Detail ? Detail->StringVal.c_str() : "");
      }
  }

  if (const obs::JsonValue *Metrics = Doc.find("metrics"))
    if (const obs::JsonValue *Counters = Metrics->find("counters")) {
      const obs::JsonValue *Ranges = Counters->findNumber("migrator.ranges");
      const obs::JsonValue *Retries =
          Counters->findNumber("migration.retries");
      const obs::JsonValue *Rolled =
          Counters->findNumber("migration.rolled_back");
      std::printf("totals: %llu migrated ranges, %llu retries, "
                  "%llu rollbacks\n",
                  static_cast<unsigned long long>(
                      Ranges ? Ranges->NumberVal : 0),
                  static_cast<unsigned long long>(
                      Retries ? Retries->NumberVal : 0),
                  static_cast<unsigned long long>(
                      Rolled ? Rolled->NumberVal : 0));
    }

  const obs::JsonValue *Placement = Doc.find("placement");
  if (Placement && Placement->isArray() && !Placement->Array.empty()) {
    std::printf("%-20s %10s %8s %-32s %s\n", "object", "bytes", "chunks",
                "fast-tier residency", "fast");
    for (const obs::JsonValue &Obj : Placement->Array) {
      const obs::JsonValue *Name = Obj.findString("name");
      double Fraction = numberOr(&Obj, "fast_fraction", 0);
      std::printf("%-20s %10s %8llu %-32s %5.1f%%\n",
                  Name ? Name->StringVal.c_str() : "?",
                  formatBytes(static_cast<uint64_t>(
                                  numberOr(&Obj, "bytes", 0)))
                      .c_str(),
                  static_cast<unsigned long long>(numberOr(&Obj, "chunks", 0)),
                  residencyBar(Fraction, 32).c_str(), Fraction * 100.0);
    }
  }
  return true;
}

} // namespace

int main(int Argc, const char **Argv) {
  OptionParser Parser(
      "atmem_top: inspect a running ATMem process through the UNIX-socket "
      "snapshot endpoint it serves under --stats-socket. One-shot by "
      "default; --watch N refreshes every N seconds until interrupted.");
  Parser.addString("socket", "", "stats socket path the target process "
                                 "was started with (required)");
  Parser.addUnsigned("watch", 0,
                     "refresh interval in seconds (0 = fetch once)");
  Parser.addFlag("raw", "print the raw JSON snapshot instead of the "
                        "rendered view");
  if (!Parser.parse(Argc, Argv))
    return 2;

  std::string Socket = Parser.getString("socket");
  if (Socket.empty()) {
    std::fprintf(stderr, "error: --socket is required\n");
    return 2;
  }
  uint64_t Interval = Parser.getUnsigned("watch");

  for (;;) {
    std::string Body;
    std::string Error;
    if (!obs::statsSocketFetch(Socket, Body, &Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    if (Parser.getFlag("raw")) {
      std::fputs(Body.c_str(), stdout);
    } else {
      if (!render(Body))
        return 1;
    }
    if (Interval == 0)
      return 0;
    std::printf("\n");
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(Interval));
  }
}
