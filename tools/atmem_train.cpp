//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// atmem_train: offline learning-to-rank trainer over recorded decision
/// logs.
///
/// Fits the dependency-free atmem-ranker-v1 linear model on (feature,
/// label) rows extracted from an atdl/atdr log — features come from each
/// recorded (epoch, object, chunk), the label from whether the *next*
/// epoch's recorded selection kept the chunk. Candidates are ridge
/// least-squares solutions over an L2 sweep plus the exact Eq. 1-5 mimic
/// model; each candidate is scored by the replay A/B harness on the
/// training log, and the winner must beat or match the heuristic on
/// next-epoch fast-tier hit fraction while keeping migration churn within
/// 10% — the mimic always satisfies both (it reproduces the heuristic
/// verdicts exactly), so training can never emit a model worse than the
/// heuristic. The whole pipeline is deterministic: same log in, same
/// model bytes out.
///
/// Examples:
///   atmem_train run.atdl --out ranker.json
///   atmem_train run.atdl --out ranker.json --budget 262144 --report
///
//===----------------------------------------------------------------------===//

#include "analyzer/ReplayHarness.h"
#include "obs/RingLog.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace atmem;

namespace {

int usage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage: %s <decision-log.atdl | ring-base-path> --out MODEL.json "
      "[options]\n"
      "\n"
      "trains an atmem-ranker-v1 linear model from a recorded decision\n"
      "log; the emitted model is guaranteed to match or beat the Eq. 1-5\n"
      "heuristic on the training log's replay A/B gates\n"
      "\n"
      "options:\n"
      "  --out FILE.json     where to write the model (required)\n"
      "  --budget BYTES      plan budget used when scoring candidates\n"
      "                      (default: unbudgeted)\n"
      "  --l2 VALUE          train only this ridge strength instead of\n"
      "                      the default sweep\n"
      "  --report            print the winning candidate's A/B report\n",
      Prog);
  return 2;
}

bool parseUnsigned(const char *Text, uint64_t &Out) {
  if (!Text || !*Text)
    return false;
  char *End = nullptr;
  Out = std::strtoull(Text, &End, 10);
  return End && *End == '\0';
}

bool parseDouble(const char *Text, double &Out) {
  if (!Text || !*Text)
    return false;
  char *End = nullptr;
  Out = std::strtod(Text, &End);
  return End && *End == '\0';
}

} // namespace

int main(int Argc, const char **Argv) {
  if (Argc < 2 || std::strcmp(Argv[1], "--help") == 0 ||
      std::strcmp(Argv[1], "-h") == 0)
    return usage(Argv[0]);

  std::string LogPath = Argv[1];
  std::string OutPath;
  uint64_t BudgetBytes = 0;
  double OnlyL2 = -1.0;
  bool PrintReport = false;
  for (int I = 2; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--out") == 0 && I + 1 < Argc) {
      OutPath = Argv[++I];
    } else if (std::strcmp(Argv[I], "--budget") == 0 && I + 1 < Argc) {
      if (!parseUnsigned(Argv[++I], BudgetBytes)) {
        std::fprintf(stderr, "atmem_train: bad --budget '%s'\n", Argv[I]);
        return 2;
      }
    } else if (std::strcmp(Argv[I], "--l2") == 0 && I + 1 < Argc) {
      if (!parseDouble(Argv[++I], OnlyL2) || OnlyL2 < 0.0) {
        std::fprintf(stderr, "atmem_train: bad --l2 '%s'\n", Argv[I]);
        return 2;
      }
    } else if (std::strcmp(Argv[I], "--report") == 0) {
      PrintReport = true;
    } else {
      return usage(Argv[0]);
    }
  }
  if (OutPath.empty())
    return usage(Argv[0]);

  obs::DecisionArtifact Artifact;
  std::string Error;
  if (!obs::readDecisionLogAny(LogPath, Artifact, &Error)) {
    std::fprintf(stderr, "atmem_train: %s: %s\n", LogPath.c_str(),
                 Error.c_str());
    return 1;
  }
  std::vector<analyzer::ReplayEpoch> Epochs;
  if (!analyzer::replayEpochsFromArtifact(Artifact, Epochs, &Error)) {
    std::fprintf(stderr, "atmem_train: %s: %s\n", LogPath.c_str(),
                 Error.c_str());
    return 1;
  }

  analyzer::RankerTrainingSet Set = analyzer::rankerTrainingSet(Epochs);
  std::fprintf(stderr,
               "atmem_train: %zu epoch(s), %zu training row(s) from %s\n",
               Epochs.size(), Set.Features.size(), LogPath.c_str());

  std::vector<std::pair<std::string, analyzer::RankerModel>> Candidates;
  if (OnlyL2 >= 0.0) {
    Candidates.emplace_back("ridge(l2=" + std::to_string(OnlyL2) + ")",
                            analyzer::trainRidgeRanker(Set, OnlyL2));
  } else {
    for (double L2 : {1e-3, 1e-2, 1e-1, 1.0, 10.0})
      Candidates.emplace_back("ridge(l2=" + std::to_string(L2) + ")",
                              analyzer::trainRidgeRanker(Set, L2));
  }
  // The mimic reproduces the heuristic verdicts exactly, so its replay
  // metrics equal the heuristic's — the gates below always have at least
  // one admissible candidate.
  Candidates.emplace_back("heuristic-mimic", analyzer::heuristicMimicModel());

  analyzer::AnalyzerConfig Config;
  std::string BestName;
  analyzer::RankerModel BestModel;
  analyzer::ReplayReport BestReport;
  bool HaveBest = false;
  for (const auto &[Name, Candidate] : Candidates) {
    auto Model = std::make_shared<analyzer::RankerModel>(Candidate);
    analyzer::ReplayReport Report =
        analyzer::replayCompare(Epochs, Config, Model, BudgetBytes);
    bool QualityOk =
        Report.Ranker.HitFractionNext >= Report.Heuristic.HitFractionNext;
    bool ChurnOk =
        static_cast<double>(Report.Ranker.ChurnChunks) <=
        1.1 * static_cast<double>(Report.Heuristic.ChurnChunks) + 1e-9;
    std::fprintf(stderr,
                 "atmem_train:   %-18s hit_next %.6f (heuristic %.6f) "
                 "churn %llu (heuristic %llu)%s\n",
                 Name.c_str(), Report.Ranker.HitFractionNext,
                 Report.Heuristic.HitFractionNext,
                 static_cast<unsigned long long>(Report.Ranker.ChurnChunks),
                 static_cast<unsigned long long>(
                     Report.Heuristic.ChurnChunks),
                 QualityOk && ChurnOk ? "" : "  [rejected]");
    if (!QualityOk || !ChurnOk)
      continue;
    bool Better =
        !HaveBest ||
        Report.Ranker.HitFractionNext > BestReport.Ranker.HitFractionNext ||
        (Report.Ranker.HitFractionNext ==
             BestReport.Ranker.HitFractionNext &&
         Report.Ranker.ChurnChunks < BestReport.Ranker.ChurnChunks);
    if (Better) {
      BestName = Name;
      BestModel = Candidate;
      BestReport = Report;
      HaveBest = true;
    }
  }
  if (!HaveBest) {
    std::fprintf(stderr, "atmem_train: no admissible candidate\n");
    return 1;
  }

  std::string ModelJson = BestModel.toJson();
  std::FILE *Out = std::fopen(OutPath.c_str(), "wb");
  if (!Out || std::fwrite(ModelJson.data(), 1, ModelJson.size(), Out) !=
                  ModelJson.size()) {
    std::fprintf(stderr, "atmem_train: cannot write %s\n", OutPath.c_str());
    if (Out)
      std::fclose(Out);
    return 1;
  }
  std::fclose(Out);
  std::fprintf(stderr, "atmem_train: wrote %s (%s)\n", OutPath.c_str(),
               BestName.c_str());
  if (PrintReport)
    std::fputs(analyzer::replayReportText(BestReport).c_str(), stdout);
  return 0;
}
